//! Offline stand-in for the `criterion` crate.
//!
//! The benches in this workspace use `harness = false` with
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, and `Bencher::iter`. This stand-in
//! keeps those entry points compiling and, when run via `cargo bench`,
//! executes each body a small fixed number of times and prints the mean
//! wall-clock time — enough for coarse comparisons, with none of
//! criterion's statistics.

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one("", &name.into(), f, 10);
    }
}

pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &name.into(), f, self.sample_size);
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, name: &str, mut f: impl FnMut(&mut Bencher), samples: usize) {
    let mut b = Bencher {
        iters: samples.min(10) as u64,
        elapsed_ns: 0.0,
    };
    f(&mut b);
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    if b.iters > 0 && b.elapsed_ns > 0.0 {
        eprintln!(
            "{label}: {:.1} ns/iter (stand-in, {} iters)",
            b.elapsed_ns / b.iters as f64,
            b.iters
        );
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

/// Define a function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
