//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset of the real API this repository uses — [`Value`],
//! [`Map`], [`to_value`], [`to_string`], [`to_string_pretty`], and
//! [`from_str`] — on top of the vendored `serde` stand-in's data model.
//! The text layer is a complete JSON reader/writer: strings with escapes,
//! the three number classes, arrays, objects, booleans, and null.

pub use serde::{Map, Number, Value};

pub type Error = serde::Error;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize_value(value)
}

/// Compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Human-oriented JSON text with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize_value(), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::deserialize_value(&value)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    use std::fmt::Write;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                let _ = serde_write_string(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Scalars, empty arrays, empty objects: compact form.
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

fn serde_write_string(out: &mut String, s: &str) -> std::fmt::Result {
    use std::fmt::Write;
    write!(out, "{}", Value::String(s.to_string()))
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let line = self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|b| **b == b'\n')
            .count()
            + 1;
        Error::custom(format!("{msg} at line {line}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        } else if let Ok(n) = text.parse::<u64>() {
            Number::PosInt(n)
        } else if let Ok(n) = text.parse::<i64>() {
            Number::NegInt(n)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err("invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
        let pretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{} extra").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn numbers_keep_their_class() {
        assert_eq!(
            from_str::<Value>("17").unwrap(),
            Value::Number(Number::PosInt(17))
        );
        assert_eq!(
            from_str::<Value>("-4").unwrap(),
            Value::Number(Number::NegInt(-4))
        );
        assert_eq!(
            from_str::<Value>("0.87").unwrap(),
            Value::Number(Number::Float(0.87))
        );
        assert_eq!(from_str::<u32>("6").unwrap(), 6);
        assert_eq!(from_str::<f64>("6").unwrap(), 6.0);
    }

    #[test]
    fn pretty_output_shape() {
        let mut m = Map::new();
        m.insert("name".into(), Value::String("V0".into()));
        m.insert(
            "caps".into(),
            Value::Array(vec![Value::String("vec-fma".into())]),
        );
        let s = to_string_pretty(&Value::Object(m)).unwrap();
        assert!(s.contains("\"name\": \"V0\""), "{s}");
        assert!(s.contains("  \"caps\": [\n    \"vec-fma\"\n  ]"), "{s}");
    }
}
