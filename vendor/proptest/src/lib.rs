//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this repository uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! integer-range strategies, tuples of strategies,
//! [`collection::vec`], [`sample::select`], and simple character-class
//! string "regexes" such as `"[ -~\n]{0,160}"`.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! xorshift generator (fully deterministic, no `RUST_PROPTEST_*` env
//! handling) and failing cases are **not shrunk** — the failing input is
//! simply reported by the panic message of the assertion that fired.

pub mod rng {
    /// Deterministic xorshift64* generator.
    pub struct TestRng(u64);

    impl TestRng {
        /// Every test starts from the same seed so failures reproduce.
        pub fn deterministic() -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use super::rng::TestRng;
    use std::ops::Range;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String strategy from a character-class pattern, e.g. `"[ -~\n]{0,160}"`.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }
}

/// Tiny generator for the character-class regex subset used in tests:
/// sequences of `[...]` classes or literal characters, each optionally
/// followed by `{m,n}`, `{m}`, `?`, `*`, or `+`.
mod pattern {
    use super::rng::TestRng;

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let choices: Vec<char> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![unescape(chars.get(i - 1).copied().unwrap_or('\\'))]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(choices[rng.below(choices.len() as u64) as usize]);
            }
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            // Range `a-b` (a trailing `-` is a literal).
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|c| *c != ']') {
                let hi = if chars[i + 2] == '\\' {
                    i += 1;
                    unescape(chars[i + 2])
                } else {
                    chars[i + 2]
                };
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(
            i < chars.len(),
            "proptest stand-in: unterminated `[` in pattern {pattern:?}"
        );
        assert!(
            !set.is_empty(),
            "proptest stand-in: empty character class in {pattern:?}"
        );
        (set, i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| {
                        panic!("proptest stand-in: unterminated `{{` in pattern {pattern:?}")
                    });
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            _ => (1, 1, i),
        }
    }
}

pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `prop::sample::select(vec![...])`: pick one of the given items.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(
            !items.is_empty(),
            "proptest stand-in: select() needs at least one item"
        );
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest runs 256; 64 keeps simulator-heavy properties fast
        // while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! {
            config = (<$crate::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prop` facade module (`prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 1usize..6, z in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..6).contains(&y));
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn vec_and_select(
            v in crate::collection::vec((1u32..15, 1u32..40), 1..12),
            s in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn string_pattern(text in "[ -~\n]{0,16}") {
            prop_assert!(text.chars().count() <= 16);
            prop_assert!(text.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut rng = crate::rng::TestRng::deterministic();
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
