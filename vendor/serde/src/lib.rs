//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework that is API-compatible with the subset of
//! serde this repository uses: `#[derive(Serialize, Deserialize)]` on plain
//! named-field structs and unit enums, driven through a JSON-like [`Value`]
//! data model. The derive macros live in the sibling `serde_derive`
//! stand-in and are re-exported behind the usual `derive` feature.
//!
//! This is intentionally **not** the visitor-based serde architecture; it is
//! a small, dependency-free core that the vendored `serde_json` builds on.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON-like value: the single data model every `Serialize` /
/// `Deserialize` implementation targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

/// A JSON number, kept in its lexical class so integers round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Compact JSON rendering (the `serde_json` stand-in adds the pretty form).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            // `{:?}` keeps a trailing `.0` on integral floats and prints the
            // shortest representation that round-trips.
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Number::Float(_) => f.write_str("null"),
        }
    }
}

pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// An order-preserving string-keyed map, as `serde_json::Map`.
#[derive(Debug, Clone, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for Map<K, V> {
    fn default() -> Self {
        Map {
            entries: Vec::new(),
        }
    }
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_entries(entries: Vec<(String, Value)>) -> Self {
        Map { entries }
    }

    /// Insert, replacing (and returning) any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the [`Value`] data model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;

    /// Used by `#[serde(skip_serializing_if = "Option::is_none")]`: report
    /// whether the field should be omitted entirely.
    fn skip_serializing(&self) -> bool {
        false
    }
}

/// Reconstruct `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, Error>;

    /// Called when an object key is absent. `Option<T>` overrides this to
    /// produce `None`; everything else reports a missing field.
    fn deserialize_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected a ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected an ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(concat!("number out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
impl_ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()
            .ok_or_else(|| Error::custom("expected a number"))? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
    fn skip_serializing(&self) -> bool {
        (**self).skip_serializing()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
    fn skip_serializing(&self) -> bool {
        self.is_none()
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
    fn deserialize_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected an array"))?;
        items.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Helpers the derive macros call; not part of the public contract.
pub mod __private {
    use super::{Deserialize, Error, Map, Value};

    pub fn field<T: Deserialize>(obj: &Map<String, Value>, name: &str) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => {
                T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => T::deserialize_missing(name),
        }
    }

    pub fn field_or_default<T: Deserialize + Default>(
        obj: &Map<String, Value>,
        name: &str,
    ) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => {
                T::deserialize_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
            }
            None => Ok(T::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::Bool(true)).is_none());
        assert_eq!(
            m.insert("a".into(), Value::Bool(false)),
            Some(Value::Bool(true))
        );
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Bool(false)));
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("x".into(), Value::Number(Number::PosInt(3)));
        m.insert("y".into(), Value::String("a\"b".into()));
        let v = Value::Array(vec![Value::Object(m), Value::Null]);
        assert_eq!(v.to_string(), "[{\"x\":3,\"y\":\"a\\\"b\"},null]");
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        assert_eq!(Value::Number(Number::Float(3.0)).to_string(), "3.0");
        assert_eq!(Value::Number(Number::Float(0.87)).to_string(), "0.87");
        assert_eq!(Value::Number(Number::PosInt(3)).to_string(), "3");
    }

    #[test]
    fn option_semantics() {
        assert_eq!(Option::<u32>::deserialize_missing("f"), Ok(None));
        assert!(u32::deserialize_missing("f").is_err());
        assert!(Some(1u32).serialize_value() == Value::Number(Number::PosInt(1)));
        assert!(Option::<u32>::None.skip_serializing());
    }
}
