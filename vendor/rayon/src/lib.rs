//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the parallel-iterator entry points this workspace uses
//! (`par_iter`, `into_par_iter`) as thin wrappers over the corresponding
//! **sequential** std iterators. All downstream adapters (`map`, `filter`,
//! `collect`, ...) are the ordinary `Iterator` methods, so call sites
//! compile unchanged; they simply run on one thread in this environment.

pub mod prelude {
    /// `into_par_iter()` — sequential fallback.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'a, T> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn into_par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter()` — sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}
