//! Offline stand-in for the `rayon` crate — now with real threads.
//!
//! Exposes the subset of rayon's API this workspace uses:
//!
//! * the prelude's `into_par_iter()` / `par_iter()` entry points with
//!   `map(..).collect::<Vec<_>>()` chains, executed on a pool of OS
//!   threads via dynamic index stealing;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to pin the number of
//!   worker threads for a region of code (the engine's `Session` uses this
//!   to honour an explicit thread count).
//!
//! Output ordering is **deterministic**: results land in the slot of the
//! item that produced them, so a parallel `collect` is byte-for-byte
//! identical to the sequential one regardless of scheduling. Worker
//! panics propagate to the caller when the scope joins.
//!
//! Unlike real rayon there is no global work-stealing deque and no
//! `join`-based splitting — each `collect` spins up scoped threads. The
//! work units in this workspace (whole-kernel analyses and cycle-level
//! simulations) are far coarser than the spawn cost, so this is the right
//! trade-off for an offline stand-in.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`]; `None` = auto.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads a parallel call on this thread will use.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error from [`ThreadPoolBuilder::build`] (infallible here; kept for API
/// compatibility with real rayon).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// `0` (the default) means "use all available parallelism".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                self.num_threads
            },
        })
    }
}

/// A logical thread pool: parallel calls made inside
/// [`install`](ThreadPool::install) use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with this pool's thread count installed for any parallel
    /// iterator work `f` performs on the calling thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }
}

/// A scope for spawning long-lived worker tasks that may borrow from the
/// enclosing stack frame (the subset of `rayon::scope` this workspace
/// uses). All spawned tasks are joined before [`scope`] returns; a panic
/// in any task propagates to the caller at the join.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task on the scope's pool. Unlike real rayon the closure
    /// does not receive the scope back — the workspace's spawners all
    /// create their full task set up front.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Run `f` with a [`Scope`] whose spawned tasks all join before `scope`
/// returns. Backed by `std::thread::scope`: each spawn is an OS thread,
/// which matches this stand-in's coarse-work trade-off (see the module
/// docs) — the workspace spawns a handful of persistent workers, not
/// fine-grained tasks.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Order-preserving parallel map: evaluate `f` over `items` on up to
/// [`current_num_threads`] workers, returning results in item order.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let len = items.len();
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each item sits in its own slot so workers can take them without
    // holding a shared lock while running `f`; results land in the slot of
    // the item that produced them, which makes the output order (and thus
    // any serialization of it) independent of scheduling.
    let input: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let item = input[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(item);
                *output[i].lock().expect("output slot poisoned") = Some(result);
            });
        }
    });
    output
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

pub mod iter {
    use super::parallel_map;

    /// A materialized parallel iterator over owned items.
    pub struct IntoParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> IntoParIter<T> {
        pub(crate) fn new(items: Vec<T>) -> Self {
            IntoParIter { items }
        }

        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, R, F> {
            ParMap {
                items: self.items,
                f,
                _out: std::marker::PhantomData,
            }
        }

        pub fn len(&self) -> usize {
            self.items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// The result of [`IntoParIter::map`]; terminal ops run the pool.
    pub struct ParMap<T, R, F> {
        items: Vec<T>,
        f: F,
        _out: std::marker::PhantomData<fn() -> R>,
    }

    impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, R, F> {
        pub fn collect<C: FromParallelIterator<R>>(self) -> C {
            C::from_par_vec(parallel_map(self.items, self.f))
        }
    }

    /// Collection types a parallel map can terminate into.
    pub trait FromParallelIterator<T> {
        fn from_par_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_par_vec(v: Vec<T>) -> Self {
            v
        }
    }

    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_par_vec(v: Vec<Result<T, E>>) -> Self {
            v.into_iter().collect()
        }
    }
}

pub mod prelude {
    pub use super::iter::{FromParallelIterator, IntoParIter, ParMap};

    /// `into_par_iter()` — materialize into a parallel iterator.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> IntoParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter::new(self)
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        fn into_par_iter(self) -> IntoParIter<&'a T> {
            IntoParIter::new(self.iter().collect())
        }
    }

    impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        fn into_par_iter(self) -> IntoParIter<&'a T> {
            IntoParIter::new(self.iter().collect())
        }
    }

    /// `par_iter()` — parallel iterator over references.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Send + 'data;
        fn par_iter(&'data self) -> IntoParIter<Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter::new(self.iter().collect())
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        fn par_iter(&'data self) -> IntoParIter<&'data T> {
            IntoParIter::new(self.iter().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_refs() {
        let v: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, v.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Restored after install; nested installs shadow correctly.
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let nested = pool.install(|| pool1.install(current_num_threads));
        assert_eq!(nested, 1);
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let work = |x: usize| x.wrapping_mul(2654435761) % 97;
        let v: Vec<usize> = (0..256).collect();
        let serial = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| v.clone().into_par_iter().map(work).collect::<Vec<_>>());
        let parallel = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| v.into_par_iter().map(work).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scope_joins_spawned_tasks_and_allows_borrows() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let counter = &counter;
        scope(|s| {
            for &x in &data {
                s.spawn(move || {
                    counter.fetch_add(x, Ordering::Relaxed);
                });
            }
        });
        // Every task finished before scope returned.
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn result_collect_short_circuits_to_first_error() {
        let v: Vec<usize> = (0..16).collect();
        let r: Result<Vec<usize>, String> = v
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(r.unwrap_err(), "seven");
    }
}
