//! Offline stand-in for the `serde_derive` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal derive implementation with **no dependencies** (no `syn`, no
//! `quote`): the token stream is parsed by hand. It supports exactly the
//! shapes this repository uses:
//!
//! * named-field structs without generics,
//! * enums whose variants are all unit variants,
//! * the field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "Option::is_none")]`.
//!
//! Anything else fails loudly at compile time rather than silently
//! misbehaving. The generated code targets the data model of the vendored
//! `serde` stand-in (`serde::Value`), not the real serde visitor API.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: use `Default::default()` when the key is absent.
    has_default: bool,
    /// `#[serde(skip_serializing_if = ...)]`: omit the key when the value
    /// reports itself skippable (only `Option::is_none` is used here).
    has_skip: bool,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let push = format!(
                    "__fields.push((\"{n}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{n})));",
                    n = f.name
                );
                if f.has_skip {
                    pushes.push_str(&format!(
                        "if !::serde::Serialize::skip_serializing(&self.{n}) {{ {push} }}\n",
                        n = f.name
                    ));
                } else {
                    pushes.push_str(&push);
                    pushes.push('\n');
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(::serde::Map::from_entries(__fields))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde_derive stand-in generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let getter = if f.has_default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    format!(
                        "{n}: ::serde::__private::{getter}(__obj, \"{n}\")?,\n",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected a JSON object for `{name}`\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some(\"{v}\") => \
                         ::std::result::Result::Ok({name}::{v}),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v.as_str() {{\n\
                             {arms}\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"unknown variant for `{name}`\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    generated
        .parse()
        .expect("serde_derive stand-in generated invalid Rust")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected a type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stand-in derive: `{name}` must have a braced body \
             (tuple structs are unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    }
}

/// Skip `#[...]` attribute pairs, reporting whether any was a `#[serde(...)]`
/// attribute containing the given markers.
fn scan_attributes(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut has_default, mut has_skip) = (false, false);
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let text = g.to_string();
            if text.trim_start_matches(['[', ' ']).starts_with("serde") {
                // e.g. `[serde(default, skip_serializing_if = "Option::is_none")]`
                if text.contains("default") {
                    has_default = true;
                }
                if text.contains("skip_serializing_if") {
                    has_skip = true;
                }
            }
        }
        *i += 2;
    }
    (has_default, has_skip)
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    let _ = scan_attributes(tokens, i);
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (has_default, has_skip) = scan_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stand-in derive: expected a field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde stand-in derive: expected `:` after field `{name}`, got {other:?}")
            }
        }
        // Consume the type: everything up to the next `,` at angle-depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            has_default,
            has_skip,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stand-in derive: expected a variant name, got {other:?}"),
        };
        i += 1;
        if let Some(TokenTree::Group(_)) = tokens.get(i) {
            panic!(
                "serde stand-in derive: variant `{name}` carries data; \
                 only unit variants are supported"
            );
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    variants
}
