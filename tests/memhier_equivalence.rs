//! Equivalence regression for the memory-hierarchy streaming fast path:
//! on store and load streams over every machine model — and on randomized
//! strided patterns over synthetic hierarchies — `access_stream` with
//! `StreamConfig::default()` (steady-state extrapolation) must produce
//! *bit-identical* per-level [`memhier::CacheStats`] and memory
//! [`memhier::Traffic`] to `StreamConfig::reference()` (the per-access
//! oracle). This is the contract that keeps `repro fig4`, `repro table1`,
//! and `incore-cli storebench` byte-identical across the fast-path
//! rewrite.

use memhier::{Access, Hierarchy, StreamConfig, StreamPattern, Traffic};
use proptest::prelude::*;

/// Every observable of a hierarchy after a stream: per-level counters plus
/// the memory ledger. All integers, so equality is exact.
fn observables(h: &Hierarchy) -> (Vec<memhier::CacheStats>, Traffic) {
    (h.levels.iter().map(|l| l.stats).collect(), h.mem)
}

/// Run `p` through `h` twice — fast path, then reference — and demand
/// bit-identical observables, both right after the stream and again after
/// a full flush (which exercises the teleported tag state).
fn assert_stream_equivalent(h: &mut Hierarchy, p: StreamPattern, label: &str) {
    let outcome = h.access_stream(p, StreamConfig::default());
    let streamed = observables(h);
    h.flush();
    let flushed = observables(h);

    h.reset();
    let ref_outcome = h.access_stream(p, StreamConfig::reference());
    assert!(
        !ref_outcome.fast_path,
        "{label}: reference took the fast path"
    );
    let ref_streamed = observables(h);
    h.flush();
    let ref_flushed = observables(h);
    h.reset();

    assert_eq!(
        streamed, ref_streamed,
        "{label}: post-stream state diverged"
    );
    assert_eq!(flushed, ref_flushed, "{label}: post-flush state diverged");
    // Long sequential streams must actually hit the closed form — a silent
    // fallback would make this test vacuous.
    if p.stride > 0 && p.count > 0 && outcome.extrapolated == 0 {
        panic!(
            "{label}: steady state never detected (fast_path={})",
            outcome.fast_path
        );
    }
}

/// A stream long enough to reach steady state but short enough for debug
/// builds: ~2.5× the hierarchy's total capacity in lines, plus a ragged
/// tail so the extrapolation's remainder path is exercised.
fn stream_lines(h: &Hierarchy) -> u64 {
    let cap: u64 = h.levels.iter().map(|l| l.capacity_lines()).sum();
    cap * 5 / 2 + 137
}

#[test]
fn store_streams_agree_on_every_machine() {
    for m in uarch::all_machines() {
        for claim in [false, true] {
            let mut h = Hierarchy::from_machine(&m, m.cores);
            h.set_line_claim(claim);
            let line = h.line_bytes();
            let lines = stream_lines(&h);
            assert_stream_equivalent(
                &mut h,
                StreamPattern::store_lines(line, lines),
                &format!("{} stores (claim={claim})", m.arch.label()),
            );
        }
    }
}

#[test]
fn load_streams_agree_on_every_machine() {
    for m in uarch::all_machines() {
        let mut h = Hierarchy::from_machine(&m, m.cores);
        let line = h.line_bytes();
        let lines = stream_lines(&h);
        assert_stream_equivalent(
            &mut h,
            StreamPattern {
                start: 0,
                stride: line,
                count: lines,
                kind: Access::Load,
            },
            &format!("{} loads", m.arch.label()),
        );
    }
}

#[test]
fn nt_store_streams_agree_on_every_machine() {
    for m in uarch::all_machines() {
        for residual in [0.0, 0.05, 0.37, 1.0] {
            let mut h = Hierarchy::from_machine(&m, m.cores);
            let lines = stream_lines(&h);
            h.nt_store_stream(lines, residual, StreamConfig::default());
            let fast = h.mem;
            h.reset();
            h.nt_store_stream(lines, residual, StreamConfig::reference());
            assert_eq!(
                fast,
                h.mem,
                "{} NT stores (residual={residual})",
                m.arch.label()
            );
        }
    }
}

#[test]
fn strided_partial_stores_agree() {
    // A 2-line stride with partial stores: every access misses a different
    // set phase than the sequential case, and partial stores fill (RFO)
    // rather than claim.
    let mut h = Hierarchy::synthetic(4096, 32768, 262144, 64);
    let lines = stream_lines(&h);
    assert_stream_equivalent(
        &mut h,
        StreamPattern {
            start: 192,
            stride: 128,
            count: lines,
            kind: Access::StorePartial,
        },
        "synthetic strided partial stores",
    );
}

#[test]
fn sub_line_strides_fall_back_to_the_reference_loop() {
    // Strides that are not line multiples are ineligible for the closed
    // form; the driver must quietly run the per-access loop and still agree.
    let mut h = Hierarchy::synthetic(4096, 32768, 262144, 64);
    let p = StreamPattern {
        start: 0,
        stride: 24,
        count: 4096,
        kind: Access::Load,
    };
    let outcome = h.access_stream(p, StreamConfig::default());
    assert!(!outcome.fast_path);
    let fast = observables(&h);
    h.reset();
    h.access_stream(p, StreamConfig::reference());
    assert_eq!(fast, observables(&h));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized strided patterns over small synthetic hierarchies:
    /// stride varies over line multiples (including non-power-of-two
    /// multiples, which leave some sets untouched), the start is an
    /// arbitrary line phase, and all three access kinds are covered.
    #[test]
    fn random_strided_streams_agree(
        stride_lines in 1u64..7,
        start_lines in 0u64..64,
        kind_sel in 0u32..3,
        claim_sel in 0u32..2,
        extra in 0u64..500,
    ) {
        let claim = claim_sel == 1;
        let mut h = Hierarchy::synthetic(2048, 16384, 65536, 64);
        h.set_line_claim(claim);
        let kind = match kind_sel {
            0 => Access::Load,
            1 => Access::StoreFullLine,
            _ => Access::StorePartial,
        };
        let cap: u64 = h.levels.iter().map(|l| l.capacity_lines()).sum();
        // Strided streams touch 1/stride of the sets, so scale the length
        // by the stride to pass the warm threshold, plus a ragged tail.
        let count = (cap * 3) * stride_lines + extra;
        let p = StreamPattern {
            start: start_lines * 64,
            stride: stride_lines * 64,
            count,
            kind,
        };
        let fast_outcome = h.access_stream(p, StreamConfig::default());
        let fast = observables(&h);
        h.flush();
        let fast_flushed = observables(&h);
        h.reset();
        h.access_stream(p, StreamConfig::reference());
        let reference = observables(&h);
        h.flush();
        let ref_flushed = observables(&h);
        prop_assert_eq!(fast, reference, "stride={} start={} {:?}", stride_lines, start_lines, kind);
        prop_assert_eq!(fast_flushed, ref_flushed, "flush: stride={} {:?}", stride_lines, kind);
        prop_assert!(fast_outcome.extrapolated > 0,
            "no extrapolation at stride={} count={}", stride_lines, count);
    }
}
