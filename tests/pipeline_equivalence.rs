//! Equivalence suite for the throughput pipeline: the streaming session,
//! the persistent result cache, and the interned parse path must all be
//! *invisible* in the report bytes — they may only change how fast the
//! answer arrives, never the answer.

use proptest::prelude::*;

const ARCH: uarch::Arch = uarch::Arch::GoldenCove;
const BLOCKS: usize = 10;

/// A small volume-corpus session (replicas included past one grid pass
/// would need a bigger volume; 10 blocks keeps the suite quick).
fn session(threads: usize) -> engine::Session {
    engine::Session::new()
        .archs(&[ARCH])
        .volume(BLOCKS)
        .threads(threads)
        .reference(None)
}

/// Report JSON with the observational blocks zeroed: `timings` is wall
/// clock and `cache` counters legitimately differ between the batch
/// (kernel-memoizing) and streaming (parse-where-evaluated) paths.
fn normalized(report: &engine::BatchReport) -> String {
    let mut r = report.clone();
    r.timings = Default::default();
    r.cache = Default::default();
    r.to_json()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("incore-pipeline-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn streaming_matches_batch_at_one_and_eight_threads() {
    let golden = normalized(&session(1).run().expect("batch runs"));
    for threads in [1usize, 8] {
        let batch = session(threads).run().expect("batch runs");
        let streamed = session(threads).run_streamed(0).expect("stream runs");
        assert_eq!(batch.records.len(), BLOCKS);
        assert_eq!(
            normalized(&batch),
            golden,
            "batch report must not depend on thread count ({threads})"
        );
        assert_eq!(
            normalized(&streamed),
            golden,
            "streamed report must be byte-identical to batch ({threads})"
        );
    }
}

#[test]
fn warm_cache_run_is_byte_identical_to_cold() {
    let dir = temp_dir("warm");
    let cold = session(2).cache_dir(&dir).run().expect("cold runs");
    let warm = session(2).cache_dir(&dir).run().expect("warm runs");
    assert_eq!(
        normalized(&cold),
        normalized(&warm),
        "a disk-replayed run may not change a byte of the report"
    );
    // The streaming path shares the same cache entries.
    let streamed = session(2)
        .cache_dir(&dir)
        .run_streamed(0)
        .expect("warm stream runs");
    assert_eq!(normalized(&streamed), normalized(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_cache_entries_fall_back_to_recompute() {
    let dir = temp_dir("damage");
    let cold = session(1).cache_dir(&dir).run().expect("cold runs");
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rec"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "cold run persisted the corpus");
    // Truncate one entry mid-payload, scribble over a second, and stamp a
    // third with a stale format version — all three must be treated as
    // misses that recompute (and the stale one must not be trusted).
    let text = std::fs::read_to_string(&entries[0]).expect("entry reads");
    std::fs::write(&entries[0], &text[..text.len() / 2]).expect("truncate");
    std::fs::write(&entries[1], "not a cache entry at all\n").expect("scribble");
    let text = std::fs::read_to_string(&entries[2]).expect("entry reads");
    let stale = text.replacen("incore-diskcache v", "incore-diskcache v999", 1);
    std::fs::write(&entries[2], stale).expect("stale stamp");
    let warm = session(1)
        .cache_dir(&dir)
        .run()
        .expect("damaged entries are misses, not errors");
    assert_eq!(
        normalized(&warm),
        normalized(&cold),
        "recomputed records must replace the damaged entries bit-for-bit"
    );
    // And the recompute healed the cache: a third run replays cleanly.
    let healed = session(1).cache_dir(&dir).run().expect("healed runs");
    assert_eq!(normalized(&healed), normalized(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interner round-trip: every string resolves back verbatim, ids are
    /// dense and stable under re-interning, and distinct strings get
    /// distinct ids.
    #[test]
    fn interner_round_trips(strings in proptest::collection::vec("[a-z0-9_.%#]{1,12}", 1..32)) {
        let mut interner = isa::Interner::new();
        let syms: Vec<isa::Sym> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), s.as_str());
            prop_assert_eq!(interner.get(s), Some(*sym));
            // Re-interning allocates nothing new: the id is stable.
            prop_assert_eq!(interner.intern(s), *sym);
        }
        let mut unique: Vec<&String> = strings.iter().collect();
        unique.sort();
        unique.dedup();
        let mut ids: Vec<u32> = syms.iter().map(|s| s.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), unique.len(), "distinct strings <-> distinct ids");
        // Ids are dense: 0..n in first-sight order.
        prop_assert!(ids.iter().all(|&i| (i as usize) < unique.len()));
    }
}
