//! The paper's quantitative claims, asserted against the reproduction.
//! Each test cites the table/figure/§ it checks.

use isa::IsaExt;

/// Table I: theoretical DP peaks — 3.92 / 6.32 / 8.52 Tflop/s.
#[test]
fn table1_theoretical_peaks() {
    let peaks: Vec<f64> = uarch::all_machines()
        .iter()
        .map(|m| m.theor_peak_dp_tflops())
        .collect();
    assert!((peaks[0] - 3.92).abs() < 0.02);
    assert!((peaks[1] - 6.32).abs() < 0.02);
    assert!((peaks[2] - 8.52).abs() < 0.03);
}

/// Table I: achieved-peak ordering Genoa > GCS > SPR, with SPR losing
/// nearly half its theoretical peak to AVX-512 throttling.
#[test]
fn table1_achieved_peaks() {
    let a: Vec<f64> = uarch::all_machines()
        .iter()
        .map(node::achieved_peak_dp_tflops)
        .collect();
    assert!(a[2] > a[0] && a[0] > a[1], "{a:?}");
    let spr = &uarch::all_machines()[1];
    assert!(a[1] / spr.theor_peak_dp_tflops() < 0.6);
}

/// §II: memory-bandwidth efficiency 87 % (GCS), 90 % (SPR), 78 % (Genoa).
#[test]
fn bandwidth_efficiencies() {
    let effs: Vec<f64> = uarch::all_machines()
        .iter()
        .map(memhier::bandwidth::full_socket_efficiency)
        .collect();
    assert!((effs[0] - 0.87).abs() < 0.05, "GCS {}", effs[0]);
    assert!((effs[1] - 0.90).abs() < 0.05, "SPR {}", effs[1]);
    assert!((effs[2] - 0.78).abs() < 0.05, "Genoa {}", effs[2]);
}

/// Table II: ports 17/12/13, SIMD 16/64/32 B, int units 6/5/4, FP units
/// 4/3/4, loads 3×128 / 2×512 / 2×256, stores 2×128 / 2×256 / 1×256.
#[test]
fn table2_all_cells() {
    let rows: Vec<_> = uarch::all_machines()
        .iter()
        .map(|m| m.table2_row())
        .collect();
    type Row = (u32, u32, u32, u32, u32, u32, u32, u32);
    let cells: Vec<Row> = rows
        .iter()
        .map(|r| {
            (
                r.num_ports,
                r.simd_width_bytes,
                r.int_units,
                r.fp_vec_units,
                r.loads_per_cycle,
                r.load_width_bits,
                r.stores_per_cycle,
                r.store_width_bits,
            )
        })
        .collect();
    assert_eq!(cells[0], (17, 16, 6, 4, 3, 128, 2, 128));
    assert_eq!(cells[1], (12, 64, 5, 3, 2, 512, 2, 256));
    assert_eq!(cells[2], (13, 32, 4, 4, 2, 256, 1, 256));
}

/// Table III: measured (simulated) throughputs within tolerance of the
/// paper's values for every cell.
#[test]
fn table3_throughput_cells() {
    use bench::ibench::{instruction_throughput, Instr};
    let ms = uarch::all_machines();
    let lanes = [2.0, 8.0, 4.0];
    // (instr, paper GCS, SPR, Genoa, tolerance, per-lane?)
    let rows: &[(Instr, [f64; 3], f64, bool)] = &[
        (Instr::VecAdd, [8.0, 16.0, 8.0], 0.5, true),
        (Instr::VecMul, [8.0, 16.0, 8.0], 0.5, true),
        (Instr::VecFma, [8.0, 16.0, 8.0], 0.5, true),
        (Instr::VecDiv, [0.4, 0.5, 0.8], 0.12, true),
        (Instr::ScalarAdd, [4.0, 2.0, 2.0], 0.3, false),
        (Instr::ScalarMul, [4.0, 2.0, 2.0], 0.3, false),
        (Instr::ScalarFma, [4.0, 2.0, 2.0], 0.3, false),
    ];
    for (instr, paper, tol, per_lane) in rows {
        for (i, m) in ms.iter().enumerate() {
            let mut tp = instruction_throughput(m, *instr);
            if *per_lane {
                tp *= lanes[i];
            }
            assert!(
                (tp - paper[i]).abs() <= *tol,
                "{} on {}: {} vs paper {}",
                instr.name(),
                m.arch.chip(),
                tp,
                paper[i]
            );
        }
    }
}

/// Table III: gather throughput 1/4, 1/3, 1/8 cache lines per cycle.
#[test]
fn table3_gather_cells() {
    use bench::ibench::{instruction_throughput, Instr};
    let ms = uarch::all_machines();
    let cl_per_gather = [2.0, 8.0, 4.0];
    let paper = [0.25, 1.0 / 3.0, 0.125];
    for (i, m) in ms.iter().enumerate() {
        let cl_cy = instruction_throughput(m, Instr::Gather) * cl_per_gather[i];
        assert!(
            (cl_cy - paper[i]).abs() < 0.05,
            "{}: {cl_cy}",
            m.arch.chip()
        );
    }
}

/// Table III: latencies. V2 dominates (lower or equal everywhere); the
/// exact cells match the paper.
#[test]
fn table3_latency_cells() {
    use bench::ibench::{instruction_latency, Instr};
    let ms = uarch::all_machines();
    let rows: &[(Instr, [f64; 3])] = &[
        (Instr::VecAdd, [2.0, 2.0, 3.0]),
        (Instr::VecMul, [3.0, 4.0, 3.0]),
        (Instr::VecFma, [4.0, 4.0, 4.0]),
        (Instr::ScalarAdd, [2.0, 2.0, 3.0]),
        (Instr::ScalarMul, [3.0, 4.0, 3.0]),
        (Instr::ScalarFma, [4.0, 5.0, 4.0]),
        (Instr::ScalarDiv, [12.0, 14.0, 13.0]),
    ];
    for (instr, paper) in rows {
        for (i, m) in ms.iter().enumerate() {
            let lat = instruction_latency(m, *instr);
            assert!(
                (lat - paper[i]).abs() < 0.35,
                "{} on {}: {lat} vs paper {}",
                instr.name(),
                m.arch.chip(),
                paper[i]
            );
        }
    }
}

/// Fig. 2: the frequency end-points — SPR falls to 2.0 GHz (53 % of turbo)
/// for AVX-512 and 3.0 GHz (78 %) for SSE/AVX; Genoa to 3.1 GHz (84 %);
/// GCS flat at 3.4; GCS/SPR AVX-512 ratio = 1.7×.
#[test]
fn fig2_endpoints() {
    let gcs = uarch::Machine::neoverse_v2();
    let spr = uarch::Machine::golden_cove();
    let genoa = uarch::Machine::zen4();
    assert_eq!(node::sustained_freq_ghz(&gcs, IsaExt::Neon, 72), 3.4);
    assert_eq!(node::sustained_freq_ghz(&spr, IsaExt::Avx512, 52), 2.0);
    assert_eq!(node::sustained_freq_ghz(&spr, IsaExt::Sse, 52), 3.0);
    assert_eq!(node::sustained_freq_ghz(&genoa, IsaExt::Avx512, 96), 3.1);
    let ratio: f64 = node::sustained_freq_ghz(&gcs, IsaExt::Neon, 72)
        / node::sustained_freq_ghz(&spr, IsaExt::Avx512, 52);
    assert!((ratio - 1.7).abs() < 1e-9);
}

/// Fig. 4: the four headline curves — GCS 1.0 automatic; SPR standard
/// 1.75–2.0 with SpecI2M ≤ 25 %; SPR NT ≈ 1.1 residual; Genoa standard 2.0
/// and NT 1.0.
#[test]
fn fig4_headline_curves() {
    use memhier::{store_traffic_ratio, StoreKind};
    let gcs = uarch::Machine::neoverse_v2();
    let spr = uarch::Machine::golden_cove();
    let genoa = uarch::Machine::zen4();

    assert!((store_traffic_ratio(&gcs, 72, StoreKind::Standard).ratio - 1.0).abs() < 0.05);

    let spr_low = store_traffic_ratio(&spr, 1, StoreKind::Standard).ratio;
    let spr_high = store_traffic_ratio(&spr, 13, StoreKind::Standard).ratio;
    assert!((spr_low - 2.0).abs() < 0.05);
    assert!((1.70..=1.85).contains(&spr_high), "{spr_high}");

    let spr_nt = store_traffic_ratio(&spr, 13, StoreKind::NonTemporal).ratio;
    assert!((spr_nt - 1.1).abs() < 0.05, "{spr_nt}");

    assert!((store_traffic_ratio(&genoa, 96, StoreKind::Standard).ratio - 2.0).abs() < 0.05);
    assert!((store_traffic_ratio(&genoa, 96, StoreKind::NonTemporal).ratio - 1.0).abs() < 0.02);
}

/// Fig. 3 aggregate claims on the full corpus (this is the long test):
/// OSACA ≥ 90 % optimistic with ≤ a handful of >2× misses; MCA mostly
/// pessimistic with a heavier >2× tail.
#[test]
fn fig3_corpus_claims() {
    let records = bench::rpe_corpus(&[
        uarch::Arch::NeoverseV2,
        uarch::Arch::GoldenCove,
        uarch::Arch::Zen4,
    ]);
    assert_eq!(records.len(), 416);
    let osaca: Vec<f64> = records.iter().map(|r| r.rpe_osaca).collect();
    let mca: Vec<f64> = records.iter().map(|r| r.rpe_mca).collect();
    let so = bench::fig3::summarize(&osaca);
    let sm = bench::fig3::summarize(&mca);
    assert!(
        so.optimistic_fraction >= 0.90,
        "osaca {:.2}",
        so.optimistic_fraction
    );
    assert!(so.off_by_2x <= 5, "osaca off-by-2x {}", so.off_by_2x);
    assert!(
        sm.optimistic_fraction <= 0.5,
        "mca {:.2}",
        sm.optimistic_fraction
    );
    assert!(
        sm.off_by_2x >= so.off_by_2x,
        "mca tail {} vs osaca {}",
        sm.off_by_2x,
        so.off_by_2x
    );
    // The paper's V2 observation: MCA's |RPE| is far worse than OSACA's on
    // GCS (52 % vs 26 % in the paper).
    let gcs_o: Vec<f64> = records
        .iter()
        .filter(|r| r.chip == "GCS")
        .map(|r| r.rpe_osaca)
        .collect();
    let gcs_m: Vec<f64> = records
        .iter()
        .filter(|r| r.chip == "GCS")
        .map(|r| r.rpe_mca)
        .collect();
    assert!(
        bench::fig3::summarize(&gcs_m).mean_abs > 2.0 * bench::fig3::summarize(&gcs_o).mean_abs,
        "MCA should be much worse on GCS"
    );
}
