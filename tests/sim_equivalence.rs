//! Equivalence regression for the event-driven simulator core: on every
//! corpus block and on randomized dependency chains, the event engine
//! (`SimConfig::default()`) must produce *bit-identical* results to the
//! naive cycle-stepped reference engine (`SimConfig { reference: true }`).
//! This is the contract that lets `validate --json` stay byte-identical
//! across the engine rewrite.

use proptest::prelude::*;

/// The observable fields of a [`exec::SimResult`], with floats as bits so
/// equality is exact. `early_exit_iter` is engine bookkeeping and is
/// deliberately excluded — it is the one field allowed to differ.
fn bits(r: exec::SimResult) -> (u64, u64, u64, bool) {
    (
        r.cycles_per_iter.to_bits(),
        r.total_cycles,
        r.uops_per_cycle.to_bits(),
        r.truncated,
    )
}

fn assert_engines_agree(m: &uarch::Machine, k: &isa::Kernel, cfg: exec::SimConfig, label: &str) {
    let event = exec::simulate(m, k, cfg);
    let reference = exec::simulate(
        m,
        k,
        exec::SimConfig {
            reference: true,
            ..cfg
        },
    );
    assert_eq!(
        bits(event),
        bits(reference),
        "{label} on {}: event {event:?} vs reference {reference:?}",
        m.arch.label()
    );
}

/// Every corpus variant on every machine, with a reduced iteration count
/// so the naive engine stays affordable in debug builds. The full-length
/// default config is covered per-machine by `default_config_subset` below
/// and corpus-wide by the `sim_core` bench (which asserts equivalence on
/// all 416 blocks at `SimConfig::default()`).
#[test]
fn corpus_engines_agree_everywhere() {
    let cfg = exec::SimConfig {
        iterations: 40,
        warmup: 10,
        ..Default::default()
    };
    for m in uarch::all_machines() {
        for v in kernels::variants_for(m.arch) {
            let k = kernels::generate_kernel(&v, &m);
            assert_engines_agree(&m, &k, cfg, &v.label());
        }
    }
}

/// A per-machine slice at the exact default config the validation
/// pipeline uses (200 iterations, 50 warm-up).
#[test]
fn default_config_subset() {
    for m in uarch::all_machines() {
        for v in kernels::variants_for(m.arch).iter().take(6) {
            let k = kernels::generate_kernel(v, &m);
            assert_engines_agree(&m, &k, exec::SimConfig::default(), &v.label());
        }
    }
}

/// Early exit disabled must also match — it removes the extrapolation
/// but keeps the event-jumping clock.
#[test]
fn no_early_exit_still_agrees() {
    let m = uarch::Machine::zen4();
    let cfg = exec::SimConfig {
        iterations: 60,
        warmup: 15,
        early_exit: false,
        ..Default::default()
    };
    for v in kernels::variants_for(m.arch).iter().take(8) {
        let k = kernels::generate_kernel(v, &m);
        assert_engines_agree(&m, &k, cfg, &v.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random dependency chains: a handful of vector ops over random
    /// registers, so chains, fan-out, and port contention vary freely.
    /// `vdivpd` exercises occupancy > 1 (port blocking disables the
    /// steady-state extrapolation but not the event clock).
    #[test]
    fn random_dependency_chains_agree(
        ops in prop::collection::vec(
            (
                prop::sample::select(vec!["vaddpd", "vmulpd", "vfmadd231pd", "vdivpd", "vxorpd"]),
                0u8..8, 0u8..8, 0u8..8,
            ),
            1..10,
        ),
        iterations in 8usize..48,
    ) {
        let mut asm = String::new();
        for (op, r1, r2, r3) in &ops {
            asm.push_str(&format!("{op} %ymm{r1}, %ymm{r2}, %ymm{r3}\n"));
        }
        let k = isa::parse_kernel(&asm, isa::Isa::X86).unwrap();
        let cfg = exec::SimConfig {
            iterations,
            warmup: iterations / 4,
            ..Default::default()
        };
        for m in [uarch::Machine::golden_cove(), uarch::Machine::zen4()] {
            let event = exec::simulate(&m, &k, cfg);
            let reference = exec::simulate(
                &m,
                &k,
                exec::SimConfig { reference: true, ..cfg },
            );
            prop_assert_eq!(
                bits(event),
                bits(reference),
                "{} on:\n{}",
                m.arch.label(),
                asm
            );
        }
    }

    /// Load/store mixes on the aarch64 machine: stores complete on a
    /// different schedule (last µ-op + 1), which the event clock must
    /// reproduce exactly.
    #[test]
    fn random_memory_chains_agree_on_v2(
        n_pairs in 1usize..5,
        offset in prop::sample::select(vec![0u32, 8, 16, 64]),
    ) {
        let m = uarch::Machine::neoverse_v2();
        let mut asm = String::new();
        for i in 0..n_pairs {
            asm.push_str(&format!("ldr q{i}, [x1, #{offset}]\n"));
            asm.push_str(&format!("fadd v{i}.2d, v{i}.2d, v{}.2d\n", i + 8));
            asm.push_str(&format!("str q{i}, [x2, #{offset}]\n"));
        }
        let k = isa::parse_kernel(&asm, isa::Isa::AArch64).unwrap();
        let cfg = exec::SimConfig { iterations: 32, warmup: 8, ..Default::default() };
        let event = exec::simulate(&m, &k, cfg);
        let reference = exec::simulate(&m, &k, exec::SimConfig { reference: true, ..cfg });
        prop_assert_eq!(bits(event), bits(reference), "{}", asm);
    }
}
