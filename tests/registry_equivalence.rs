//! Acceptance gates of the data-driven machine registry: the registry's
//! paper-trio entries must be indistinguishable — bit-for-bit — from the
//! hand-written constructors, and every registry entry must survive the
//! machine-file format round trip unchanged.

use proptest::prelude::*;

/// The registry path (composition builders) and the direct constructors
/// produce identical corpus validation reports: same records, same
/// summaries, same JSON bytes. Analytical predictors only — the reference
/// simulator adds nothing to a model-identity check and would dominate
/// the runtime; timings are wall-clock observations and are zeroed.
#[test]
fn registry_trio_corpus_report_is_bit_identical_to_direct_models() {
    let zeroed = |mut r: engine::BatchReport| {
        r.timings = engine::RunTimings::default();
        r.to_json()
    };
    let direct = engine::Session::new()
        .threads(0)
        .reference(None)
        .run()
        .expect("direct run");
    let registry = engine::Session::new()
        .threads(0)
        .machines(vec![
            uarch::registry::machine("neoverse-v2").expect("registered"),
            uarch::registry::machine("golden-cove").expect("registered"),
            uarch::registry::machine("zen4").expect("registered"),
        ])
        .reference(None)
        .run()
        .expect("registry run");
    assert_eq!(
        zeroed(direct),
        zeroed(registry),
        "registry trio must be bit-identical to the hand-written models"
    );
}

/// Every registry entry — family and derived alike — exports, imports,
/// and re-exports to the same bytes.
#[test]
fn every_registry_entry_round_trips_through_the_machine_file_format() {
    for entry in uarch::registry::entries() {
        let exported = (entry.build)().build().to_json();
        let imported = uarch::Machine::from_json(&exported)
            .unwrap_or_else(|e| panic!("{}: import failed: {e}", entry.id));
        assert_eq!(exported, imported.to_json(), "{}", entry.id);
    }
}

proptest! {
    /// Import is idempotent for any registry entry: once a model has been
    /// through the machine-file format, further round trips are fixed
    /// points — both as bytes and as imported machines.
    #[test]
    fn machine_file_import_is_idempotent(idx in 0usize..uarch::registry::entries().len()) {
        let entry = &uarch::registry::entries()[idx];
        let first = (entry.build)().build().to_json();
        let once = uarch::Machine::from_json(&first).expect("first import");
        let second = once.to_json();
        let twice = uarch::Machine::from_json(&second).expect("second import");
        prop_assert_eq!(&second, &twice.to_json(), "{}", entry.id);
        prop_assert_eq!(first, second, "{}", entry.id);
    }
}
