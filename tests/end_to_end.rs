//! End-to-end integration: compiler personalities → assembly text → parser
//! → machine models → analyzer/simulator/baseline, asserting the
//! relationships the whole reproduction rests on.

use kernels::{variants_for, OptLevel};

/// The analytical model is a *lower bound*: on the overwhelming majority of
/// corpus blocks the simulated measurement is at least as slow (Fig. 3:
/// 96 % in the paper; the known exceptions are the Neoverse V2 FMA
/// accumulator forwarding cases).
#[test]
fn model_is_a_lower_bound_on_nearly_all_blocks() {
    for m in uarch::all_machines() {
        let variants = variants_for(m.arch);
        let mut optimistic = 0usize;
        let mut total = 0usize;
        for v in variants.iter().filter(|v| v.opt == OptLevel::O2) {
            let k = kernels::generate_kernel(v, &m);
            let sim = exec::cycles_per_iteration(&m, &k);
            let model = incore::analyze(&m, &k).prediction;
            total += 1;
            if model <= sim + 1e-6 {
                optimistic += 1;
            }
        }
        assert!(
            optimistic as f64 / total as f64 >= 0.9,
            "{}: only {optimistic}/{total} blocks are lower-bounded",
            m.arch.label()
        );
    }
}

/// The MCA baseline is mostly pessimistic — strictly more often above the
/// measurement than the in-core model is.
#[test]
fn mca_is_more_pessimistic_than_osaca() {
    for m in uarch::all_machines() {
        let mut osaca_above = 0usize;
        let mut mca_above = 0usize;
        for v in variants_for(m.arch)
            .iter()
            .filter(|v| v.opt == OptLevel::O3)
        {
            let k = kernels::generate_kernel(v, &m);
            let sim = exec::cycles_per_iteration(&m, &k);
            if incore::analyze(&m, &k).prediction > sim + 1e-6 {
                osaca_above += 1;
            }
            if mca::predict(&m, &k).cycles_per_iter > sim + 1e-6 {
                mca_above += 1;
            }
        }
        assert!(
            mca_above > osaca_above,
            "{}: mca_above={mca_above} osaca_above={osaca_above}",
            m.arch.label()
        );
    }
}

/// No instruction of the generated corpus needs the heuristic database
/// fallback — the machine models cover every emitted form.
#[test]
fn corpus_fully_covered_by_instruction_databases() {
    for m in uarch::all_machines() {
        for v in variants_for(m.arch) {
            let k = kernels::generate_kernel(&v, &m);
            let a = incore::analyze(&m, &k);
            assert_eq!(a.fallbacks, 0, "{} uses fallback entries", v.label());
        }
    }
}

/// Wider SIMD must never make the per-element in-core prediction worse on
/// the machine that natively supports it: ICX@512 beats -O1 scalar per
/// element on Golden Cove for every vectorizable kernel.
#[test]
fn vectorization_pays_off_on_golden_cove() {
    let m = uarch::Machine::golden_cove();
    for kernel in kernels::StreamKernel::ALL {
        if kernel.is_serial() {
            continue;
        }
        let mk = |opt| kernels::Variant {
            kernel,
            compiler: kernels::Compiler::Icx,
            opt,
            arch: m.arch,
        };
        let scalar_v = mk(OptLevel::O1);
        let vector_v = mk(OptLevel::O3);
        let sc = incore::analyze(&m, &kernels::generate_kernel(&scalar_v, &m)).prediction;
        let cfg = kernels::gen_cfg(&vector_v, &m);
        let elems = (cfg.width.max(64) as f64 / 64.0) * cfg.unroll as f64;
        let vc = incore::analyze(&m, &kernels::generate_kernel(&vector_v, &m)).prediction / elems;
        assert!(
            vc <= sc + 1e-9,
            "{}: vector {:.3} cy/elem vs scalar {:.3}",
            kernel.name(),
            vc,
            sc
        );
    }
}

/// The three machines rank on the paper's headline single-core axes:
/// Golden Cove wins vectorized throughput per cycle, Neoverse V2 wins
/// scalar throughput and latency.
#[test]
fn microarchitectural_rankings_hold() {
    let gcs = uarch::Machine::neoverse_v2();
    let spr = uarch::Machine::golden_cove();

    // Peak vector FMA DP elements/cy: SPR 16 vs GCS 8.
    assert!(spr.fma_dp_flops_per_cycle > gcs.fma_dp_flops_per_cycle);

    // Scalar FP throughput: GCS 4/cy vs SPR 2/cy, via the analyzers.
    let scalar_tp = |m: &uarch::Machine, asm: &str, isa_| {
        let k = isa::parse_kernel(asm, isa_).unwrap();
        incore::analyze(m, &k).tp_bound
    };
    let mut a64 = String::from(".L0:\n");
    let mut x86 = String::from(".L0:\n");
    for i in 0..8 {
        a64.push_str(&format!("    fadd d{i}, d14, d15\n"));
        x86.push_str(&format!("    vaddsd %xmm14, %xmm15, %xmm{i}\n"));
    }
    a64.push_str("    subs x5, x5, #1\n    b.ne .L0\n");
    x86.push_str("    subq $1, %rax\n    jne .L0\n");
    let gcs_cy = scalar_tp(&gcs, &a64, isa::Isa::AArch64);
    let spr_cy = scalar_tp(&spr, &x86, isa::Isa::X86);
    assert!(
        gcs_cy < spr_cy,
        "gcs {gcs_cy} should beat spr {spr_cy} on scalar FP"
    );
}

/// The store benchmark and the ECM/WA factors are consistent: the WA ratio
/// measured by the memory simulator matches the factor the ECM model needs.
#[test]
fn wa_ratio_feeds_ecm_consistently() {
    for m in uarch::all_machines() {
        let measured = memhier::store_traffic_ratio(&m, 1, memhier::StoreKind::Standard).ratio;
        let expected = match m.arch {
            uarch::Arch::NeoverseV2 => 1.0,
            _ => 2.0,
        };
        assert!(
            (measured - expected).abs() < 0.05,
            "{}: {measured}",
            m.arch.label()
        );
    }
}

/// Intel-syntax input produces identical analyses to AT&T (the normalizer
/// maps both to the same internal representation).
#[test]
fn intel_syntax_matches_att() {
    let att = "\
.L2:
    vmovupd (%rsi,%rax), %zmm0
    vfmadd231pd %zmm1, %zmm2, %zmm0
    vmovupd %zmm0, (%rdi,%rax)
    addq $64, %rax
    cmpq %rcx, %rax
    jne .L2
";
    let intel = "\
.L2:
    vmovupd zmm0, zmmword ptr [rsi + rax]
    vfmadd231pd zmm0, zmm2, zmm1
    vmovupd zmmword ptr [rdi + rax], zmm0
    add rax, 64
    cmp rax, rcx
    jne .L2
";
    let ka = isa::parse_kernel(att, isa::Isa::X86).unwrap();
    let ki = isa::parse_kernel(intel, isa::Isa::X86).unwrap();
    assert_eq!(ka.instructions.len(), ki.instructions.len());
    for m in [uarch::Machine::golden_cove(), uarch::Machine::zen4()] {
        let aa = incore::analyze(&m, &ka);
        let ai = incore::analyze(&m, &ki);
        assert!(
            (aa.prediction - ai.prediction).abs() < 1e-9,
            "{}",
            m.arch.label()
        );
        assert!((aa.lcd - ai.lcd).abs() < 1e-9);
        let sa = exec::cycles_per_iteration(&m, &ka);
        let si = exec::cycles_per_iteration(&m, &ki);
        assert!(
            (sa - si).abs() < 0.05,
            "{}: att {sa} intel {si}",
            m.arch.label()
        );
    }
}

/// A machine model exported to JSON and reloaded validates the whole
/// corpus identically.
#[test]
fn machine_file_roundtrip_preserves_corpus_predictions() {
    let m = uarch::Machine::zen4();
    let loaded = uarch::Machine::from_json(&m.to_json()).unwrap();
    for v in kernels::variants_for(m.arch).iter().take(40) {
        let k = kernels::generate_kernel(v, &m);
        let a = incore::analyze(&m, &k).prediction;
        let b = incore::analyze(&loaded, &k).prediction;
        assert!((a - b).abs() < 1e-12, "{}", v.label());
    }
}
