//! Property-based integration tests over the generated corpus and random
//! kernels: structural invariants that must hold for *every* input.

use proptest::prelude::*;

/// Every corpus variant round-trips: generate → parse → analyze →
/// simulate, with finite positive results and consistent bounds.
#[test]
fn corpus_structural_invariants() {
    for m in uarch::all_machines() {
        for v in kernels::variants_for(m.arch) {
            let k = kernels::generate_kernel(&v, &m);
            assert!(k.loop_label.is_some(), "{}", v.label());
            assert!(k.instructions.last().unwrap().is_branch(), "{}", v.label());

            let a = incore::analyze(&m, &k);
            assert!(
                a.prediction.is_finite() && a.prediction > 0.0,
                "{}",
                v.label()
            );
            assert!(a.prediction + 1e-9 >= a.tp_bound, "{}", v.label());
            assert!(a.prediction + 1e-9 >= a.lcd, "{}", v.label());
            assert!(
                a.cp_latency + 1e-9 >= a.lcd || a.lcd <= a.cp_latency + 64.0,
                "{}",
                v.label()
            );

            // Port loads are non-negative and the max equals the bound.
            let max_load = a.port_loads.iter().copied().fold(0.0f64, f64::max);
            assert!((max_load - a.tp_bound).abs() < 1e-6, "{}", v.label());
        }
    }
}

/// The per-instruction pressure rows decompose the totals exactly.
#[test]
fn pressure_rows_sum_to_port_loads() {
    let m = uarch::Machine::golden_cove();
    for v in kernels::variants_for(m.arch).iter().take(60) {
        let k = kernels::generate_kernel(v, &m);
        let a = incore::analyze(&m, &k);
        for p in 0..a.port_loads.len() {
            let sum: f64 = a.per_inst.iter().map(|r| r.loads[p]).sum();
            assert!(
                (sum - a.port_loads[p]).abs() < 1e-6,
                "{} port {p}",
                v.label()
            );
        }
    }
}

/// Store-only sweeps are bounded in [1, 2] everywhere and monotone in the
/// NT flag (NT never increases traffic).
#[test]
fn store_sweep_bounds() {
    for m in uarch::all_machines() {
        for n in [1, 2, 7, m.cores / 2, m.cores] {
            let std = memhier::store_traffic_ratio(&m, n, memhier::StoreKind::Standard).ratio;
            assert!(
                (1.0..=2.05).contains(&std),
                "{} n={n}: {std}",
                m.arch.label()
            );
            if m.isa == isa::Isa::X86 {
                let nt = memhier::store_traffic_ratio(&m, n, memhier::StoreKind::NonTemporal).ratio;
                assert!(nt <= std + 1e-9, "{} n={n}", m.arch.label());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random unrolled ADD-style kernels: prediction scales (weakly
    /// sub-additively) with unroll, and the simulator stays above the model.
    #[test]
    fn random_unroll_scaling(unroll in 1usize..6, width_sel in 0usize..3) {
        let m = uarch::Machine::golden_cove();
        let width = [128u16, 256, 512][width_sel];
        let cfg = kernels::GenCfg {
            width,
            unroll,
            accumulators: 1,
            fma: true,
            legacy_sse: false,
            sve: false,
            nt_stores: false,
            post_index: false,
        };
        let asm = kernels::x86::emit(kernels::StreamKernel::Add, &cfg);
        let k = isa::parse_kernel(&asm, isa::Isa::X86).unwrap();
        let a = incore::analyze(&m, &k);
        let sim = exec::cycles_per_iteration(&m, &k);
        prop_assert!(a.prediction > 0.0);
        prop_assert!(sim + 1e-6 >= a.prediction, "sim={sim} model={}", a.prediction);

        // The throughput bound grows at most linearly with unroll.
        let base_cfg = kernels::GenCfg { unroll: 1, ..cfg };
        let base_asm = kernels::x86::emit(kernels::StreamKernel::Add, &base_cfg);
        let base_k = isa::parse_kernel(&base_asm, isa::Isa::X86).unwrap();
        let base = incore::analyze(&m, &base_k);
        prop_assert!(a.tp_bound <= unroll as f64 * base.tp_bound + 1e-6);
    }

    /// Arbitrary text never panics the parsers — they fail gracefully.
    #[test]
    fn parser_never_panics(text in "[ -~\n]{0,160}") {
        let _ = isa::parse_kernel(&text, isa::Isa::X86);
        let _ = isa::parse_kernel(&text, isa::Isa::AArch64);
    }

    /// Random valid x86 arithmetic lines parse and get a sane description
    /// from every machine table.
    #[test]
    fn random_x86_arith_describes(
        op in prop::sample::select(vec!["vaddpd", "vmulpd", "vfmadd231pd", "vdivpd"]),
        r1 in 0u8..16, r2 in 0u8..16, r3 in 0u8..16,
        w in prop::sample::select(vec!["xmm", "ymm", "zmm"]),
    ) {
        let line = format!("{op} %{w}{r1}, %{w}{r2}, %{w}{r3}");
        let k = isa::parse_kernel(&line, isa::Isa::X86).unwrap();
        prop_assert_eq!(k.instructions.len(), 1);
        for m in [uarch::Machine::golden_cove(), uarch::Machine::zen4()] {
            let d = m.describe(&k.instructions[0]);
            prop_assert!(d.latency >= 1 && d.latency <= 30);
            prop_assert!(!d.uops.is_empty());
            prop_assert!(!d.from_fallback, "{} fell back on {}", m.arch.label(), line);
        }
    }
}
