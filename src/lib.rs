//! Umbrella crate re-exporting the full in-core modeling toolchain.
//!
//! See the individual crates for details:
//! - [`isa`] — registers, operands, assembly parsers (x86-64 AT&T, AArch64)
//! - [`uarch`] — port models and instruction databases for Neoverse V2
//!   (Grace), Golden Cove (Sapphire Rapids), and Zen 4 (Genoa)
//! - [`incore`] — the OSACA-style analytical in-core model (the paper's
//!   contribution)
//! - [`mca`] — an LLVM-MCA-style simulation-based baseline predictor
//! - [`exec`] — cycle-level out-of-order core simulator (hardware stand-in)
//! - [`memhier`] — cache/memory hierarchy with write-allocate evasion
//! - [`kernels`] — the 13 streaming benchmark kernels × compiler variants
//! - [`node`] — node-level models: frequency, peak, bandwidth, ECM, Roofline
//! - [`engine`] — parallel cached corpus-validation pipeline behind the
//!   unified [`uarch::Predictor`](uarch::predict::Predictor) trait

pub use engine;
pub use exec;
pub use incore;
pub use isa;
pub use kernels;
pub use mca;
pub use memhier;
pub use node;
pub use uarch;
