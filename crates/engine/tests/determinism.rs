//! The pipeline's determinism contract: a parallel run serializes
//! byte-identically to a single-threaded run, including the cache
//! counters, and the cache actually shares parses across the corpus.
//! The `timings` block is the report's one documented wall-clock field,
//! so comparisons zero it first.

use engine::Session;

fn slice_report(threads: usize) -> engine::BatchReport {
    Session::new()
        .archs(&[uarch::Arch::GoldenCove, uarch::Arch::NeoverseV2])
        .limit(48)
        .threads(threads)
        .run()
        .unwrap()
}

/// The report minus its wall-clock observations — what "deterministic"
/// is defined over.
fn canonical_json(mut report: engine::BatchReport) -> String {
    report.timings = engine::RunTimings::default();
    report.to_json()
}

#[test]
fn parallel_json_is_byte_identical_to_serial() {
    let serial = canonical_json(slice_report(1));
    for threads in [2, 4, 8] {
        let parallel = canonical_json(slice_report(threads));
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the serialized report"
        );
    }
}

#[test]
fn cache_shares_parses_across_the_slice() {
    let report = slice_report(4);
    let c = report.cache;
    assert_eq!(
        c.kernel_hits + c.kernel_misses,
        report.records.len() as u64,
        "every record makes exactly one cache lookup"
    );
    assert!(
        c.kernel_misses < report.records.len() as u64,
        "corpus variants with identical codegen must share a parse \
         ({} misses for {} lookups)",
        c.kernel_misses,
        report.records.len()
    );
}

#[test]
fn cache_counters_are_scheduling_independent() {
    let base = slice_report(1).cache;
    for threads in [2, 8] {
        assert_eq!(slice_report(threads).cache, base);
    }
}

#[test]
fn records_keep_grid_order() {
    let report = slice_report(3);
    // The grid is machines (in arch order) x variants (in corpus order);
    // the first records must be the first machine's variants, in order.
    let variants = kernels::variants_for(uarch::Arch::GoldenCove);
    for (record, variant) in report.records.iter().zip(&variants) {
        assert_eq!(record.kernel, variant.kernel.name());
        assert_eq!(record.compiler, variant.compiler.name());
        assert_eq!(record.opt, variant.opt.name());
        assert_eq!(record.chip, "SPR");
    }
}
