//! Golden snapshot of the JSON report schema (`SCHEMA_VERSION` 1).
//!
//! The test walks a real report and derives its *shape* — field names in
//! serialization order with primitive types — and compares it against the
//! checked-in fixture. Renaming, reordering, adding, or removing a field
//! fails here first. Breaking changes (rename/reorder/remove) must update
//! the fixture AND bump [`engine::SCHEMA_VERSION`] together; append-only
//! additions (like the `timings` block) update the fixture but keep the
//! version, per the policy documented on `SCHEMA_VERSION`.

use serde_json::Value;
use std::fmt::Write;

fn shape(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Object(map) => {
            out.push_str("{\n");
            for (key, val) in map.iter() {
                let _ = write!(out, "{pad}  {key}: ");
                shape(val, indent + 1, out);
                out.push('\n');
            }
            let _ = write!(out, "{pad}}}");
        }
        Value::Array(items) => match items.first() {
            Some(first) => {
                out.push('[');
                shape(first, indent, out);
                out.push(']');
            }
            None => out.push_str("[?]"),
        },
        Value::Number(_) => out.push_str("number"),
        Value::String(_) => out.push_str("string"),
        Value::Bool(_) => out.push_str("bool"),
        Value::Null => out.push_str("null"),
    }
}

#[test]
fn report_schema_matches_golden_fixture() {
    let report = engine::Session::new()
        .archs(&[uarch::Arch::GoldenCove])
        .limit(2)
        .threads(1)
        .run()
        .unwrap();
    assert_eq!(report.schema_version, engine::SCHEMA_VERSION);
    let v: Value = serde_json::from_str(&report.to_json()).unwrap();
    let mut derived = String::new();
    shape(&v, 0, &mut derived);
    let golden = include_str!("fixtures/schema_v1.txt");
    assert_eq!(
        derived.trim(),
        golden.trim(),
        "report schema drifted from tests/fixtures/schema_v1.txt — if this \
         is intentional, update the fixture and bump engine::SCHEMA_VERSION"
    );
}

#[test]
fn profiled_report_schema_matches_obs_golden_fixture() {
    // Same run with profiling on: everything from schema_v1.txt plus the
    // trailing additive `obs` block (minor version SCHEMA_MINOR). The
    // non-profiled fixture above stays valid because the block is
    // skip-serialized when absent.
    let report = engine::Session::new()
        .archs(&[uarch::Arch::GoldenCove])
        .limit(2)
        .threads(1)
        .profile(true)
        .run()
        .unwrap();
    let obs = report.obs.as_ref().expect("profiled run carries obs");
    assert_eq!(obs.schema_minor, engine::SCHEMA_MINOR);
    let v: Value = serde_json::from_str(&report.to_json()).unwrap();
    let mut derived = String::new();
    shape(&v, 0, &mut derived);
    let golden = include_str!("fixtures/schema_v1_obs.txt");
    assert_eq!(
        derived.trim(),
        golden.trim(),
        "profiled report schema drifted from tests/fixtures/schema_v1_obs.txt — \
         if this is intentional, update the fixture and bump engine::SCHEMA_MINOR"
    );
}

#[test]
fn analyze_style_single_record_report_has_the_same_shape() {
    // The one-record report `incore-cli analyze --json` builds through
    // BatchReport::from_records must serialize with the identical shape.
    let full = engine::Session::new()
        .archs(&[uarch::Arch::GoldenCove])
        .limit(1)
        .run()
        .unwrap();
    let rebuilt = engine::BatchReport::from_records(
        full.archs.clone(),
        full.predictors.clone(),
        full.reference.clone(),
        full.records.clone(),
        engine::CacheStats::default(),
    );
    let a: Value = serde_json::from_str(&full.to_json()).unwrap();
    let b: Value = serde_json::from_str(&rebuilt.to_json()).unwrap();
    let (mut sa, mut sb) = (String::new(), String::new());
    shape(&a, 0, &mut sa);
    shape(&b, 0, &mut sb);
    assert_eq!(sa, sb);
}
