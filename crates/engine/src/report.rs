//! Structured results of a batch validation run, serializable to JSON.
//!
//! The same schema backs `incore-cli validate --json` (full corpus),
//! `incore-cli analyze --json` (a single kernel wrapped in a one-record
//! report), and `bench::fig3` (which post-processes the records). The
//! schema is versioned; bump [`SCHEMA_VERSION`] on breaking shape changes.
//!
//! Serialization is deterministic — field order is fixed by declaration
//! order and floats format reproducibly — so a parallel run serializes
//! byte-identically to a single-threaded one (see the determinism test in
//! `tests/determinism.rs`). The one deliberate exception is the trailing
//! [`RunTimings`] block, which records wall-clock observations; consumers
//! comparing reports must ignore it (zero it out before comparing).

use serde::Serialize;

use crate::cache::CacheStats;

/// Version of the JSON report shape. Additive, append-only fields (such
/// as the `timings` block) do not bump the version; only breaking shape
/// changes do.
pub const SCHEMA_VERSION: u32 = 1;

/// Minor schema version, carried inside the additive [`ObsSummary`]
/// block: bumped when that block grows fields. The major shape (every
/// field present without profiling) is still [`SCHEMA_VERSION`].
///
/// History: 1 = predictor timings + cache hit rate; 2 = disk-cache
/// counters (`disk_*`, present only when a `--cache-dir` was active).
pub const SCHEMA_MINOR: u32 = 2;

/// Per-predictor counter summary inside the optional `obs` block.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ObsPredictorTimings {
    /// Stable predictor name (`"incore"`, `"mca"`, ...).
    pub predictor: String,
    /// Predict calls taken (one per evaluated block).
    pub calls: u64,
    /// Total wall-clock across those calls, in nanoseconds.
    pub total_ns: u64,
    /// Mean wall-clock per call, in nanoseconds.
    pub mean_ns: f64,
}

/// Additive observability block, present only when the run was profiled
/// (`Session::profile(true)` / `incore-cli validate --profile`). Skipped
/// entirely from serialization otherwise, so non-profiling output stays
/// byte-identical to the pre-observability schema — the golden snapshot
/// in `tests/fixtures/schema_v1.txt` covers that shape and
/// `schema_v1_obs.txt` covers this one.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ObsSummary {
    /// Minor version of this block ([`SCHEMA_MINOR`]).
    pub schema_minor: u32,
    /// Per-predictor call/latency summaries, in session predictor order,
    /// with the reference (when one ran) appended last.
    pub predictors: Vec<ObsPredictorTimings>,
    /// Corpus-cache hit rate over kernel lookups (0..1).
    pub cache_hit_rate: f64,
    /// Persistent result-cache hit rate over record lookups (0..1).
    /// Absent (with the other `disk_*` fields) when no `--cache-dir` was
    /// configured, so cache-less profiled output keeps its minor-1 shape.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_hit_rate: Option<f64>,
    /// Records replayed from the persistent cache.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_hits: Option<u64>,
    /// Records computed and written to the persistent cache.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_misses: Option<u64>,
    /// Entries removed by the persistent cache's capacity bound.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub disk_evictions: Option<u64>,
}

/// Where the wall-clock time of a run went. Purely observational: two
/// runs over the same inputs produce identical reports *except* for this
/// block, so tools diffing reports must zero it first. The per-phase
/// fields are summed across worker threads (they can exceed `wall_ms` on
/// a parallel run); `wall_ms` is end-to-end for the whole batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RunTimings {
    /// End-to-end wall-clock of `Session::run`, in milliseconds.
    pub wall_ms: f64,
    /// Kernel generation + decode time, summed over blocks (ms).
    pub parse_ms: f64,
    /// Reference (simulator) time, summed over blocks (ms).
    pub reference_ms: f64,
    /// Analytical predictor time, summed over blocks (ms).
    pub predictors_ms: f64,
    /// Time spent in cache lookups and replay — in-memory kernel-cache
    /// hits plus persistent result-cache probes and record decodes (ms).
    /// A cache-hit block books its time here, *not* under `parse_ms` /
    /// `reference_ms` / `predictors_ms`: replay must never double-count
    /// as compute.
    pub cache_ms: f64,
}

/// One predictor's verdict inside a record.
#[derive(Debug, Clone, Serialize)]
pub struct PredictorResult {
    /// Stable predictor name (`"incore"`, `"mca"`, ...).
    pub predictor: String,
    /// Predicted steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Relative prediction error against the record's measurement
    /// (positive = prediction faster). Absent when nothing was measured.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub rpe: Option<f64>,
    /// What the predictor thinks binds its number.
    pub bottleneck: String,
    /// Cycles of work per port; empty when the predictor has no per-port
    /// view.
    pub port_pressure: Vec<f64>,
    /// µ-ops per iteration after the predictor's decomposition.
    pub uops_per_iter: f64,
}

/// One validated block: a kernel variant on one machine, with every
/// predictor's verdict and the divergence rules' findings.
#[derive(Debug, Clone, Serialize)]
pub struct RecordReport {
    /// Kernel name (corpus kernel, or the input path for `analyze`).
    pub kernel: String,
    /// Compiler personality (empty for `analyze` inputs).
    pub compiler: String,
    /// Optimization level (empty for `analyze` inputs).
    pub opt: String,
    /// Chip label (`GCS`, `SPR`, `Genoa`).
    pub chip: String,
    /// Reference measurement in cycles/iteration, when one was taken.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub measured: Option<f64>,
    /// Every analytical predictor's verdict, in session predictor order.
    pub predictions: Vec<PredictorResult>,
    /// Divergence rule codes that fired on this record (`D001`, `D002`).
    pub divergence: Vec<String>,
}

impl RecordReport {
    /// The named predictor's verdict, if it ran.
    pub fn prediction(&self, predictor: &str) -> Option<&PredictorResult> {
        self.predictions.iter().find(|p| p.predictor == predictor)
    }
}

/// Summary statistics over a set of RPEs, mirroring the numbers quoted in
/// the paper's Fig. 3 discussion.
#[derive(Debug, Clone, Serialize)]
pub struct Summary {
    pub count: usize,
    /// Fraction of predictions on the optimistic (positive) side.
    pub optimistic_fraction: f64,
    /// Fraction within +0..10 % / +0..20 %.
    pub within_10: f64,
    pub within_20: f64,
    /// Fraction within ±10 % / ±20 % on either side.
    pub abs_within_10: f64,
    pub abs_within_20: f64,
    /// Number off by more than a factor of two (RPE ≤ −1.0).
    pub off_by_2x: usize,
    /// Mean RPE over the optimistic side only.
    pub mean_positive: f64,
    /// Mean |RPE| over everything.
    pub mean_abs: f64,
}

/// A predictor's summary over the whole run.
#[derive(Debug, Clone, Serialize)]
pub struct PredictorSummary {
    pub predictor: String,
    pub summary: Summary,
}

/// The full result of a batch validation run.
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    pub schema_version: u32,
    /// Machine labels covered, in evaluation order.
    pub archs: Vec<String>,
    /// Analytical predictor names, in evaluation order.
    pub predictors: Vec<String>,
    /// Name of the reference (measurement) predictor, if one ran.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub reference: Option<String>,
    pub records: Vec<RecordReport>,
    pub summaries: Vec<PredictorSummary>,
    /// Records with at least one divergence finding.
    pub divergent_records: usize,
    /// Records where the reference disagreed with every analytical model
    /// (`D002` — the serious kind).
    pub d002_records: usize,
    pub cache: CacheStats,
    /// Wall-clock observations — the only nondeterministic fields in the
    /// report (see [`RunTimings`]).
    pub timings: RunTimings,
    /// Observability block; `None` (and absent from the JSON) unless the
    /// run was profiled (see [`ObsSummary`]).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub obs: Option<ObsSummary>,
}

impl BatchReport {
    /// Assemble a report from evaluated records: computes the per-predictor
    /// summaries and the divergence counts. Used by `Session::run` for the
    /// corpus and by `incore-cli analyze --json` for one-record reports, so
    /// both emit the same schema.
    pub fn from_records(
        archs: Vec<String>,
        predictors: Vec<String>,
        reference: Option<String>,
        records: Vec<RecordReport>,
        cache: CacheStats,
    ) -> BatchReport {
        let summaries = predictors
            .iter()
            .map(|name| {
                let rpes: Vec<f64> = records
                    .iter()
                    .filter_map(|r| r.prediction(name).and_then(|p| p.rpe))
                    .collect();
                PredictorSummary {
                    predictor: name.clone(),
                    summary: summarize(&rpes),
                }
            })
            .collect();
        let divergent_records = records.iter().filter(|r| !r.divergence.is_empty()).count();
        let d002_records = records
            .iter()
            .filter(|r| r.divergence.iter().any(|c| c == "D002"))
            .count();
        BatchReport {
            schema_version: SCHEMA_VERSION,
            archs,
            predictors,
            reference,
            records,
            summaries,
            divergent_records,
            d002_records,
            cache,
            timings: RunTimings::default(),
            obs: None,
        }
    }

    /// Serialize the report to its canonical JSON form.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialization is infallible")
    }

    /// The named predictor's summary, if it ran.
    pub fn summary(&self, predictor: &str) -> Option<&Summary> {
        self.summaries
            .iter()
            .find(|s| s.predictor == predictor)
            .map(|s| &s.summary)
    }

    /// All RPE values of one predictor, in record order.
    pub fn rpes(&self, predictor: &str) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.prediction(predictor).and_then(|p| p.rpe))
            .collect()
    }

    /// Render the Fig. 3-style human-readable run summary: one histogram
    /// per analytical predictor plus the summary table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "validation over {} test blocks on {} ({} divergent, {} vs-reference)",
            self.records.len(),
            self.archs.join(", "),
            self.divergent_records,
            self.d002_records,
        );
        let _ = writeln!(
            out,
            "(positive RPE = prediction faster than measurement; \
             lower-bound models should sit right of 0)"
        );
        for name in &self.predictors {
            let _ = writeln!(out);
            out.push_str(&render_histogram(name, &self.rpes(name)));
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<28} {}",
            "summary",
            self.predictors
                .iter()
                .map(|p| format!("{p:>12}"))
                .collect::<String>()
        );
        let row = |label: &str, f: &dyn Fn(&Summary) -> String| {
            let cells: String = self
                .predictors
                .iter()
                .map(|p| format!("{:>12}", self.summary(p).map(f).unwrap_or_default()))
                .collect();
            format!("{label:<28} {cells}\n")
        };
        out.push_str(&row("optimistic (right of 0)", &|s| {
            format!("{:.0}%", s.optimistic_fraction * 100.0)
        }));
        out.push_str(&row("within +0..10%", &|s| {
            format!("{:.0}%", s.within_10 * 100.0)
        }));
        out.push_str(&row("within +0..20%", &|s| {
            format!("{:.0}%", s.within_20 * 100.0)
        }));
        out.push_str(&row("within ±20%", &|s| {
            format!("{:.0}%", s.abs_within_20 * 100.0)
        }));
        out.push_str(&row("off by >2x", &|s| format!("{}", s.off_by_2x)));
        out.push_str(&row("mean positive RPE", &|s| {
            format!("{:+.1}%", s.mean_positive * 100.0)
        }));
        out.push_str(&row("mean |RPE|", &|s| {
            format!("{:.1}%", s.mean_abs * 100.0)
        }));
        let _ = writeln!(
            out,
            "cache: {} kernel parses for {} lookups ({} shared)",
            self.cache.kernel_misses,
            self.cache.kernel_misses + self.cache.kernel_hits,
            self.cache.kernel_hits,
        );
        if self.timings.wall_ms > 0.0 {
            let t = &self.timings;
            let _ = writeln!(
                out,
                "time: {:.0} ms wall (per-worker sums: {:.0} ms reference, {:.0} ms predictors, {:.0} ms parse, {:.1} ms cache)",
                t.wall_ms, t.reference_ms, t.predictors_ms, t.parse_ms, t.cache_ms,
            );
        }
        if let Some(obs) = &self.obs {
            for p in &obs.predictors {
                let _ = writeln!(
                    out,
                    "profiled: {:<16} {:>5} calls, mean {:>8.1} µs/call",
                    p.predictor,
                    p.calls,
                    p.mean_ns / 1e3,
                );
            }
        }
        out
    }
}

/// Relative prediction error, positive when the prediction is faster.
pub fn rpe(measured: f64, predicted: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (measured - predicted) / measured
}

/// Summarize a slice of RPE values.
pub fn summarize(rpes: &[f64]) -> Summary {
    let count = rpes.len().max(1);
    let pos: Vec<f64> = rpes.iter().copied().filter(|r| *r >= 0.0).collect();
    Summary {
        count: rpes.len(),
        optimistic_fraction: pos.len() as f64 / count as f64,
        within_10: rpes.iter().filter(|r| (0.0..0.10).contains(*r)).count() as f64 / count as f64,
        within_20: rpes.iter().filter(|r| (0.0..0.20).contains(*r)).count() as f64 / count as f64,
        abs_within_10: rpes.iter().filter(|r| r.abs() < 0.10).count() as f64 / count as f64,
        abs_within_20: rpes.iter().filter(|r| r.abs() < 0.20).count() as f64 / count as f64,
        off_by_2x: rpes.iter().filter(|r| **r <= -1.0).count(),
        mean_positive: if pos.is_empty() {
            0.0
        } else {
            pos.iter().sum::<f64>() / pos.len() as f64
        },
        mean_abs: rpes.iter().map(|r| r.abs()).sum::<f64>() / count as f64,
    }
}

/// 10 %-wide histogram buckets from ≤ −100 % to > +100 %, as in Fig. 3.
/// Returns `(lower_edge_percent, count)` pairs.
pub fn histogram(rpes: &[f64]) -> Vec<(i32, usize)> {
    let mut buckets: Vec<(i32, usize)> = (-10..10).map(|b| (b * 10, 0)).collect();
    for &r in rpes {
        let pct = r * 100.0;
        let idx = if pct < -100.0 {
            0
        } else {
            (((pct + 100.0) / 10.0).floor() as i32).clamp(0, 19) as usize
        };
        buckets[idx].1 += 1;
    }
    buckets
}

/// Render a Fig. 3-style ASCII histogram for one predictor.
pub fn render_histogram(title: &str, rpes: &[f64]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let h = histogram(rpes);
    let max = h.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let _ = writeln!(out, "{title} (n = {})", rpes.len());
    for (edge, count) in h {
        let bar = "#".repeat(count * 50 / max);
        let marker = if edge == 0 { "|" } else { " " };
        let _ = writeln!(out, "{edge:>5}%..{:>4}% {marker} {bar} {count}", edge + 10);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpe_sign_convention() {
        // Prediction faster (lower cycles) → positive.
        assert!(rpe(10.0, 8.0) > 0.0);
        assert!(rpe(10.0, 12.0) < 0.0);
        assert_eq!(rpe(10.0, 10.0), 0.0);
        assert_eq!(rpe(0.0, 5.0), 0.0);
    }

    #[test]
    fn summary_counts() {
        let rpes = [0.05, 0.15, -0.05, -1.2, 0.5];
        let s = summarize(&rpes);
        assert_eq!(s.count, 5);
        assert_eq!(s.off_by_2x, 1);
        assert!((s.optimistic_fraction - 0.6).abs() < 1e-9);
        assert!((s.within_10 - 0.2).abs() < 1e-9);
        assert!((s.within_20 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[0.05, 0.05, -0.15, -2.0]);
        let at = |edge: i32| h.iter().find(|(e, _)| *e == edge).unwrap().1;
        assert_eq!(at(0), 2);
        assert_eq!(at(-20), 1);
        assert_eq!(at(-100), 1);
        assert_eq!(h.len(), 20);
    }
}
