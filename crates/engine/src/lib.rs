//! `engine` — the batch analysis pipeline behind the unified
//! [`Predictor`](uarch::Predictor) API.
//!
//! The crate turns "run a predictor on a kernel" into "validate a corpus":
//! a [`Session`] fans the full kernels × machines grid out over a worker
//! pool (vendored `rayon`), decodes each distinct kernel text exactly once
//! through a content-keyed [`CorpusCache`], runs every configured
//! predictor against the shared parse, scores each prediction against the
//! reference measurement, applies the `diag` divergence rules, and
//! collects everything into a JSON-serializable [`BatchReport`].
//!
//! Layering: `engine` sits above the predictors (`incore`, `mca`, `exec`)
//! and `diag`, and below the user-facing tools — `bench::fig3` and
//! `incore-cli validate` / `analyze --json` are thin wrappers over this
//! crate.
//!
//! Determinism is a design invariant, not an accident: the parallel map
//! preserves submission order, the cache counters are
//! scheduling-independent, and the report carries no run-environment
//! fields — so the serialized report is byte-identical for any `threads`
//! setting. The single carve-out is the trailing
//! [`RunTimings`](report::RunTimings) block (wall-clock observations,
//! fed by [`Predictor::predict_timed`](uarch::Predictor::predict_timed)):
//! consumers comparing reports zero it out first, which is exactly what
//! the determinism test does.

pub mod cache;
pub mod diskcache;
pub mod error;
pub mod lint;
pub mod report;
pub mod session;

pub use cache::{CacheStats, CorpusCache, EvictionStats, Lru};
pub use diskcache::{DiskCache, DiskStats};
pub use error::{Error, ErrorKind};
pub use lint::{lint_corpus, lint_corpus_machines};
pub use report::{
    histogram, render_histogram, rpe, summarize, BatchReport, ObsPredictorTimings, ObsSummary,
    PredictorResult, PredictorSummary, RecordReport, RunTimings, Summary, SCHEMA_MINOR,
    SCHEMA_VERSION,
};
pub use session::{
    evaluate_block, evaluate_block_timed, BlockLabels, BlockTimings, Session, StreamOutcome,
};
