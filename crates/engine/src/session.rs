//! The batch analysis pipeline: a corpus of kernels × machines ×
//! predictors, evaluated in parallel with content-keyed memoization.
//!
//! [`Session`] is a builder: select machines, predictors, corpus size and
//! thread count, then [`run`](Session::run) the whole grid. Each kernel
//! variant is generated and decoded **once** (via [`CorpusCache`]) and the
//! parsed kernel is shared across every predictor; the work grid is fanned
//! out over a `rayon` pool whose output ordering is deterministic, so the
//! resulting [`BatchReport`] is byte-identical regardless of thread count.
//!
//! ```
//! let report = engine::Session::new()
//!     .archs(&[uarch::Arch::GoldenCove])
//!     .limit(8)
//!     .threads(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.records.len(), 8);
//! assert!(report.summary("incore").is_some());
//! ```

use rayon::prelude::*;

use crate::cache::CorpusCache;
use crate::error::Error;
use crate::report::{
    rpe, BatchReport, ObsPredictorTimings, ObsSummary, PredictorResult, RecordReport, RunTimings,
    SCHEMA_MINOR,
};
use uarch::{Machine, Predictor};

/// Descriptive labels for one evaluated block.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockLabels<'a> {
    pub kernel: &'a str,
    pub compiler: &'a str,
    pub opt: &'a str,
}

/// Wall-clock attribution for one evaluated block, in nanoseconds.
/// Summed into [`crate::report::RunTimings`] by the batch pipeline.
#[derive(Debug, Clone, Default)]
pub struct BlockTimings {
    pub parse_ns: u64,
    pub reference_ns: u64,
    pub predictors_ns: u64,
    /// Per-predictor breakdown of `predictors_ns`, in `analytical` order.
    pub per_predictor_ns: Vec<u64>,
}

/// Evaluate one parsed kernel on one machine: run the reference (if any)
/// and every analytical predictor, compute RPEs against the reference,
/// and apply the divergence rules. This is the single block evaluation
/// both the batch pipeline and `incore-cli analyze --json` go through.
pub fn evaluate_block(
    machine: &Machine,
    kernel: &isa::Kernel,
    labels: BlockLabels<'_>,
    analytical: &[&dyn Predictor],
    reference: Option<&dyn Predictor>,
) -> RecordReport {
    evaluate_block_timed(machine, kernel, labels, analytical, reference).0
}

/// [`evaluate_block`] plus per-phase wall-clock attribution (via
/// [`Predictor::predict_timed`]). The timings are observational only —
/// the record is computed identically either way.
pub fn evaluate_block_timed(
    machine: &Machine,
    kernel: &isa::Kernel,
    labels: BlockLabels<'_>,
    analytical: &[&dyn Predictor],
    reference: Option<&dyn Predictor>,
) -> (RecordReport, BlockTimings) {
    let mut timings = BlockTimings::default();
    // One span per predictor call when the obs recorder is on (the
    // `--profile` trace shows each kernel × predictor as its own slice);
    // a single cached bool keeps the disabled path free of formatting.
    let profiling = obs::enabled();
    let measured = reference.map(|r| {
        let _span = profiling.then(|| obs::span(&format!("{}:{}", r.name(), labels.kernel)));
        let (p, took) = r.predict_timed(machine, kernel);
        timings.reference_ns = took.as_nanos() as u64;
        p.cycles_per_iter
    });
    let predictions: Vec<PredictorResult> = analytical
        .iter()
        .map(|p| {
            let _span = profiling.then(|| obs::span(&format!("{}:{}", p.name(), labels.kernel)));
            let (pred, took) = p.predict_timed(machine, kernel);
            timings.predictors_ns += took.as_nanos() as u64;
            timings.per_predictor_ns.push(took.as_nanos() as u64);
            PredictorResult {
                predictor: p.name().to_string(),
                cycles_per_iter: pred.cycles_per_iter,
                rpe: measured.map(|m| rpe(m, pred.cycles_per_iter)),
                bottleneck: pred.bottleneck.label().to_string(),
                port_pressure: pred.port_pressure,
                uops_per_iter: pred.uops_per_iter,
            }
        })
        .collect();
    let named: Vec<(&str, f64)> = predictions
        .iter()
        .map(|p| (p.predictor.as_str(), p.cycles_per_iter))
        .collect();
    let reference_named = reference.zip(measured).map(|(r, cy)| (r.name(), cy));
    let divergence = diag::divergence_diags_named(&named, reference_named)
        .into_iter()
        .map(|d| d.code.to_string())
        .collect();
    let record = RecordReport {
        kernel: labels.kernel.to_string(),
        compiler: labels.compiler.to_string(),
        opt: labels.opt.to_string(),
        chip: machine.chip.to_string(),
        measured,
        predictions,
        divergence,
    };
    (record, timings)
}

/// Builder for a batch validation run.
///
/// Defaults mirror the paper's Fig. 3 setup: all three machines, the
/// in-core model and the MCA baseline as analytical predictors, the
/// cycle-level simulator as the reference measurement, every corpus
/// variant, and one worker per available core.
pub struct Session {
    archs: Vec<uarch::Arch>,
    machines: Vec<Machine>,
    machine_files: Vec<(String, String)>,
    predictors: Vec<Box<dyn Predictor>>,
    reference: Option<Box<dyn Predictor>>,
    threads: usize,
    limit: Option<usize>,
    profile: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            archs: vec![
                uarch::Arch::NeoverseV2,
                uarch::Arch::GoldenCove,
                uarch::Arch::Zen4,
            ],
            machines: Vec::new(),
            machine_files: Vec::new(),
            predictors: vec![
                Box::new(incore::InCoreModel::new()),
                Box::new(mca::McaBaseline),
            ],
            reference: Some(Box::new(exec::CoreSimulator::default())),
            threads: 0,
            limit: None,
            profile: false,
        }
    }
}

impl Session {
    pub fn new() -> Self {
        Session::default()
    }

    /// Restrict the run to the family models of these `Arch`es (in the
    /// given order). Convenience wrapper over [`machines`](Self::machines)
    /// for the paper's trio; clears any previous explicit selection.
    pub fn archs(mut self, archs: &[uarch::Arch]) -> Self {
        self.archs = archs.to_vec();
        self.machines.clear();
        self
    }

    /// Run exactly these machine models (registry models, composed
    /// variants, anything). Replaces the default/`archs` selection;
    /// machine files still join the grid afterwards.
    pub fn machines(mut self, machines: Vec<Machine>) -> Self {
        self.machines = machines;
        self.archs.clear();
        self
    }

    /// Add a machine imported from JSON machine-file text; `label` names
    /// it in error messages. The machine joins the grid alongside the
    /// builtin ones.
    pub fn machine_file(mut self, label: impl Into<String>, json: impl Into<String>) -> Self {
        self.machine_files.push((label.into(), json.into()));
        self
    }

    /// Replace the analytical predictor set.
    pub fn predictors(mut self, predictors: Vec<Box<dyn Predictor>>) -> Self {
        self.predictors = predictors;
        self
    }

    /// Add one analytical predictor to the set.
    pub fn predictor(mut self, p: Box<dyn Predictor>) -> Self {
        self.predictors.push(p);
        self
    }

    /// Replace (or with `None`, disable) the reference measurement.
    pub fn reference(mut self, reference: Option<Box<dyn Predictor>>) -> Self {
        self.reference = reference;
        self
    }

    /// Run the default simulator reference with this configuration
    /// (iteration counts, early-exit, engine selection). Replaces any
    /// previously set reference predictor.
    pub fn sim_config(mut self, config: exec::SimConfig) -> Self {
        self.reference = Some(Box::new(exec::CoreSimulator { config }));
        self
    }

    /// Worker thread count; `0` (default) = all available cores.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Evaluate only the first `limit` blocks of the grid (test slices).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Attach the additive [`ObsSummary`] block (per-predictor counter
    /// summaries) to the report. Off by default — the block carries
    /// wall-clock observations, so profiled reports are not
    /// byte-comparable; a non-profiled run's JSON is unchanged.
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Run the full grid and collect the report.
    pub fn run(&self) -> Result<BatchReport, Error> {
        let wall_start = std::time::Instant::now();
        let cache = CorpusCache::new();
        let mut machines: Vec<Machine> = self.machines.clone();
        for arch in &self.archs {
            let m = uarch::all_machines()
                .into_iter()
                .find(|m| m.arch == *arch)
                .expect("every Arch has a builtin machine");
            machines.push(m);
        }
        for (label, json) in &self.machine_files {
            let m = cache
                .machine(json)
                .map_err(|e| e.with_context(label.clone()))?;
            machines.push((*m).clone());
        }

        let mut grid: Vec<(usize, kernels::Variant)> = Vec::new();
        for (i, m) in machines.iter().enumerate() {
            for v in kernels::variants_for(m.arch) {
                grid.push((i, v));
            }
        }
        if let Some(limit) = self.limit {
            grid.truncate(limit);
        }

        let analytical: Vec<&dyn Predictor> = self.predictors.iter().map(|b| b.as_ref()).collect();
        let reference = self.reference.as_deref();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool construction is infallible");
        let outcomes: Result<Vec<(RecordReport, BlockTimings)>, Error> = pool.install(|| {
            grid.into_par_iter()
                .map(|(mi, variant)| {
                    let machine = &machines[mi];
                    let asm = kernels::generate(&variant, machine);
                    let parse_start = std::time::Instant::now();
                    let kernel = cache
                        .kernel(&asm, machine.isa)
                        .map_err(|e| e.with_context(variant.label()))?;
                    let parse_ns = parse_start.elapsed().as_nanos() as u64;
                    let (record, mut timings) = evaluate_block_timed(
                        machine,
                        &kernel,
                        BlockLabels {
                            kernel: variant.kernel.name(),
                            compiler: variant.compiler.name(),
                            opt: variant.opt.name(),
                        },
                        &analytical,
                        reference,
                    );
                    timings.parse_ns = parse_ns;
                    Ok((record, timings))
                })
                .collect()
        });
        let (records, block_timings): (Vec<RecordReport>, Vec<BlockTimings>) =
            outcomes?.into_iter().unzip();
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut report = BatchReport::from_records(
            machines.iter().map(|m| m.name.to_string()).collect(),
            self.predictors
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
            self.reference.as_ref().map(|r| r.name().to_string()),
            records,
            cache.stats(),
        );
        report.timings = RunTimings {
            wall_ms: ms(wall_start.elapsed().as_nanos() as u64),
            parse_ms: ms(block_timings.iter().map(|t| t.parse_ns).sum()),
            reference_ms: ms(block_timings.iter().map(|t| t.reference_ns).sum()),
            predictors_ms: ms(block_timings.iter().map(|t| t.predictors_ns).sum()),
        };
        if self.profile {
            report.obs = Some(obs_summary(
                &self.predictors,
                self.reference.as_deref(),
                &block_timings,
                report.cache,
            ));
        }
        if obs::enabled() {
            let c = report.cache;
            obs::counter("engine.blocks", block_timings.len() as u64);
            obs::counter("engine.cache.kernel_hits", c.kernel_hits);
            obs::counter("engine.cache.kernel_misses", c.kernel_misses);
            obs::counter("engine.cache.machine_hits", c.machine_hits);
            obs::counter("engine.cache.machine_misses", c.machine_misses);
            // Always zero here (batch runs are unbounded) but exported so
            // the counter set matches a bounded server-side cache.
            let ev = cache.evictions();
            obs::counter("engine.cache.kernel_evictions", ev.kernel_evictions);
            obs::counter("engine.cache.machine_evictions", ev.machine_evictions);
        }
        Ok(report)
    }
}

/// Fold the per-block timing vectors into the report's [`ObsSummary`]:
/// one [`ObsPredictorTimings`] row per analytical predictor (in session
/// order), the reference appended last when one ran.
fn obs_summary(
    predictors: &[Box<dyn Predictor>],
    reference: Option<&dyn Predictor>,
    block_timings: &[BlockTimings],
    cache: crate::cache::CacheStats,
) -> ObsSummary {
    let calls = block_timings.len() as u64;
    let row = |name: &str, total_ns: u64| ObsPredictorTimings {
        predictor: name.to_string(),
        calls,
        total_ns,
        mean_ns: if calls == 0 {
            0.0
        } else {
            total_ns as f64 / calls as f64
        },
    };
    let mut rows: Vec<ObsPredictorTimings> = predictors
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let total: u64 = block_timings
                .iter()
                .map(|t| t.per_predictor_ns.get(i).copied().unwrap_or(0))
                .sum();
            row(p.name(), total)
        })
        .collect();
    if let Some(r) = reference {
        let total: u64 = block_timings.iter().map(|t| t.reference_ns).sum();
        rows.push(row(r.name(), total));
    }
    let lookups = cache.kernel_hits + cache.kernel_misses;
    ObsSummary {
        schema_minor: SCHEMA_MINOR,
        predictors: rows,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            cache.kernel_hits as f64 / lookups as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_run_produces_records_and_summaries() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(6)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.records.len(), 6);
        assert_eq!(report.predictors, vec!["incore", "mca"]);
        assert_eq!(report.reference.as_deref(), Some("sim"));
        for r in &report.records {
            assert_eq!(r.chip, "SPR");
            assert!(r.measured.unwrap() > 0.0);
            assert_eq!(r.predictions.len(), 2);
            assert!(r.predictions[0].rpe.is_some());
        }
        assert_eq!(report.summary("incore").unwrap().count, 6);
        // Every record decoded exactly once; all lookups hit or miss.
        let c = report.cache;
        assert_eq!(c.kernel_hits + c.kernel_misses, 6);
        assert!(c.kernel_misses >= 1);
    }

    #[test]
    fn run_populates_timings() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(4)
            .threads(2)
            .run()
            .unwrap();
        let t = report.timings;
        assert!(t.wall_ms > 0.0);
        assert!(t.reference_ms > 0.0, "simulator time should dominate");
        assert!(t.predictors_ms > 0.0);
        // Timings are a plain field: zeroing them is all a consumer needs
        // to do to compare reports (the determinism test relies on this).
        let mut zeroed = report.clone();
        zeroed.timings = Default::default();
        assert!(zeroed
            .to_json()
            .contains("\"timings\":{\"wall_ms\":0.0,\"parse_ms\":0.0"));
    }

    #[test]
    fn profile_attaches_obs_block_and_default_omits_it() {
        let plain = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(2)
            .threads(1)
            .run()
            .unwrap();
        assert!(plain.obs.is_none());
        assert!(!plain.to_json().contains("\"obs\""));
        let profiled = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(2)
            .threads(1)
            .profile(true)
            .run()
            .unwrap();
        let obs = profiled.obs.as_ref().expect("profiled run carries obs");
        assert_eq!(obs.schema_minor, crate::report::SCHEMA_MINOR);
        // incore, mca, then the sim reference appended last.
        let names: Vec<&str> = obs
            .predictors
            .iter()
            .map(|p| p.predictor.as_str())
            .collect();
        assert_eq!(names, vec!["incore", "mca", "sim"]);
        assert!(obs.predictors.iter().all(|p| p.calls == 2));
        assert!(obs.predictors.iter().all(|p| p.total_ns > 0));
        assert!((0.0..=1.0).contains(&obs.cache_hit_rate));
        // Stripping the block restores the non-profiled shape.
        let mut stripped = profiled.clone();
        stripped.obs = None;
        stripped.timings = Default::default();
        let mut plain_zeroed = plain.clone();
        plain_zeroed.timings = Default::default();
        assert_eq!(stripped.to_json(), plain_zeroed.to_json());
    }

    #[test]
    fn no_reference_means_no_rpes() {
        let report = Session::new()
            .archs(&[uarch::Arch::Zen4])
            .reference(None)
            .limit(3)
            .run()
            .unwrap();
        assert!(report.reference.is_none());
        for r in &report.records {
            assert!(r.measured.is_none());
            assert!(r.predictions.iter().all(|p| p.rpe.is_none()));
        }
        assert_eq!(report.summary("incore").unwrap().count, 0);
    }

    #[test]
    fn machine_file_joins_the_grid() {
        let json = uarch::Machine::zen4().to_json();
        let report = Session::new()
            .archs(&[])
            .machine_file("edited.json", json)
            .limit(4)
            .run()
            .unwrap();
        assert_eq!(report.archs, vec!["Zen 4"]);
        assert_eq!(report.records.len(), 4);
        let bad = Session::new().archs(&[]).machine_file("bad.json", "{ nope");
        let err = bad.run().unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::MachineSpec);
        assert!(err.to_string().contains("bad.json"), "{err}");
    }

    #[test]
    fn explicit_machines_replace_the_default_grid() {
        // A registry model (derived Zen 2) drives the grid and the report
        // labels come from the model's own identity, not its family tag.
        let rome = uarch::registry::machine("zen2-rome").unwrap();
        let report = Session::new()
            .machines(vec![rome])
            .reference(None)
            .limit(3)
            .run()
            .unwrap();
        assert_eq!(report.archs, vec!["Zen 2"]);
        assert_eq!(report.records.len(), 3);
        assert!(report.records.iter().all(|r| r.chip == "Rome"));
    }

    #[test]
    fn custom_predictor_set_flows_through() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .predictors(vec![
                Box::new(incore::InCoreModel::new()),
                Box::new(incore::InCoreModel::balanced()),
                Box::new(mca::McaBaseline),
            ])
            .limit(4)
            .run()
            .unwrap();
        assert_eq!(report.predictors, vec!["incore", "incore-balanced", "mca"]);
        for r in &report.records {
            assert_eq!(r.predictions.len(), 3);
        }
    }
}
