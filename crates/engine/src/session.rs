//! The batch analysis pipeline: a corpus of kernels × machines ×
//! predictors, evaluated in parallel with content-keyed memoization.
//!
//! [`Session`] is a builder: select machines, predictors, corpus size and
//! thread count, then [`run`](Session::run) the whole grid. Each kernel
//! variant is generated and decoded **once** (via [`CorpusCache`]) and the
//! parsed kernel is shared across every predictor; the work grid is fanned
//! out over a `rayon` pool whose output ordering is deterministic, so the
//! resulting [`BatchReport`] is byte-identical regardless of thread count.
//!
//! ```
//! let report = engine::Session::new()
//!     .archs(&[uarch::Arch::GoldenCove])
//!     .limit(8)
//!     .threads(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.records.len(), 8);
//! assert!(report.summary("incore").is_some());
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use rayon::prelude::*;

use crate::cache::CorpusCache;
use crate::diskcache::{self, DiskCache, DiskStats};
use crate::error::Error;
use crate::report::{
    rpe, BatchReport, ObsPredictorTimings, ObsSummary, PredictorResult, RecordReport, RunTimings,
    SCHEMA_MINOR, SCHEMA_VERSION,
};
use kernels::volume::VolumeBlock;
use uarch::{Machine, Predictor};

/// Descriptive labels for one evaluated block.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockLabels<'a> {
    pub kernel: &'a str,
    pub compiler: &'a str,
    pub opt: &'a str,
}

/// Wall-clock attribution for one evaluated block, in nanoseconds.
/// Summed into [`crate::report::RunTimings`] by the batch pipeline.
#[derive(Debug, Clone, Default)]
pub struct BlockTimings {
    pub parse_ns: u64,
    pub reference_ns: u64,
    pub predictors_ns: u64,
    /// Cache time: in-memory kernel-cache *hits* plus persistent-cache
    /// probes, record decodes, and writes. Disjoint from `parse_ns` (a
    /// kernel lookup books under exactly one of the two) and from the
    /// compute fields (a replayed block books no reference/predictor
    /// time at all) — replay must never double-count as compute.
    pub cache_ns: u64,
    /// Per-predictor breakdown of `predictors_ns`, in `analytical` order.
    /// Empty for a block replayed from the persistent cache.
    pub per_predictor_ns: Vec<u64>,
}

/// Evaluate one parsed kernel on one machine: run the reference (if any)
/// and every analytical predictor, compute RPEs against the reference,
/// and apply the divergence rules. This is the single block evaluation
/// both the batch pipeline and `incore-cli analyze --json` go through.
pub fn evaluate_block(
    machine: &Machine,
    kernel: &isa::Kernel,
    labels: BlockLabels<'_>,
    analytical: &[&dyn Predictor],
    reference: Option<&dyn Predictor>,
) -> RecordReport {
    evaluate_block_timed(machine, kernel, labels, analytical, reference).0
}

/// [`evaluate_block`] plus per-phase wall-clock attribution (via
/// [`Predictor::predict_timed`]). The timings are observational only —
/// the record is computed identically either way.
pub fn evaluate_block_timed(
    machine: &Machine,
    kernel: &isa::Kernel,
    labels: BlockLabels<'_>,
    analytical: &[&dyn Predictor],
    reference: Option<&dyn Predictor>,
) -> (RecordReport, BlockTimings) {
    let mut timings = BlockTimings::default();
    // One span per predictor call when the obs recorder is on (the
    // `--profile` trace shows each kernel × predictor as its own slice);
    // a single cached bool keeps the disabled path free of formatting.
    let profiling = obs::enabled();
    let measured = reference.map(|r| {
        let _span = profiling.then(|| obs::span(&format!("{}:{}", r.name(), labels.kernel)));
        let (p, took) = r.predict_timed(machine, kernel);
        timings.reference_ns = took.as_nanos() as u64;
        p.cycles_per_iter
    });
    let predictions: Vec<PredictorResult> = analytical
        .iter()
        .map(|p| {
            let _span = profiling.then(|| obs::span(&format!("{}:{}", p.name(), labels.kernel)));
            let (pred, took) = p.predict_timed(machine, kernel);
            timings.predictors_ns += took.as_nanos() as u64;
            timings.per_predictor_ns.push(took.as_nanos() as u64);
            PredictorResult {
                predictor: p.name().to_string(),
                cycles_per_iter: pred.cycles_per_iter,
                rpe: measured.map(|m| rpe(m, pred.cycles_per_iter)),
                bottleneck: pred.bottleneck.label().to_string(),
                port_pressure: pred.port_pressure,
                uops_per_iter: pred.uops_per_iter,
            }
        })
        .collect();
    let named: Vec<(&str, f64)> = predictions
        .iter()
        .map(|p| (p.predictor.as_str(), p.cycles_per_iter))
        .collect();
    let reference_named = reference.zip(measured).map(|(r, cy)| (r.name(), cy));
    let divergence = diag::divergence_diags_named(&named, reference_named)
        .into_iter()
        .map(|d| d.code.to_string())
        .collect();
    let record = RecordReport {
        kernel: labels.kernel.to_string(),
        compiler: labels.compiler.to_string(),
        opt: labels.opt.to_string(),
        chip: machine.chip.to_string(),
        measured,
        predictions,
        divergence,
    };
    (record, timings)
}

/// Builder for a batch validation run.
///
/// Defaults mirror the paper's Fig. 3 setup: all three machines, the
/// in-core model and the MCA baseline as analytical predictors, the
/// cycle-level simulator as the reference measurement, every corpus
/// variant, and one worker per available core.
pub struct Session {
    archs: Vec<uarch::Arch>,
    machines: Vec<Machine>,
    machine_files: Vec<(String, String)>,
    predictors: Vec<Box<dyn Predictor>>,
    reference: Option<Box<dyn Predictor>>,
    threads: usize,
    limit: Option<usize>,
    volume: Option<usize>,
    cache_dir: Option<PathBuf>,
    profile: bool,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            archs: vec![
                uarch::Arch::NeoverseV2,
                uarch::Arch::GoldenCove,
                uarch::Arch::Zen4,
            ],
            machines: Vec::new(),
            machine_files: Vec::new(),
            predictors: vec![
                Box::new(incore::InCoreModel::new()),
                Box::new(mca::McaBaseline),
            ],
            reference: Some(Box::new(exec::CoreSimulator::default())),
            threads: 0,
            limit: None,
            volume: None,
            cache_dir: None,
            profile: false,
        }
    }
}

impl Session {
    pub fn new() -> Self {
        Session::default()
    }

    /// Restrict the run to the family models of these `Arch`es (in the
    /// given order). Convenience wrapper over [`machines`](Self::machines)
    /// for the paper's trio; clears any previous explicit selection.
    pub fn archs(mut self, archs: &[uarch::Arch]) -> Self {
        self.archs = archs.to_vec();
        self.machines.clear();
        self
    }

    /// Run exactly these machine models (registry models, composed
    /// variants, anything). Replaces the default/`archs` selection;
    /// machine files still join the grid afterwards.
    pub fn machines(mut self, machines: Vec<Machine>) -> Self {
        self.machines = machines;
        self.archs.clear();
        self
    }

    /// Add a machine imported from JSON machine-file text; `label` names
    /// it in error messages. The machine joins the grid alongside the
    /// builtin ones.
    pub fn machine_file(mut self, label: impl Into<String>, json: impl Into<String>) -> Self {
        self.machine_files.push((label.into(), json.into()));
        self
    }

    /// Replace the analytical predictor set.
    pub fn predictors(mut self, predictors: Vec<Box<dyn Predictor>>) -> Self {
        self.predictors = predictors;
        self
    }

    /// Add one analytical predictor to the set.
    pub fn predictor(mut self, p: Box<dyn Predictor>) -> Self {
        self.predictors.push(p);
        self
    }

    /// Replace (or with `None`, disable) the reference measurement.
    pub fn reference(mut self, reference: Option<Box<dyn Predictor>>) -> Self {
        self.reference = reference;
        self
    }

    /// Run the default simulator reference with this configuration
    /// (iteration counts, early-exit, engine selection). Replaces any
    /// previously set reference predictor.
    pub fn sim_config(mut self, config: exec::SimConfig) -> Self {
        self.reference = Some(Box::new(exec::CoreSimulator { config }));
        self
    }

    /// Worker thread count; `0` (default) = all available cores.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Evaluate only the first `limit` blocks of the grid (test slices).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Use a volume corpus of `blocks` blocks **per machine** instead of
    /// the standard validation grid: the generator variants cycled with a
    /// replica tag per full pass (see [`kernels::volume::volume_blocks`]).
    /// The first pass reproduces the standard corpus exactly, so a volume
    /// ≤ the grid size is a prefix of the standard run.
    pub fn volume(mut self, blocks: usize) -> Self {
        self.volume = Some(blocks);
        self
    }

    /// Persist evaluated records in a content-addressed cache under
    /// `dir`, replaying them on later runs with identical inputs (same
    /// report schema, machine model, predictor set, reference, and block
    /// text). A replayed run's report is byte-identical to the computed
    /// one — floats are stored bit-exactly — except for the observational
    /// `timings` block.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attach the additive [`ObsSummary`] block (per-predictor counter
    /// summaries) to the report. Off by default — the block carries
    /// wall-clock observations, so profiled reports are not
    /// byte-comparable; a non-profiled run's JSON is unchanged.
    pub fn profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Resolve the machine list: explicit machines, then the family model
    /// per selected `Arch`, then the imported machine files.
    fn resolve_machines(&self, cache: &CorpusCache) -> Result<Vec<Machine>, Error> {
        let mut machines: Vec<Machine> = self.machines.clone();
        for arch in &self.archs {
            let m = uarch::all_machines()
                .into_iter()
                .find(|m| m.arch == *arch)
                .expect("every Arch has a builtin machine");
            machines.push(m);
        }
        for (label, json) in &self.machine_files {
            let m = cache
                .machine(json)
                .map_err(|e| e.with_context(label.clone()))?;
            machines.push((*m).clone());
        }
        Ok(machines)
    }

    /// The work grid, shared verbatim by [`run`](Self::run) and
    /// [`stream`](Self::stream): each machine's blocks in variant order —
    /// the standard validation grid (replica 0 only), or a volume corpus
    /// when [`volume`](Self::volume) is set — truncated by `limit`.
    fn grid_blocks(&self, machines: &[Machine]) -> Vec<(usize, VolumeBlock)> {
        let mut grid: Vec<(usize, VolumeBlock)> = Vec::new();
        for (i, m) in machines.iter().enumerate() {
            let blocks = match self.volume {
                Some(total) => kernels::volume::volume_blocks(m.arch, total),
                None => kernels::volume::volume_blocks(m.arch, kernels::variants_for(m.arch).len()),
            };
            grid.extend(blocks.into_iter().map(|b| (i, b)));
        }
        if let Some(limit) = self.limit {
            grid.truncate(limit);
        }
        grid
    }

    fn open_disk(&self) -> Result<Option<DiskCache>, Error> {
        self.cache_dir.as_ref().map(DiskCache::open).transpose()
    }

    /// Fixed key-part context for persistent-cache lookups: everything a
    /// result depends on besides the block text. Machine models enter as
    /// fingerprints of their canonical JSON, so editing a model (or
    /// upgrading the report schema or predictor set) misses cleanly into
    /// a recompute instead of replaying stale results.
    fn key_ctx(&self, machines: &[Machine]) -> KeyCtx {
        KeyCtx {
            schema: format!("s{SCHEMA_VERSION}.{SCHEMA_MINOR}"),
            fingerprints: machines
                .iter()
                .map(|m| format!("{:016x}", diskcache::fingerprint(m.to_json().as_bytes())))
                .collect(),
            predictors: self
                .predictors
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(","),
            reference: self
                .reference
                .as_ref()
                .map(|r| r.name().to_string())
                .unwrap_or_else(|| "-".to_string()),
        }
    }

    /// Run the full grid and collect the report.
    pub fn run(&self) -> Result<BatchReport, Error> {
        let wall_start = Instant::now();
        let cache = CorpusCache::new();
        let machines = self.resolve_machines(&cache)?;
        let disk = self.open_disk()?;
        let keys = self.key_ctx(&machines);
        let grid = self.grid_blocks(&machines);

        let analytical: Vec<&dyn Predictor> = self.predictors.iter().map(|b| b.as_ref()).collect();
        let reference = self.reference.as_deref();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("thread pool construction is infallible");
        let outcomes: Result<Vec<(RecordReport, BlockTimings)>, Error> = pool.install(|| {
            grid.into_par_iter()
                .map(|(mi, block)| {
                    process_block(
                        &machines[mi],
                        &keys.fingerprints[mi],
                        &block,
                        Some(&cache),
                        disk.as_ref(),
                        &keys,
                        &analytical,
                        reference,
                    )
                })
                .collect()
        });
        let (records, block_timings): (Vec<RecordReport>, Vec<BlockTimings>) =
            outcomes?.into_iter().unzip();
        let mut report = BatchReport::from_records(
            machines.iter().map(|m| m.name.to_string()).collect(),
            self.predictors
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
            self.reference.as_ref().map(|r| r.name().to_string()),
            records,
            cache.stats(),
        );
        report.timings = fold_timings(wall_start, block_timings.iter());
        let disk_stats = disk.as_ref().map(|d| d.stats());
        if self.profile {
            report.obs = Some(obs_summary(
                &self.predictors,
                self.reference.as_deref(),
                &block_timings,
                report.cache,
                disk_stats,
            ));
        }
        if obs::enabled() {
            let c = report.cache;
            obs::counter("engine.blocks", block_timings.len() as u64);
            obs::counter("engine.cache.kernel_hits", c.kernel_hits);
            obs::counter("engine.cache.kernel_misses", c.kernel_misses);
            obs::counter("engine.cache.machine_hits", c.machine_hits);
            obs::counter("engine.cache.machine_misses", c.machine_misses);
            // Always zero here (batch runs are unbounded) but exported so
            // the counter set matches a bounded server-side cache.
            let ev = cache.evictions();
            obs::counter("engine.cache.kernel_evictions", ev.kernel_evictions);
            obs::counter("engine.cache.machine_evictions", ev.machine_evictions);
            if let Some(s) = disk_stats {
                obs_disk_counters(s);
            }
        }
        Ok(report)
    }

    /// Evaluate the grid as a bounded-memory stream: a producer feeds
    /// blocks through a window-bounded queue to the worker pool, and
    /// completed records are delivered to `on_record` **in grid order** —
    /// at no point are more than O(window + threads) records resident, so
    /// a volume corpus of any size runs in flat memory.
    ///
    /// Determinism carries over from the batch path: the records passed
    /// to `on_record` are byte-identical (when serialized) to the
    /// corresponding [`run`](Self::run) records at any thread count.
    /// Unlike `run`, the streaming path does **not** memoize kernel
    /// parses across blocks — each block's text is parsed where it is
    /// evaluated (the interned arena makes re-parsing cheap), keeping
    /// per-block memory independent of corpus-wide text diversity. The
    /// persistent cache (when configured) works exactly as in `run`.
    ///
    /// `window` is the queue bound (`0` = 4 × threads, floor 64). On a
    /// block error
    /// the stream stops delivering at the failed block's position, drains
    /// the in-flight work, and returns the earliest-position error.
    pub fn stream(
        &self,
        window: usize,
        mut on_record: impl FnMut(RecordReport),
    ) -> Result<StreamOutcome, Error> {
        let wall_start = Instant::now();
        let cache = CorpusCache::new();
        let machines = self.resolve_machines(&cache)?;
        let disk = self.open_disk()?;
        let keys = self.key_ctx(&machines);
        let grid = self.grid_blocks(&machines);
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
        .max(1);
        // Default window: enough slack that fast blocks (cache replays)
        // don't serialize on producer/consumer handoffs, still O(1) in
        // the corpus size.
        let window = if window == 0 {
            (4 * threads).max(64)
        } else {
            window.max(1)
        };
        let analytical: Vec<&dyn Predictor> = self.predictors.iter().map(|b| b.as_ref()).collect();
        let reference = self.reference.as_deref();

        type Outcome = Result<(RecordReport, BlockTimings), Error>;
        let (work_tx, work_rx) = mpsc::sync_channel::<(usize, usize, VolumeBlock)>(window);
        let work_rx = Arc::new(Mutex::new(work_rx));
        let (res_tx, res_rx) = mpsc::sync_channel::<(usize, Outcome)>(window + threads);

        let mut emitted = 0usize;
        let mut first_err: Option<(usize, Error)> = None;
        let mut timings = RunTimings::default();
        {
            let machines = &machines;
            let keys = &keys;
            let disk = disk.as_ref();
            let analytical = &analytical;
            rayon::scope(|s| {
                s.spawn(move || {
                    for (seq, (mi, block)) in grid.into_iter().enumerate() {
                        if work_tx.send((seq, mi, block)).is_err() {
                            break;
                        }
                    }
                });
                for _ in 0..threads {
                    let work_rx = Arc::clone(&work_rx);
                    let res_tx = res_tx.clone();
                    s.spawn(move || loop {
                        let msg = work_rx.lock().expect("work queue poisoned").recv();
                        let Ok((seq, mi, block)) = msg else { break };
                        let out = process_block(
                            &machines[mi],
                            &keys.fingerprints[mi],
                            &block,
                            None,
                            disk,
                            keys,
                            analytical,
                            reference,
                        );
                        if res_tx.send((seq, out)).is_err() {
                            break;
                        }
                    });
                }
                drop(res_tx);
                // In-order delivery on this thread: a reorder buffer keyed
                // by sequence number, drained whenever the next-expected
                // block lands. An error becomes a wall at its position —
                // later results are dropped (bounding the buffer), earlier
                // ones still stream out.
                let mut next = 0usize;
                let mut buffer: BTreeMap<usize, (RecordReport, BlockTimings)> = BTreeMap::new();
                for (seq, out) in res_rx.iter() {
                    match out {
                        Err(e) => {
                            if first_err.as_ref().is_none_or(|(s, _)| seq < *s) {
                                first_err = Some((seq, e));
                                buffer.retain(|s, _| *s < seq);
                            }
                        }
                        Ok((record, t)) => {
                            accumulate(&mut timings, &t);
                            if first_err.as_ref().is_none_or(|(s, _)| seq < *s) {
                                buffer.insert(seq, (record, t));
                            }
                        }
                    }
                    while let Some((record, _)) = buffer.remove(&next) {
                        on_record(record);
                        emitted += 1;
                        next += 1;
                    }
                }
            });
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        timings.wall_ms = wall_start.elapsed().as_nanos() as f64 / 1e6;
        let disk_stats = disk.as_ref().map(|d| d.stats());
        if obs::enabled() {
            obs::counter("engine.blocks", emitted as u64);
            if let Some(s) = disk_stats {
                obs_disk_counters(s);
            }
        }
        Ok(StreamOutcome {
            blocks: emitted,
            archs: machines.iter().map(|m| m.name.to_string()).collect(),
            predictors: self
                .predictors
                .iter()
                .map(|p| p.name().to_string())
                .collect(),
            reference: self.reference.as_ref().map(|r| r.name().to_string()),
            cache: cache.stats(),
            disk: disk_stats,
            timings,
        })
    }

    /// [`stream`](Self::stream) into a full [`BatchReport`]: collects the
    /// streamed records and assembles the same report shape as
    /// [`run`](Self::run). The report is byte-identical to the batch one
    /// after normalizing the observational fields (`timings`, and `cache`
    /// — the streaming path does not memoize kernel parses, so its
    /// corpus-cache counters legitimately differ).
    pub fn run_streamed(&self, window: usize) -> Result<BatchReport, Error> {
        let mut records = Vec::new();
        let outcome = self.stream(window, |r| records.push(r))?;
        let mut report = BatchReport::from_records(
            outcome.archs.clone(),
            outcome.predictors.clone(),
            outcome.reference.clone(),
            records,
            outcome.cache,
        );
        report.timings = outcome.timings;
        Ok(report)
    }
}

/// What a [`Session::stream`] run did, minus the records themselves
/// (those went to the `on_record` sink as they completed).
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Records delivered, in grid order.
    pub blocks: usize,
    /// Machine labels covered, in evaluation order.
    pub archs: Vec<String>,
    /// Analytical predictor names, in evaluation order.
    pub predictors: Vec<String>,
    /// Name of the reference predictor, if one ran.
    pub reference: Option<String>,
    /// In-memory cache counters (machine-file imports only — the stream
    /// path does not memoize kernel parses).
    pub cache: crate::cache::CacheStats,
    /// Persistent-cache counters, when a cache directory was configured.
    pub disk: Option<DiskStats>,
    pub timings: RunTimings,
}

/// Fixed persistent-cache key parts for one session configuration.
struct KeyCtx {
    schema: String,
    /// Per-machine model fingerprint, indexed like the machine list.
    fingerprints: Vec<String>,
    predictors: String,
    reference: String,
}

fn isa_tag(isa: isa::Isa) -> &'static str {
    match isa {
        isa::Isa::X86 => "x86",
        isa::Isa::AArch64 => "aarch64",
    }
}

/// Evaluate one grid block — the single code path behind both the batch
/// and streaming pipelines. Generates the block text, decodes it (through
/// the shared cache when one is passed, else a direct arena parse),
/// replays the record from the persistent cache when possible, and
/// otherwise evaluates and stores it.
///
/// Timing attribution: the kernel lookup books under `parse_ns` on a
/// miss and `cache_ns` on a hit; persistent-cache probes, decodes, and
/// writes always book under `cache_ns`. A replayed block therefore
/// reports zero reference/predictor time — cache hits never double-count
/// as compute.
#[allow(clippy::too_many_arguments)]
fn process_block(
    machine: &Machine,
    fingerprint: &str,
    block: &VolumeBlock,
    cache: Option<&CorpusCache>,
    disk: Option<&DiskCache>,
    keys: &KeyCtx,
    analytical: &[&dyn Predictor],
    reference: Option<&dyn Predictor>,
) -> Result<(RecordReport, BlockTimings), Error> {
    let asm = block.generate(machine);
    let kernel_label = block.kernel_label();
    let mut timings = BlockTimings::default();
    // Kernel decode, on demand: through the shared memo when one is
    // passed (hit books under `cache_ns`, miss under `parse_ns`), else a
    // direct arena parse (`parse_ns`).
    let lookup = |timings: &mut BlockTimings| -> Result<Arc<isa::Kernel>, Error> {
        let lookup_start = Instant::now();
        match cache {
            Some(c) => {
                let (k, hit) = c
                    .kernel_with_hit(&asm, machine.isa)
                    .map_err(|e| e.with_context(block.variant.label()))?;
                let ns = lookup_start.elapsed().as_nanos() as u64;
                if hit {
                    timings.cache_ns += ns;
                } else {
                    timings.parse_ns += ns;
                }
                Ok(k)
            }
            None => {
                let k = isa::parse_kernel(&asm, machine.isa)
                    .map(Arc::new)
                    .map_err(|e| Error::from(e).with_context(block.variant.label()))?;
                timings.parse_ns += lookup_start.elapsed().as_nanos() as u64;
                Ok(k)
            }
        }
    };
    let labels = BlockLabels {
        kernel: &kernel_label,
        compiler: block.variant.compiler.name(),
        opt: block.variant.opt.name(),
    };
    let chip = machine.chip.to_string();
    if let Some(disk) = disk {
        let key = [
            diskcache::RECORD_CODEC_VERSION,
            keys.schema.as_str(),
            fingerprint,
            keys.predictors.as_str(),
            keys.reference.as_str(),
            isa_tag(machine.isa),
            asm.as_str(),
        ];
        let probe_start = Instant::now();
        let replayed = disk.get(&key).and_then(|payload| {
            diskcache::decode_record(&payload, &kernel_label, labels.compiler, labels.opt, &chip)
        });
        timings.cache_ns += probe_start.elapsed().as_nanos() as u64;
        if let Some(record) = replayed {
            // Batch parity: the kernel memo still sees every block, so a
            // warm run reports the same cache counters as a cold one. The
            // streaming path has no memo — a replay skips the parse.
            if cache.is_some() {
                let _ = lookup(&mut timings)?;
            }
            return Ok((record, timings));
        }
        let kernel = lookup(&mut timings)?;
        let (record, computed) =
            evaluate_block_timed(machine, &kernel, labels, analytical, reference);
        merge_computed(&mut timings, computed);
        let put_start = Instant::now();
        disk.put(&key, &diskcache::encode_record(&record));
        timings.cache_ns += put_start.elapsed().as_nanos() as u64;
        return Ok((record, timings));
    }
    let kernel = lookup(&mut timings)?;
    let (record, computed) = evaluate_block_timed(machine, &kernel, labels, analytical, reference);
    merge_computed(&mut timings, computed);
    Ok((record, timings))
}

/// Fold an `evaluate_block_timed` result into the block's timings (the
/// lookup fields were already booked by the caller).
fn merge_computed(timings: &mut BlockTimings, computed: BlockTimings) {
    timings.reference_ns += computed.reference_ns;
    timings.predictors_ns += computed.predictors_ns;
    timings.per_predictor_ns = computed.per_predictor_ns;
}

/// Sum per-block timings into the report's [`RunTimings`].
fn fold_timings<'a>(
    wall_start: Instant,
    blocks: impl Iterator<Item = &'a BlockTimings>,
) -> RunTimings {
    let mut t = RunTimings::default();
    for b in blocks {
        accumulate(&mut t, b);
    }
    t.wall_ms = wall_start.elapsed().as_nanos() as f64 / 1e6;
    t
}

fn accumulate(t: &mut RunTimings, b: &BlockTimings) {
    let ms = |ns: u64| ns as f64 / 1e6;
    t.parse_ms += ms(b.parse_ns);
    t.reference_ms += ms(b.reference_ns);
    t.predictors_ms += ms(b.predictors_ns);
    t.cache_ms += ms(b.cache_ns);
}

fn obs_disk_counters(s: DiskStats) {
    obs::counter("engine.diskcache.hits", s.hits);
    obs::counter("engine.diskcache.misses", s.misses);
    obs::counter("engine.diskcache.writes", s.writes);
    obs::counter("engine.diskcache.evictions", s.evictions);
    obs::counter("engine.diskcache.stale", s.stale);
    obs::counter("engine.diskcache.corrupt", s.corrupt);
}

/// Fold the per-block timing vectors into the report's [`ObsSummary`]:
/// one [`ObsPredictorTimings`] row per analytical predictor (in session
/// order), the reference appended last when one ran.
fn obs_summary(
    predictors: &[Box<dyn Predictor>],
    reference: Option<&dyn Predictor>,
    block_timings: &[BlockTimings],
    cache: crate::cache::CacheStats,
    disk: Option<DiskStats>,
) -> ObsSummary {
    let calls = block_timings.len() as u64;
    let row = |name: &str, total_ns: u64| ObsPredictorTimings {
        predictor: name.to_string(),
        calls,
        total_ns,
        mean_ns: if calls == 0 {
            0.0
        } else {
            total_ns as f64 / calls as f64
        },
    };
    let mut rows: Vec<ObsPredictorTimings> = predictors
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let total: u64 = block_timings
                .iter()
                .map(|t| t.per_predictor_ns.get(i).copied().unwrap_or(0))
                .sum();
            row(p.name(), total)
        })
        .collect();
    if let Some(r) = reference {
        let total: u64 = block_timings.iter().map(|t| t.reference_ns).sum();
        rows.push(row(r.name(), total));
    }
    let lookups = cache.kernel_hits + cache.kernel_misses;
    ObsSummary {
        schema_minor: SCHEMA_MINOR,
        predictors: rows,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            cache.kernel_hits as f64 / lookups as f64
        },
        disk_hit_rate: disk.map(|d| d.hit_rate()),
        disk_hits: disk.map(|d| d.hits),
        disk_misses: disk.map(|d| d.misses),
        disk_evictions: disk.map(|d| d.evictions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_run_produces_records_and_summaries() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(6)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(report.records.len(), 6);
        assert_eq!(report.predictors, vec!["incore", "mca"]);
        assert_eq!(report.reference.as_deref(), Some("sim"));
        for r in &report.records {
            assert_eq!(r.chip, "SPR");
            assert!(r.measured.unwrap() > 0.0);
            assert_eq!(r.predictions.len(), 2);
            assert!(r.predictions[0].rpe.is_some());
        }
        assert_eq!(report.summary("incore").unwrap().count, 6);
        // Every record decoded exactly once; all lookups hit or miss.
        let c = report.cache;
        assert_eq!(c.kernel_hits + c.kernel_misses, 6);
        assert!(c.kernel_misses >= 1);
    }

    #[test]
    fn run_populates_timings() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(4)
            .threads(2)
            .run()
            .unwrap();
        let t = report.timings;
        assert!(t.wall_ms > 0.0);
        assert!(t.reference_ms > 0.0, "simulator time should dominate");
        assert!(t.predictors_ms > 0.0);
        // Timings are a plain field: zeroing them is all a consumer needs
        // to do to compare reports (the determinism test relies on this).
        let mut zeroed = report.clone();
        zeroed.timings = Default::default();
        assert!(zeroed
            .to_json()
            .contains("\"timings\":{\"wall_ms\":0.0,\"parse_ms\":0.0"));
    }

    #[test]
    fn profile_attaches_obs_block_and_default_omits_it() {
        let plain = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(2)
            .threads(1)
            .run()
            .unwrap();
        assert!(plain.obs.is_none());
        assert!(!plain.to_json().contains("\"obs\""));
        let profiled = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(2)
            .threads(1)
            .profile(true)
            .run()
            .unwrap();
        let obs = profiled.obs.as_ref().expect("profiled run carries obs");
        assert_eq!(obs.schema_minor, crate::report::SCHEMA_MINOR);
        // incore, mca, then the sim reference appended last.
        let names: Vec<&str> = obs
            .predictors
            .iter()
            .map(|p| p.predictor.as_str())
            .collect();
        assert_eq!(names, vec!["incore", "mca", "sim"]);
        assert!(obs.predictors.iter().all(|p| p.calls == 2));
        assert!(obs.predictors.iter().all(|p| p.total_ns > 0));
        assert!((0.0..=1.0).contains(&obs.cache_hit_rate));
        // Stripping the block restores the non-profiled shape.
        let mut stripped = profiled.clone();
        stripped.obs = None;
        stripped.timings = Default::default();
        let mut plain_zeroed = plain.clone();
        plain_zeroed.timings = Default::default();
        assert_eq!(stripped.to_json(), plain_zeroed.to_json());
    }

    #[test]
    fn no_reference_means_no_rpes() {
        let report = Session::new()
            .archs(&[uarch::Arch::Zen4])
            .reference(None)
            .limit(3)
            .run()
            .unwrap();
        assert!(report.reference.is_none());
        for r in &report.records {
            assert!(r.measured.is_none());
            assert!(r.predictions.iter().all(|p| p.rpe.is_none()));
        }
        assert_eq!(report.summary("incore").unwrap().count, 0);
    }

    #[test]
    fn machine_file_joins_the_grid() {
        let json = uarch::Machine::zen4().to_json();
        let report = Session::new()
            .archs(&[])
            .machine_file("edited.json", json)
            .limit(4)
            .run()
            .unwrap();
        assert_eq!(report.archs, vec!["Zen 4"]);
        assert_eq!(report.records.len(), 4);
        let bad = Session::new().archs(&[]).machine_file("bad.json", "{ nope");
        let err = bad.run().unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::MachineSpec);
        assert!(err.to_string().contains("bad.json"), "{err}");
    }

    #[test]
    fn explicit_machines_replace_the_default_grid() {
        // A registry model (derived Zen 2) drives the grid and the report
        // labels come from the model's own identity, not its family tag.
        let rome = uarch::registry::machine("zen2-rome").unwrap();
        let report = Session::new()
            .machines(vec![rome])
            .reference(None)
            .limit(3)
            .run()
            .unwrap();
        assert_eq!(report.archs, vec!["Zen 2"]);
        assert_eq!(report.records.len(), 3);
        assert!(report.records.iter().all(|r| r.chip == "Rome"));
    }

    #[test]
    fn stream_delivers_in_order_and_matches_run() {
        let session = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .limit(6)
            .threads(2);
        let batch = session.run().unwrap();
        let mut streamed = Vec::new();
        let outcome = session.stream(3, |r| streamed.push(r)).unwrap();
        assert_eq!(outcome.blocks, 6);
        assert_eq!(outcome.archs, batch.archs);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch.records).unwrap(),
            "streamed records must be byte-identical to the batch ones"
        );
        assert!(outcome.timings.reference_ms > 0.0);
        // No kernel memoization on the stream path: the corpus cache only
        // served machine-file imports (none here).
        assert_eq!(outcome.cache.kernel_hits + outcome.cache.kernel_misses, 0);
    }

    #[test]
    fn stream_reports_the_earliest_failing_block() {
        // A machine file that parses but a corpus block that cannot be
        // generated is hard to fabricate; a bad machine file fails before
        // streaming starts instead.
        let session = Session::new().archs(&[]).machine_file("bad.json", "{");
        let err = session.stream(2, |_| {}).unwrap_err();
        assert_eq!(err.kind(), crate::error::ErrorKind::MachineSpec);
    }

    #[test]
    fn volume_cache_dir_replays_byte_identical() {
        let dir =
            std::env::temp_dir().join(format!("incore-session-diskcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = kernels::variants_for(uarch::Arch::GoldenCove).len();
        let session = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .volume(grid + 4)
            .threads(2)
            .reference(None)
            .cache_dir(&dir);
        let cold = session.run().unwrap();
        assert_eq!(cold.records.len(), grid + 4);
        assert!(
            cold.records[grid..]
                .iter()
                .all(|r| r.kernel.contains("#r1")),
            "past one grid pass the volume corpus wraps with replica labels"
        );
        let warm = session.run().unwrap();
        let (mut c, mut w) = (cold.clone(), warm.clone());
        c.timings = Default::default();
        w.timings = Default::default();
        assert_eq!(
            c.to_json(),
            w.to_json(),
            "a disk-replayed run must serialize byte-identically"
        );
        assert!(warm.timings.cache_ms > 0.0);
        assert_eq!(
            warm.timings.predictors_ms, 0.0,
            "replayed blocks book no compute time"
        );
        // The streaming path shares the same cache: a third pass replays
        // every block from disk.
        let mut streamed = Vec::new();
        let outcome = session.stream(0, |r| streamed.push(r)).unwrap();
        let d = outcome.disk.expect("cache_dir was configured");
        assert_eq!(d.hits as usize, grid + 4);
        assert_eq!(d.misses, 0);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&warm.records).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_predictor_set_flows_through() {
        let report = Session::new()
            .archs(&[uarch::Arch::GoldenCove])
            .predictors(vec![
                Box::new(incore::InCoreModel::new()),
                Box::new(incore::InCoreModel::balanced()),
                Box::new(mca::McaBaseline),
            ])
            .limit(4)
            .run()
            .unwrap();
        assert_eq!(report.predictors, vec!["incore", "incore-balanced", "mca"]);
        for r in &report.records {
            assert_eq!(r.predictions.len(), 3);
        }
    }
}
