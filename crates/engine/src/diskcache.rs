//! Persistent content-addressed result cache under the in-memory
//! [`CorpusCache`](crate::cache::CorpusCache).
//!
//! A [`DiskCache`] is a directory of small entry files, one per cached
//! value, addressed by the FNV-64 hash of the caller's key material. The
//! cache stores opaque UTF-8 payloads: the batch pipeline stores an
//! evaluated record in the bit-exact codec below ([`encode_record`] /
//! [`decode_record`], floats as `to_bits` hex so replay is byte-identical
//! to recompute), and `incore-cli serve` stores response JSON verbatim.
//!
//! Robustness properties, each pinned by a test:
//!
//! * **Versioned**: every entry starts with a format header line. An
//!   entry written by a different format version is *ignored, not read* —
//!   the lookup reports it as stale and recomputes. Key material is
//!   expected to carry the semantic versions (report schema, machine
//!   fingerprint, predictor set), so a semantic change simply misses.
//! * **Crash-safe**: writes go to a temp file in the same directory and
//!   are published with an atomic rename; a crashed writer leaves at most
//!   a `*.tmp` turd that is never read as an entry.
//! * **Corruption-tolerant**: a truncated or hand-damaged entry (length
//!   mismatch, bad header, key echo mismatch from a hash collision) is a
//!   miss that the subsequent recompute overwrites.
//! * **Bounded (optionally)**: with a capacity, a put that grows the
//!   cache past the bound evicts the oldest-modified entries.
//!
//! Hits, misses, writes, evictions, and the stale/corrupt breakdown are
//! counted in [`DiskStats`] and exported through the `obs` counters
//! `engine.diskcache.*` by the session (and the serve metrics snapshot).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::Error;
use crate::report::{PredictorResult, RecordReport};

/// Format version of the entry *file layout*. Bumped when the header /
/// framing below changes; older entries are then ignored as stale.
const FORMAT: &str = "incore-diskcache v1";

/// Version of the record codec ([`encode_record`]). Part of the key
/// material the session hashes, so a codec change misses cleanly instead
/// of misparsing.
pub const RECORD_CODEC_VERSION: &str = "rec1";

/// Counter snapshot of one [`DiskCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups with no usable entry (includes stale and corrupt).
    pub misses: u64,
    /// Entries written (published via rename).
    pub writes: u64,
    /// Entries removed by the capacity bound.
    pub evictions: u64,
    /// Misses caused by a format-version mismatch (entry left untouched).
    pub stale: u64,
    /// Misses caused by a truncated/damaged entry or key collision.
    pub corrupt: u64,
}

impl DiskStats {
    /// Hit rate over all lookups (0..1; 0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// FNV-1a 64 over one byte slice, continuing from `h`.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64 fingerprint of an arbitrary blob. Callers compress bulky
/// key material with this before hashing the key proper — the session
/// fingerprints each machine model's JSON so one key part pins the full
/// model without embedding it.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// A second, independent starting state for the verification hash (the
/// FNV offset basis with flipped halves), so an address collision is
/// caught by the key echo inside the entry.
const FNV_OFFSET_ALT: u64 = 0x8422_2325_cbf2_9ce4;

/// Hash the key parts with a separator byte no part can contain
/// un-escaped ambiguity over (parts are length-framed by the separator
/// plus a per-part length fold).
fn hash_key(seed: u64, parts: &[&str]) -> u64 {
    let mut h = seed;
    for p in parts {
        h = fnv1a(h, &(p.len() as u64).to_le_bytes());
        h = fnv1a(h, p.as_bytes());
    }
    h
}

/// A directory of content-addressed entries. Cheap to share behind a
/// reference; all methods take `&self`.
pub struct DiskCache {
    dir: PathBuf,
    capacity: Option<usize>,
    /// Live entry count (maintained from the initial scan + writes);
    /// guards the eviction scan so unbounded use never touches read_dir.
    entries: AtomicU64,
    /// Serializes eviction scans (writers are otherwise lock-free).
    evict_lock: Mutex<()>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
    corrupt: AtomicU64,
}

impl DiskCache {
    /// Open (creating if needed) an unbounded cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DiskCache, Error> {
        DiskCache::open_inner(dir.into(), None)
    }

    /// Open a cache that holds at most `capacity` entries; a put past the
    /// bound evicts the oldest-modified entries.
    pub fn open_bounded(dir: impl Into<PathBuf>, capacity: usize) -> Result<DiskCache, Error> {
        DiskCache::open_inner(dir.into(), Some(capacity))
    }

    fn open_inner(dir: PathBuf, capacity: Option<usize>) -> Result<DiskCache, Error> {
        std::fs::create_dir_all(&dir).map_err(|e| Error::io(dir.display().to_string(), &e))?;
        let mut entries = 0u64;
        if capacity.is_some() {
            let listing =
                std::fs::read_dir(&dir).map_err(|e| Error::io(dir.display().to_string(), &e))?;
            for f in listing.flatten() {
                if f.path().extension().is_some_and(|x| x == "rec") {
                    entries += 1;
                }
            }
        }
        Ok(DiskCache {
            dir,
            capacity,
            entries: AtomicU64::new(entries),
            evict_lock: Mutex::new(()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, parts: &[&str]) -> PathBuf {
        self.dir
            .join(format!("{:016x}.rec", hash_key(FNV_OFFSET, parts)))
    }

    /// Look up the payload stored under `parts`. Any unusable entry —
    /// missing, stale format, truncated, damaged, or an address collision
    /// — is a miss.
    pub fn get(&self, parts: &[&str]) -> Option<String> {
        let _span = obs::enabled().then(|| obs::span("engine.diskcache.get"));
        let path = self.entry_path(parts);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let verify = hash_key(FNV_OFFSET_ALT, parts);
        match parse_entry(&text, verify) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(EntryDefect::Stale) => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(EntryDefect::Corrupt) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store `payload` under `parts`. Failures are swallowed (a cache
    /// that cannot write degrades to a recompute, it does not fail the
    /// run); successful writes are atomic via temp-file rename.
    pub fn put(&self, parts: &[&str], payload: &str) {
        let _span = obs::enabled().then(|| obs::span("engine.diskcache.put"));
        let path = self.entry_path(parts);
        let verify = hash_key(FNV_OFFSET_ALT, parts);
        let body = format!(
            "{FORMAT}\nkey {verify:016x}\nlen {}\n{payload}",
            payload.len()
        );
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.tmp",
            hash_key(FNV_OFFSET, parts),
            std::process::id()
        ));
        if std::fs::write(&tmp, body).is_err() {
            return;
        }
        let existed = path.exists();
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        if !existed {
            self.entries.fetch_add(1, Ordering::Relaxed);
            self.maybe_evict();
        }
    }

    /// Evict oldest-modified entries past the capacity. Off the hot path:
    /// runs only when a put grew a bounded cache past its bound.
    fn maybe_evict(&self) {
        let Some(cap) = self.capacity else { return };
        if self.entries.load(Ordering::Relaxed) <= cap as u64 {
            return;
        }
        let _guard = self.evict_lock.lock().expect("evict lock poisoned");
        let Ok(listing) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = listing
            .flatten()
            .filter(|f| f.path().extension().is_some_and(|x| x == "rec"))
            .filter_map(|f| {
                let t = f.metadata().and_then(|m| m.modified()).ok()?;
                Some((t, f.path()))
            })
            .collect();
        self.entries.store(files.len() as u64, Ordering::Relaxed);
        if files.len() <= cap {
            return;
        }
        files.sort();
        let excess = files.len() - cap;
        let mut removed = 0u64;
        for (_, path) in files.into_iter().take(excess) {
            if std::fs::remove_file(path).is_ok() {
                removed += 1;
            }
        }
        self.entries.fetch_sub(removed, Ordering::Relaxed);
        self.evictions.fetch_add(removed, Ordering::Relaxed);
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

enum EntryDefect {
    /// Different format version: left unread on principle.
    Stale,
    /// Damaged framing, truncation, or key-echo mismatch.
    Corrupt,
}

fn parse_entry(text: &str, verify: u64) -> Result<String, EntryDefect> {
    let mut rest = text;
    let header = take_line(&mut rest).ok_or(EntryDefect::Corrupt)?;
    if header != FORMAT {
        return Err(EntryDefect::Stale);
    }
    let key_line = take_line(&mut rest).ok_or(EntryDefect::Corrupt)?;
    let echoed = key_line
        .strip_prefix("key ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(EntryDefect::Corrupt)?;
    if echoed != verify {
        return Err(EntryDefect::Corrupt);
    }
    let len_line = take_line(&mut rest).ok_or(EntryDefect::Corrupt)?;
    let len: usize = len_line
        .strip_prefix("len ")
        .and_then(|n| n.parse().ok())
        .ok_or(EntryDefect::Corrupt)?;
    if rest.len() != len {
        return Err(EntryDefect::Corrupt);
    }
    Ok(rest.to_string())
}

fn take_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let nl = rest.find('\n')?;
    let line = &rest[..nl];
    *rest = &rest[nl + 1..];
    Some(line)
}

/// Bit-exact hex form of an `f64` (round-trips through [`bits_f64`]).
fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn bits_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Serialize the *computed* part of a record — measurement, predictions,
/// divergence codes — for a disk entry. The descriptive labels (kernel /
/// compiler / opt / chip) are deliberately not stored: they are re-stamped
/// from the work grid at replay, so two grid blocks that generate
/// identical assembly on the same machine share one entry.
pub fn encode_record(r: &RecordReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "measured {}",
        r.measured.map(f64_bits).unwrap_or_else(|| "-".into())
    );
    let _ = writeln!(
        out,
        "divergence {}",
        if r.divergence.is_empty() {
            "-".to_string()
        } else {
            r.divergence.join(",")
        }
    );
    let _ = writeln!(out, "predictions {}", r.predictions.len());
    for p in &r.predictions {
        let _ = write!(
            out,
            "pred {} {} {}",
            f64_bits(p.cycles_per_iter),
            p.rpe.map(f64_bits).unwrap_or_else(|| "-".into()),
            f64_bits(p.uops_per_iter),
        );
        for v in &p.port_pressure {
            let _ = write!(out, " {}", f64_bits(*v));
        }
        out.push('\n');
        let _ = writeln!(out, "name {}", p.predictor);
        let _ = writeln!(out, "bn {}", p.bottleneck);
    }
    out
}

/// Inverse of [`encode_record`]: rebuild a full record by combining the
/// stored computation with the caller's labels. `None` on any mismatch —
/// the caller treats that as a miss and recomputes.
pub fn decode_record(
    payload: &str,
    kernel: &str,
    compiler: &str,
    opt: &str,
    chip: &str,
) -> Option<RecordReport> {
    let mut lines = payload.lines();
    let measured = match lines.next()?.strip_prefix("measured ")? {
        "-" => None,
        bits => Some(bits_f64(bits)?),
    };
    let divergence = match lines.next()?.strip_prefix("divergence ")? {
        "-" => Vec::new(),
        codes => codes.split(',').map(str::to_string).collect(),
    };
    let count: usize = lines.next()?.strip_prefix("predictions ")?.parse().ok()?;
    let mut predictions = Vec::with_capacity(count);
    for _ in 0..count {
        let nums = lines.next()?.strip_prefix("pred ")?;
        let mut it = nums.split(' ');
        let cycles_per_iter = bits_f64(it.next()?)?;
        let rpe = match it.next()? {
            "-" => None,
            bits => Some(bits_f64(bits)?),
        };
        let uops_per_iter = bits_f64(it.next()?)?;
        let port_pressure = it.map(bits_f64).collect::<Option<Vec<f64>>>()?;
        let predictor = lines.next()?.strip_prefix("name ")?.to_string();
        let bottleneck = lines.next()?.strip_prefix("bn ")?.to_string();
        predictions.push(PredictorResult {
            predictor,
            cycles_per_iter,
            rpe,
            bottleneck,
            port_pressure,
            uops_per_iter,
        });
    }
    if lines.next().is_some() {
        return None;
    }
    Some(RecordReport {
        kernel: kernel.to_string(),
        compiler: compiler.to_string(),
        opt: opt.to_string(),
        chip: chip.to_string(),
        measured,
        predictions,
        divergence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "incore-diskcache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_payloads() {
        let dir = tmpdir("rt");
        let cache = DiskCache::open(&dir).unwrap();
        let key = ["v1", "machine", "text"];
        assert_eq!(cache.get(&key), None);
        cache.put(&key, "hello\nworld");
        assert_eq!(cache.get(&key).as_deref(), Some("hello\nworld"));
        // A different key misses independently.
        assert_eq!(cache.get(&["v1", "machine", "other"]), None);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.writes), (1, 2, 1));
        // Reopening sees the same entry (persistence).
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.get(&key).as_deref(), Some("hello\nworld"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_version_is_ignored_not_read() {
        let dir = tmpdir("stale");
        let cache = DiskCache::open(&dir).unwrap();
        let key = ["k"];
        cache.put(&key, "payload");
        let path = cache.entry_path(&key);
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, body.replace(FORMAT, "incore-diskcache v0")).unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.stats().stale, 1);
        // The stale entry was not deleted — ignored, recompute overwrites.
        assert!(path.exists());
        cache.put(&key, "fresh");
        assert_eq!(cache.get(&key).as_deref(), Some("fresh"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_a_miss() {
        let dir = tmpdir("trunc");
        let cache = DiskCache::open(&dir).unwrap();
        let key = ["k"];
        cache.put(&key, "a longer payload that will be cut short");
        let path = cache.entry_path(&key);
        let body = std::fs::read(&path).unwrap();
        std::fs::write(&path, &body[..body.len() - 10]).unwrap();
        assert_eq!(cache.get(&key), None);
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_cache_evicts_oldest() {
        let dir = tmpdir("evict");
        let cache = DiskCache::open_bounded(&dir, 2).unwrap();
        cache.put(&["a"], "1");
        cache.put(&["b"], "2");
        cache.put(&["c"], "3");
        assert_eq!(cache.stats().evictions, 1);
        let live = [["a"], ["b"], ["c"]]
            .iter()
            .filter(|k| cache.get(k.as_slice()).is_some())
            .count();
        assert_eq!(live, 2, "exactly one of the three entries was evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_codec_is_bit_exact() {
        let rec = RecordReport {
            kernel: "K".into(),
            compiler: "gcc".into(),
            opt: "-O3".into(),
            chip: "SPR".into(),
            measured: Some(3.7500000000000004),
            predictions: vec![PredictorResult {
                predictor: "incore".into(),
                cycles_per_iter: 1.0 / 3.0,
                rpe: Some(-0.1),
                bottleneck: "port pressure".into(),
                port_pressure: vec![0.5, f64::MIN_POSITIVE, 2.25],
                uops_per_iter: 6.0,
            }],
            divergence: vec!["D001".into()],
        };
        let payload = encode_record(&rec);
        let back = decode_record(&payload, "K", "gcc", "-O3", "SPR").unwrap();
        assert_eq!(
            serde_json::to_string(&rec).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        // No-measurement, no-pressure records round-trip too.
        let bare = RecordReport {
            measured: None,
            divergence: Vec::new(),
            predictions: vec![PredictorResult {
                rpe: None,
                port_pressure: Vec::new(),
                ..rec.predictions[0].clone()
            }],
            ..rec.clone()
        };
        let back = decode_record(&encode_record(&bare), "K", "gcc", "-O3", "SPR").unwrap();
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
    }

    #[test]
    fn damaged_payload_decodes_to_none() {
        assert!(decode_record("measured zzz\n", "k", "c", "o", "ch").is_none());
        assert!(decode_record("", "k", "c", "o", "ch").is_none());
        assert!(decode_record(
            "measured -\ndivergence -\npredictions 2\n",
            "k",
            "c",
            "o",
            "ch"
        )
        .is_none());
    }
}
