//! The workspace error type.
//!
//! Replaces the stringly-typed error paths that used to be scattered over
//! the tools (`UsageError(String)` in the CLI, `SpecError(String)` leaking
//! out of machine-file import, parser errors formatted at every call
//! site): one enum carrying a machine-checkable [`ErrorKind`] plus enough
//! context to print a useful message, with `From` impls so `cli` and
//! `engine` propagate with `?` instead of per-call `match` ladders.
//!
//! The type is `Clone` (sources are flattened into strings) so cached
//! computations can store and replay a failure to every waiter.

use std::fmt;

/// Machine-checkable classification of an [`Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Bad command-line usage (unknown flag, missing argument).
    Usage,
    /// Assembly failed to parse.
    Parse,
    /// A machine model/JSON machine file failed to import.
    MachineSpec,
    /// Filesystem I/O failed.
    Io,
    /// JSON (de)serialization failed.
    Json,
    /// A validation gate failed (mean RPE or divergence over threshold).
    Threshold,
    /// A malformed wire request (invalid frame, bad JSON, unknown type,
    /// oversized payload) on the `serve` protocol.
    Protocol,
    /// The server's bounded queues are full; the client should back off
    /// and retry.
    Overloaded,
}

impl ErrorKind {
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Parse => "parse",
            ErrorKind::MachineSpec => "machine-spec",
            ErrorKind::Io => "io",
            ErrorKind::Json => "json",
            ErrorKind::Threshold => "threshold",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Overloaded => "overloaded",
        }
    }
}

/// One error, with kind and context.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Bad command-line usage; the message is shown next to the help text.
    Usage { message: String },
    /// Assembly parse failure, with the 1-based source line when known and
    /// the artifact it came from (file path or corpus variant label).
    Parse {
        context: String,
        line: usize,
        message: String,
    },
    /// Machine model import/validation failure.
    MachineSpec { context: String, message: String },
    /// I/O failure on a named path.
    Io { path: String, message: String },
    /// JSON (de)serialization failure.
    Json { context: String, message: String },
    /// A validation gate tripped: `metric` exceeded `limit` at `value`.
    Threshold {
        metric: String,
        value: f64,
        limit: f64,
    },
    /// A malformed wire request on the `serve` protocol. The stable
    /// [`ErrorKind::label`] (`"protocol"`) is what goes on the wire.
    Protocol { message: String },
    /// The server's bounded queues rejected the request; `retry_after_ms`
    /// is the suggested client backoff.
    Overloaded { retry_after_ms: u64 },
}

impl Error {
    pub fn usage(message: impl Into<String>) -> Self {
        Error::Usage {
            message: message.into(),
        }
    }

    pub fn io(path: impl Into<String>, source: &std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            message: source.to_string(),
        }
    }

    pub fn threshold(metric: impl Into<String>, value: f64, limit: f64) -> Self {
        Error::Threshold {
            metric: metric.into(),
            value,
            limit,
        }
    }

    pub fn protocol(message: impl Into<String>) -> Self {
        Error::Protocol {
            message: message.into(),
        }
    }

    pub fn overloaded(retry_after_ms: u64) -> Self {
        Error::Overloaded { retry_after_ms }
    }

    /// The suggested client backoff of an [`Error::Overloaded`], `None`
    /// for every other kind (what the wire layer serializes as
    /// `retry_after_ms`).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Error::Overloaded { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }

    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Usage { .. } => ErrorKind::Usage,
            Error::Parse { .. } => ErrorKind::Parse,
            Error::MachineSpec { .. } => ErrorKind::MachineSpec,
            Error::Io { .. } => ErrorKind::Io,
            Error::Json { .. } => ErrorKind::Json,
            Error::Threshold { .. } => ErrorKind::Threshold,
            Error::Protocol { .. } => ErrorKind::Protocol,
            Error::Overloaded { .. } => ErrorKind::Overloaded,
        }
    }

    /// Attach (or replace) the artifact context on kinds that carry one.
    pub fn with_context(mut self, ctx: impl Into<String>) -> Self {
        match &mut self {
            Error::Parse { context, .. }
            | Error::MachineSpec { context, .. }
            | Error::Json { context, .. } => *context = ctx.into(),
            Error::Io { .. }
            | Error::Usage { .. }
            | Error::Threshold { .. }
            | Error::Protocol { .. }
            | Error::Overloaded { .. } => {}
        }
        self
    }

    /// Conventional process exit code: usage errors are `2`, everything
    /// else `1` (mirroring grep/clang-tidy style tools).
    pub fn exit_code(&self) -> i32 {
        match self.kind() {
            ErrorKind::Usage => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage { message } => write!(f, "{message}"),
            Error::Parse {
                context,
                line,
                message,
            } => {
                if context.is_empty() {
                    write!(f, "parse error at line {line}: {message}")
                } else {
                    write!(f, "{context}: parse error at line {line}: {message}")
                }
            }
            Error::MachineSpec { context, message } => {
                if context.is_empty() {
                    write!(f, "machine spec error: {message}")
                } else {
                    write!(f, "{context}: machine spec error: {message}")
                }
            }
            Error::Io { path, message } => write!(f, "cannot access `{path}`: {message}"),
            Error::Json { context, message } => {
                if context.is_empty() {
                    write!(f, "json error: {message}")
                } else {
                    write!(f, "{context}: json error: {message}")
                }
            }
            Error::Threshold {
                metric,
                value,
                limit,
            } => write!(f, "{metric} {value:.4} exceeds the limit {limit:.4}"),
            Error::Protocol { message } => write!(f, "protocol error: {message}"),
            Error::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<isa::ParseError> for Error {
    fn from(e: isa::ParseError) -> Self {
        Error::Parse {
            context: String::new(),
            line: e.line,
            message: format!("{} in `{}`", e.message, e.source_line),
        }
    }
}

impl From<uarch::spec::SpecError> for Error {
    fn from(e: uarch::spec::SpecError) -> Self {
        Error::MachineSpec {
            context: String::new(),
            message: e.0,
        }
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Json {
            context: String::new(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_exit_codes() {
        assert_eq!(Error::usage("x").kind(), ErrorKind::Usage);
        assert_eq!(Error::usage("x").exit_code(), 2);
        let t = Error::threshold("mean |RPE|", 0.5, 0.25);
        assert_eq!(t.kind(), ErrorKind::Threshold);
        assert_eq!(t.exit_code(), 1);
        assert!(t.to_string().contains("0.5000"));
    }

    #[test]
    fn protocol_and_overload_kinds_are_machine_readable() {
        let p = Error::protocol("request exceeds 1048576 bytes");
        assert_eq!(p.kind(), ErrorKind::Protocol);
        assert_eq!(p.kind().label(), "protocol");
        assert_eq!(p.exit_code(), 1);
        assert_eq!(p.retry_after_ms(), None);
        assert!(p.to_string().contains("1048576"));
        let o = Error::overloaded(25);
        assert_eq!(o.kind(), ErrorKind::Overloaded);
        assert_eq!(o.kind().label(), "overloaded");
        assert_eq!(o.retry_after_ms(), Some(25));
        assert!(o.to_string().contains("25 ms"));
    }

    #[test]
    fn from_parse_error_keeps_the_line() {
        let pe = isa::ParseError::new(7, "unknown register", "movq %bogus, %rax");
        let e: Error = pe.into();
        assert_eq!(e.kind(), ErrorKind::Parse);
        let shown = e.with_context("k.s").to_string();
        assert!(shown.contains("k.s"), "{shown}");
        assert!(shown.contains("line 7"), "{shown}");
    }

    #[test]
    fn from_spec_error() {
        let e: Error = uarch::spec::SpecError("bad port".into()).into();
        assert_eq!(e.kind(), ErrorKind::MachineSpec);
        assert!(e.to_string().contains("bad port"));
    }

    #[test]
    fn io_errors_name_the_path() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = Error::io("m.json", &ioe);
        assert_eq!(e.kind(), ErrorKind::Io);
        assert!(e.to_string().contains("m.json"));
    }
}
