//! Corpus-wide parallel lint: every generated corpus kernel run through
//! the `diag` kernel rules plus the `semck` semantic dataflow rules, the
//! whole grid fanned out over a `rayon` pool.
//!
//! Mirrors the determinism contract of [`crate::session::Session`]: the
//! parallel map preserves submission order and each target's diagnostics
//! are canonically sorted ([`diag::sorted`]), so the result — and any
//! rendering of it — is byte-identical at every thread count. That is
//! what lets CI gate on the output of `incore-cli lint --corpus`.

use diag::Diagnostic;
use rayon::prelude::*;
use uarch::Machine;

/// Lint every corpus variant of the given machines (empty = all three).
///
/// Each generated kernel runs [`diag::lint_kernel`] (structural rules
/// K001–K006) and [`semck::lint_kernel_sem`] (semantic dataflow rules
/// K007–K010). Targets are named `corpus:{chip}:{variant label}` in grid
/// order (machines as given, variants in corpus order); `limit`
/// truncates the grid for smoke runs.
pub fn lint_corpus(
    archs: &[uarch::Arch],
    threads: usize,
    limit: Option<usize>,
) -> Vec<(String, Vec<Diagnostic>)> {
    let machines: Vec<Machine> = if archs.is_empty() {
        uarch::all_machines()
    } else {
        archs
            .iter()
            .map(|a| {
                uarch::all_machines()
                    .into_iter()
                    .find(|m| m.arch == *a)
                    .expect("every Arch has a builtin machine")
            })
            .collect()
    };
    lint_corpus_machines(&machines, threads, limit)
}

/// [`lint_corpus`] over explicit machine models (registry entries,
/// composed variants, imported files) instead of family `Arch` tags.
pub fn lint_corpus_machines(
    machines: &[Machine],
    threads: usize,
    limit: Option<usize>,
) -> Vec<(String, Vec<Diagnostic>)> {
    let mut grid: Vec<(usize, kernels::Variant)> = Vec::new();
    for (i, m) in machines.iter().enumerate() {
        for v in kernels::variants_for(m.arch) {
            grid.push((i, v));
        }
    }
    if let Some(limit) = limit {
        grid.truncate(limit);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction is infallible");
    pool.install(|| {
        grid.into_par_iter()
            .map(|(mi, variant)| {
                let machine = &machines[mi];
                let kernel = kernels::generate_kernel(&variant, machine);
                let mut diags = diag::lint_kernel(machine, &kernel);
                diags.extend(semck::lint_kernel_sem(machine, &kernel));
                let name = format!("corpus:{}:{}", machine.chip, variant.label());
                (name, diag::sorted(&diags))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_lint_is_thread_invariant() {
        let one = lint_corpus(&[uarch::Arch::GoldenCove], 1, Some(24));
        let four = lint_corpus(&[uarch::Arch::GoldenCove], 4, Some(24));
        assert_eq!(one.len(), 24);
        assert_eq!(one, four, "corpus lint must not depend on thread count");
        // The rendered report is the byte-level contract CI gates on.
        assert_eq!(
            diag::render_json_targets(&one),
            diag::render_json_targets(&four)
        );
        assert!(one.iter().all(|(n, _)| n.starts_with("corpus:SPR:")));
    }

    #[test]
    fn full_corpus_has_zero_errors_at_baseline() {
        // The acceptance gate: all 416 blocks, across all three machines,
        // lint without a single error-severity finding.
        let results = lint_corpus(&[], 0, None);
        let total: usize = uarch::all_machines()
            .iter()
            .map(|m| kernels::variants_for(m.arch).len())
            .sum();
        assert_eq!(results.len(), total);
        for (name, diags) in &results {
            let (_, _, errors) = diag::counts(diags);
            assert_eq!(errors, 0, "{name}: {diags:?}");
        }
    }
}
