//! Content-keyed memoization for the batch pipeline and the server.
//!
//! The corpus run decodes each distinct kernel text **once** and shares
//! the parsed [`isa::Kernel`] across every predictor (and across machines
//! that generate byte-identical assembly, e.g. two x86 models at the same
//! vector width). Imported JSON machine files are deduplicated the same
//! way. Both caches are safe to hit from the worker pool.
//!
//! Each cache entry is a `OnceLock` slot created under the map lock but
//! *filled outside it*, so two workers racing on different keys parse in
//! parallel, while workers racing on the same key block on the slot and
//! share one parse. That also makes the hit/miss counters deterministic
//! regardless of thread count: exactly one miss per distinct key (the
//! slot's creator), a hit for every other lookup — which is what lets the
//! stats ride along in the byte-identical JSON report.
//!
//! A batch `validate` run uses the default **unbounded** cache (the corpus
//! is finite and the run is one-shot), so its [`CacheStats`] and the
//! BatchReport JSON they ride in are unchanged. The long-running server
//! uses [`CorpusCache::bounded`], which adds LRU eviction on top of the
//! same slots; evictions are counted separately (and exported through
//! `obs`) rather than widening the serialized `CacheStats`.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::Error;
use serde::Serialize;

type Slot<T> = Arc<OnceLock<Result<Arc<T>, Error>>>;

/// Hit/miss counters, serialized into the batch report. Deliberately
/// *not* widened with eviction counts: this struct is part of the
/// versioned BatchReport schema, and batch runs never evict. Use
/// [`CorpusCache::evictions`] (or the `engine.cache.*_evictions` obs
/// counters) for the server-side eviction trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    pub kernel_hits: u64,
    pub kernel_misses: u64,
    pub machine_hits: u64,
    pub machine_misses: u64,
}

/// Eviction counters of a bounded [`CorpusCache`] (always zero for the
/// default unbounded cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionStats {
    pub kernel_evictions: u64,
    pub machine_evictions: u64,
}

/// A least-recently-used map: `get` refreshes recency, `insert` evicts
/// the stalest entries once `capacity` is exceeded. Recency is a
/// monotonic tick per touch, indexed through a `BTreeMap` so the oldest
/// key is always the first entry — deterministic for a deterministic
/// access sequence, which keeps cache behavior reproducible in tests.
///
/// Not internally synchronized: callers wrap it in a `Mutex` (see
/// [`CorpusCache`]) and the server's response cache.
#[derive(Debug, Default)]
pub struct Lru<K, V> {
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    capacity: Option<usize>,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An unbounded map (never evicts).
    pub fn unbounded() -> Self {
        Lru {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            capacity: None,
        }
    }

    /// A map that holds at most `capacity` entries. A capacity of zero
    /// retains nothing (every insert immediately evicts).
    pub fn bounded(capacity: usize) -> Self {
        Lru {
            capacity: Some(capacity),
            ..Lru::unbounded()
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `None` means unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        let tick = self.next_tick();
        let (value, old) = self.map.get_mut(key)?;
        let stale = std::mem::replace(old, tick);
        let entry = self
            .recency
            .remove(&stale)
            .expect("recency index tracks every live entry");
        self.recency.insert(tick, entry);
        Some(value.clone())
    }

    /// Insert (or replace) `key`, evicting least-recently-used entries
    /// past the capacity. Returns how many entries were evicted.
    pub fn insert(&mut self, key: K, value: V) -> u64 {
        let tick = self.next_tick();
        if let Some((slot, old)) = self.map.get_mut(&key) {
            *slot = value;
            let stale = std::mem::replace(old, tick);
            let entry = self
                .recency
                .remove(&stale)
                .expect("recency index tracks every live entry");
            self.recency.insert(tick, entry);
            return 0;
        }
        self.map.insert(key.clone(), (value, tick));
        self.recency.insert(tick, key);
        let mut evicted = 0;
        if let Some(cap) = self.capacity {
            while self.map.len() > cap {
                let (&stale, _) = self
                    .recency
                    .iter()
                    .next()
                    .expect("map is non-empty, so is the recency index");
                let victim = self
                    .recency
                    .remove(&stale)
                    .expect("key just observed in the index");
                self.map.remove(&victim);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Thread-safe content-keyed caches for parsed kernels and imported
/// machine models. [`CorpusCache::new`] is unbounded (batch runs);
/// [`CorpusCache::bounded`] adds LRU eviction for long-running servers.
pub struct CorpusCache {
    kernels: Mutex<Lru<(isa::Isa, String), Slot<isa::Kernel>>>,
    machines: Mutex<Lru<String, Slot<uarch::Machine>>>,
    kernel_hits: AtomicU64,
    kernel_misses: AtomicU64,
    machine_hits: AtomicU64,
    machine_misses: AtomicU64,
    kernel_evictions: AtomicU64,
    machine_evictions: AtomicU64,
}

impl Default for CorpusCache {
    fn default() -> Self {
        CorpusCache::new()
    }
}

impl CorpusCache {
    pub fn new() -> Self {
        CorpusCache::with_maps(Lru::unbounded(), Lru::unbounded())
    }

    /// A cache holding at most `capacity` parsed kernels and `capacity`
    /// imported machines, with LRU eviction. Evicting a slot another
    /// worker is still filling is safe — the slot is an `Arc`, so the
    /// in-flight parse completes and is simply not shared further.
    pub fn bounded(capacity: usize) -> Self {
        CorpusCache::with_maps(Lru::bounded(capacity), Lru::bounded(capacity))
    }

    fn with_maps(
        kernels: Lru<(isa::Isa, String), Slot<isa::Kernel>>,
        machines: Lru<String, Slot<uarch::Machine>>,
    ) -> Self {
        CorpusCache {
            kernels: Mutex::new(kernels),
            machines: Mutex::new(machines),
            kernel_hits: AtomicU64::new(0),
            kernel_misses: AtomicU64::new(0),
            machine_hits: AtomicU64::new(0),
            machine_misses: AtomicU64::new(0),
            kernel_evictions: AtomicU64::new(0),
            machine_evictions: AtomicU64::new(0),
        }
    }

    /// Parse `asm` for `isa`, reusing a previous parse of identical text.
    pub fn kernel(&self, asm: &str, isa: isa::Isa) -> Result<Arc<isa::Kernel>, Error> {
        self.kernel_with_hit(asm, isa).map(|(k, _)| k)
    }

    /// Like [`CorpusCache::kernel`], also reporting whether the lookup hit
    /// a previous parse. The session uses the flag to book a hit's
    /// wall-clock under `cache_ms` instead of `parse_ms` — shared lookups
    /// must not inflate the parse figure.
    pub fn kernel_with_hit(
        &self,
        asm: &str,
        isa: isa::Isa,
    ) -> Result<(Arc<isa::Kernel>, bool), Error> {
        let key = (isa, asm.to_string());
        let mut hit = true;
        let slot = {
            let mut map = self.kernels.lock().expect("kernel cache poisoned");
            match map.get(&key) {
                Some(slot) => {
                    self.kernel_hits.fetch_add(1, Ordering::Relaxed);
                    slot
                }
                None => {
                    hit = false;
                    self.kernel_misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Slot<isa::Kernel> = Arc::new(OnceLock::new());
                    let evicted = map.insert(key, slot.clone());
                    if evicted > 0 {
                        self.kernel_evictions.fetch_add(evicted, Ordering::Relaxed);
                        if obs::enabled() {
                            obs::counter("engine.cache.kernel_evictions", evicted);
                        }
                    }
                    slot
                }
            }
        };
        // A "hit" on a slot another worker is still filling blocks in
        // get_or_init below; that wait is still a hit for accounting (the
        // parse work happens — and is booked — exactly once).
        slot.get_or_init(|| {
            isa::parse_kernel(asm, isa)
                .map(Arc::new)
                .map_err(Error::from)
        })
        .clone()
        .map(|k| (k, hit))
    }

    /// Import a JSON machine file, reusing a previous import of identical
    /// text.
    pub fn machine(&self, json: &str) -> Result<Arc<uarch::Machine>, Error> {
        let slot = {
            let mut map = self.machines.lock().expect("machine cache poisoned");
            match map.get(&json.to_string()) {
                Some(slot) => {
                    self.machine_hits.fetch_add(1, Ordering::Relaxed);
                    slot
                }
                None => {
                    self.machine_misses.fetch_add(1, Ordering::Relaxed);
                    let slot: Slot<uarch::Machine> = Arc::new(OnceLock::new());
                    let evicted = map.insert(json.to_string(), slot.clone());
                    if evicted > 0 {
                        self.machine_evictions.fetch_add(evicted, Ordering::Relaxed);
                        if obs::enabled() {
                            obs::counter("engine.cache.machine_evictions", evicted);
                        }
                    }
                    slot
                }
            }
        };
        slot.get_or_init(|| {
            uarch::Machine::from_json(json)
                .map(Arc::new)
                .map_err(Error::from)
        })
        .clone()
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            kernel_hits: self.kernel_hits.load(Ordering::Relaxed),
            kernel_misses: self.kernel_misses.load(Ordering::Relaxed),
            machine_hits: self.machine_hits.load(Ordering::Relaxed),
            machine_misses: self.machine_misses.load(Ordering::Relaxed),
        }
    }

    pub fn evictions(&self) -> EvictionStats {
        EvictionStats {
            kernel_evictions: self.kernel_evictions.load(Ordering::Relaxed),
            machine_evictions: self.machine_evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parsed_once_per_distinct_text() {
        let cache = CorpusCache::new();
        let asm = ".L1:\n addq $1, %rax\n jne .L1\n";
        let a = cache.kernel(asm, isa::Isa::X86).unwrap();
        let b = cache.kernel(asm, isa::Isa::X86).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the parse");
        let other = cache.kernel(".L1:\n subq $1, %rax\n jne .L1\n", isa::Isa::X86);
        assert!(other.is_ok());
        let s = cache.stats();
        assert_eq!(s.kernel_misses, 2);
        assert_eq!(s.kernel_hits, 1);
        assert_eq!(cache.evictions(), EvictionStats::default());
    }

    #[test]
    fn parse_failures_are_cached_too() {
        let cache = CorpusCache::new();
        let bad = "movq %bogus, %rax\n";
        let e1 = cache.kernel(bad, isa::Isa::X86).unwrap_err();
        let e2 = cache.kernel(bad, isa::Isa::X86).unwrap_err();
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.kernel_misses, s.kernel_hits), (1, 1));
    }

    #[test]
    fn machine_files_are_content_keyed() {
        let cache = CorpusCache::new();
        let json = uarch::Machine::zen4().to_json();
        let a = cache.machine(&json).unwrap();
        let b = cache.machine(&json).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cache.machine("{ nope").is_err());
        let s = cache.stats();
        assert_eq!((s.machine_misses, s.machine_hits), (2, 1));
    }

    #[test]
    fn deterministic_counts_under_contention() {
        let cache = CorpusCache::new();
        let asm = ".L1:\n addq $1, %rax\n jne .L1\n";
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.kernel(asm, isa::Isa::X86).unwrap());
            }
        });
        let st = cache.stats();
        assert_eq!(st.kernel_misses, 1);
        assert_eq!(st.kernel_hits, 7);
    }

    #[test]
    fn lru_evicts_stalest_entry_first() {
        let mut lru: Lru<u32, u32> = Lru::bounded(2);
        assert_eq!(lru.insert(1, 10), 0);
        assert_eq!(lru.insert(2, 20), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.insert(3, 30), 1);
        assert_eq!(lru.get(&2), None, "entry 2 was the stalest");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
        // Replacing in place neither grows nor evicts.
        assert_eq!(lru.insert(1, 11), 0);
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn bounded_kernel_cache_evicts_and_counts() {
        let cache = CorpusCache::bounded(2);
        let k1 = ".L1:\n addq $1, %rax\n jne .L1\n";
        let k2 = ".L1:\n subq $1, %rax\n jne .L1\n";
        let k3 = ".L1:\n addq $2, %rax\n jne .L1\n";
        cache.kernel(k1, isa::Isa::X86).unwrap();
        cache.kernel(k2, isa::Isa::X86).unwrap();
        cache.kernel(k3, isa::Isa::X86).unwrap(); // evicts k1
        assert_eq!(cache.evictions().kernel_evictions, 1);
        // k1 is gone: the lookup re-parses (a miss, not a hit).
        cache.kernel(k1, isa::Isa::X86).unwrap();
        let s = cache.stats();
        assert_eq!(s.kernel_misses, 4);
        assert_eq!(s.kernel_hits, 0);
        assert_eq!(cache.evictions().kernel_evictions, 2);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CorpusCache::new();
        for i in 0..64 {
            let asm = format!(".L1:\n addq ${i}, %rax\n jne .L1\n");
            cache.kernel(&asm, isa::Isa::X86).unwrap();
        }
        assert_eq!(cache.evictions(), EvictionStats::default());
        assert_eq!(cache.stats().kernel_misses, 64);
    }
}
