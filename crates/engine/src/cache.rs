//! Content-keyed memoization for the batch pipeline.
//!
//! The corpus run decodes each distinct kernel text **once** and shares
//! the parsed [`isa::Kernel`] across every predictor (and across machines
//! that generate byte-identical assembly, e.g. two x86 models at the same
//! vector width). Imported JSON machine files are deduplicated the same
//! way. Both caches are safe to hit from the worker pool.
//!
//! Each cache entry is a `OnceLock` slot created under the map lock but
//! *filled outside it*, so two workers racing on different keys parse in
//! parallel, while workers racing on the same key block on the slot and
//! share one parse. That also makes the hit/miss counters deterministic
//! regardless of thread count: exactly one miss per distinct key (the
//! slot's creator), a hit for every other lookup — which is what lets the
//! stats ride along in the byte-identical JSON report.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::Error;
use serde::Serialize;

type Slot<T> = Arc<OnceLock<Result<Arc<T>, Error>>>;

/// Hit/miss counters, serialized into the batch report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    pub kernel_hits: u64,
    pub kernel_misses: u64,
    pub machine_hits: u64,
    pub machine_misses: u64,
}

/// Thread-safe content-keyed caches for parsed kernels and imported
/// machine models.
#[derive(Default)]
pub struct CorpusCache {
    kernels: Mutex<HashMap<(isa::Isa, String), Slot<isa::Kernel>>>,
    machines: Mutex<HashMap<String, Slot<uarch::Machine>>>,
    kernel_hits: AtomicU64,
    kernel_misses: AtomicU64,
    machine_hits: AtomicU64,
    machine_misses: AtomicU64,
}

impl CorpusCache {
    pub fn new() -> Self {
        CorpusCache::default()
    }

    /// Parse `asm` for `isa`, reusing a previous parse of identical text.
    pub fn kernel(&self, asm: &str, isa: isa::Isa) -> Result<Arc<isa::Kernel>, Error> {
        let slot = {
            let mut map = self.kernels.lock().expect("kernel cache poisoned");
            match map.entry((isa, asm.to_string())) {
                Entry::Occupied(e) => {
                    self.kernel_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.kernel_misses.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        slot.get_or_init(|| {
            isa::parse_kernel(asm, isa)
                .map(Arc::new)
                .map_err(Error::from)
        })
        .clone()
    }

    /// Import a JSON machine file, reusing a previous import of identical
    /// text.
    pub fn machine(&self, json: &str) -> Result<Arc<uarch::Machine>, Error> {
        let slot = {
            let mut map = self.machines.lock().expect("machine cache poisoned");
            match map.entry(json.to_string()) {
                Entry::Occupied(e) => {
                    self.machine_hits.fetch_add(1, Ordering::Relaxed);
                    e.get().clone()
                }
                Entry::Vacant(v) => {
                    self.machine_misses.fetch_add(1, Ordering::Relaxed);
                    v.insert(Arc::new(OnceLock::new())).clone()
                }
            }
        };
        slot.get_or_init(|| {
            uarch::Machine::from_json(json)
                .map(Arc::new)
                .map_err(Error::from)
        })
        .clone()
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            kernel_hits: self.kernel_hits.load(Ordering::Relaxed),
            kernel_misses: self.kernel_misses.load(Ordering::Relaxed),
            machine_hits: self.machine_hits.load(Ordering::Relaxed),
            machine_misses: self.machine_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_parsed_once_per_distinct_text() {
        let cache = CorpusCache::new();
        let asm = ".L1:\n addq $1, %rax\n jne .L1\n";
        let a = cache.kernel(asm, isa::Isa::X86).unwrap();
        let b = cache.kernel(asm, isa::Isa::X86).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the parse");
        let other = cache.kernel(".L1:\n subq $1, %rax\n jne .L1\n", isa::Isa::X86);
        assert!(other.is_ok());
        let s = cache.stats();
        assert_eq!(s.kernel_misses, 2);
        assert_eq!(s.kernel_hits, 1);
    }

    #[test]
    fn parse_failures_are_cached_too() {
        let cache = CorpusCache::new();
        let bad = "movq %bogus, %rax\n";
        let e1 = cache.kernel(bad, isa::Isa::X86).unwrap_err();
        let e2 = cache.kernel(bad, isa::Isa::X86).unwrap_err();
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.kernel_misses, s.kernel_hits), (1, 1));
    }

    #[test]
    fn machine_files_are_content_keyed() {
        let cache = CorpusCache::new();
        let json = uarch::Machine::zen4().to_json();
        let a = cache.machine(&json).unwrap();
        let b = cache.machine(&json).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cache.machine("{ nope").is_err());
        let s = cache.stats();
        assert_eq!((s.machine_misses, s.machine_hits), (2, 1));
    }

    #[test]
    fn deterministic_counts_under_contention() {
        let cache = CorpusCache::new();
        let asm = ".L1:\n addq $1, %rax\n jne .L1\n";
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| cache.kernel(asm, isa::Isa::X86).unwrap());
            }
        });
        let st = cache.stats();
        assert_eq!(st.kernel_misses, 1);
        assert_eq!(st.kernel_hits, 7);
    }
}
