//! A named counter/gauge/histogram registry with lock-free hot-path
//! updates and *consistent* snapshots.
//!
//! The motivating bug: `serve`'s original metrics struct was a bag of
//! independent `AtomicU64`s read field-by-field while workers mutated
//! them, so a `metrics` response could report `ok + errors + coalesced
//! != analyze` mid-flight — every individual load was fine, the *cut*
//! across them was torn. The registry fixes the cut, not the loads:
//! every update holds the read half of an `RwLock<()>` gate (shared, so
//! updates still run concurrently and stay one relaxed atomic op), and
//! [`Registry::snapshot`] takes the write half, excluding updates for
//! the microseconds it takes to copy every value. Any cross-metric
//! invariant the update ordering guarantees therefore holds in every
//! snapshot.
//!
//! Metrics are registered once at startup (returning copyable typed
//! ids) and updated by id afterwards — no hashing or name lookup on the
//! hot path. A [`Snapshot`] renders as Prometheus text exposition via
//! [`Snapshot::render_prometheus`]; JSON shaping is left to callers
//! with versioned schemas.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use crate::Histogram;

/// Handle to a registered monotonic counter.
#[derive(Debug, Clone, Copy)]
pub struct CounterId(usize);

/// Handle to a registered gauge (may go up and down).
#[derive(Debug, Clone, Copy)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy)]
pub struct HistId(usize);

#[derive(Debug)]
pub struct Registry {
    gate: RwLock<()>,
    counters: Vec<(String, AtomicU64)>,
    gauges: Vec<(String, AtomicU64)>,
    hists: Vec<(String, Mutex<Histogram>)>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry {
            gate: RwLock::new(()),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
        }
    }

    /// Register a counter. Names must be unique per kind (checked).
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(
            !self.counters.iter().any(|(n, _)| n == name),
            "duplicate counter {name:?}"
        );
        self.counters.push((name.to_string(), AtomicU64::new(0)));
        CounterId(self.counters.len() - 1)
    }

    pub fn gauge(&mut self, name: &str) -> GaugeId {
        assert!(
            !self.gauges.iter().any(|(n, _)| n == name),
            "duplicate gauge {name:?}"
        );
        self.gauges.push((name.to_string(), AtomicU64::new(0)));
        GaugeId(self.gauges.len() - 1)
    }

    pub fn histogram(&mut self, name: &str) -> HistId {
        assert!(
            !self.hists.iter().any(|(n, _)| n == name),
            "duplicate histogram {name:?}"
        );
        self.hists
            .push((name.to_string(), Mutex::new(Histogram::default())));
        HistId(self.hists.len() - 1)
    }

    /// Add `delta` to a counter. Concurrent with other updates, but
    /// never concurrent with a snapshot.
    pub fn add(&self, id: CounterId, delta: u64) {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.counters[id.0].1.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn gauge_add(&self, id: GaugeId, delta: u64) {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.gauges[id.0].1.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add and return the new value (so a caller can feed a peak gauge
    /// without a second load racing other updaters).
    pub fn gauge_add_fetch(&self, id: GaugeId, delta: u64) -> u64 {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.gauges[id.0].1.fetch_add(delta, Ordering::Relaxed) + delta
    }

    pub fn gauge_sub(&self, id: GaugeId, delta: u64) {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.gauges[id.0].1.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is currently lower (peaks).
    pub fn gauge_max(&self, id: GaugeId, value: u64) {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.gauges[id.0].1.fetch_max(value, Ordering::Relaxed);
    }

    pub fn observe(&self, id: HistId, value: u64) {
        let _g = self.gate.read().expect("registry gate poisoned");
        self.hists[id.0]
            .1
            .lock()
            .expect("registry histogram poisoned")
            .record(value);
    }

    /// A consistent cut across every registered metric: the write half
    /// of the gate excludes all updates while values are copied.
    pub fn snapshot(&self) -> Snapshot {
        let _g = self.gate.write().expect("registry gate poisoned");
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        h.lock().expect("registry histogram poisoned").clone(),
                    )
                })
                .collect(),
        }
    }
}

/// One consistent cut of a [`Registry`], in registration order.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub hists: Vec<(String, Histogram)>,
}

/// A metric name sanitized for Prometheus: dots and dashes become
/// underscores, anything else non-alphanumeric is dropped.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => out.push(c),
            '.' | '-' | ':' | '/' => out.push('_'),
            _ => {}
        }
    }
    out
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Prometheus text exposition (format version 0.0.4) of the whole
    /// snapshot. Counters get a `_total` suffix, histograms render as
    /// summaries (`{q="0.5"|"0.9"|"0.99"}` quantile lines plus `_sum` /
    /// `_count`). Every sample is an integer, so the output can never
    /// contain `NaN`, and each metric family has exactly one `# TYPE`
    /// line — both properties are linted in CI against a live server.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = format!("{}_{}_total", prom_name(prefix), prom_name(name));
            out.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let m = format!("{}_{}", prom_name(prefix), prom_name(name));
            out.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        for (name, h) in &self.hists {
            let m = format!("{}_{}", prom_name(prefix), prom_name(name));
            out.push_str(&format!("# TYPE {m} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!("{m}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
            }
            out.push_str(&format!("{m}_sum {}\n{m}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering as O};

    fn serve_like() -> (Registry, CounterId, CounterId, CounterId) {
        let mut r = Registry::new();
        let total = r.counter("requests");
        let ok = r.counter("ok");
        let errors = r.counter("errors");
        (r, total, ok, errors)
    }

    #[test]
    fn ids_update_their_own_slots() {
        let (r, total, ok, errors) = serve_like();
        r.add(total, 5);
        r.add(ok, 3);
        r.add(errors, 2);
        let s = r.snapshot();
        assert_eq!(s.counter("requests"), 5);
        assert_eq!(s.counter("ok"), 3);
        assert_eq!(s.counter("errors"), 2);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn gauges_move_both_ways_and_track_peaks() {
        let mut r = Registry::new();
        let depth = r.gauge("queue.depth");
        let peak = r.gauge("queue.peak");
        r.gauge_add(depth, 3);
        r.gauge_max(peak, 3);
        r.gauge_sub(depth, 2);
        r.gauge_max(peak, 1);
        let s = r.snapshot();
        assert_eq!(s.gauge("queue.depth"), 1);
        assert_eq!(s.gauge("queue.peak"), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_names_are_rejected() {
        let mut r = Registry::new();
        r.counter("x");
        r.counter("x");
    }

    #[test]
    fn snapshots_are_never_torn() {
        // A writer maintains the invariant `ok + errors == requests`
        // *under the gate*: it bumps requests first, then the outcome,
        // with both bumps separated by a yield to maximize the window.
        // Every snapshot must observe requests >= ok + errors (never
        // the half-applied state where outcomes lead requests), and at
        // the end the totals reconcile exactly.
        let (r, total, ok, errors) = serve_like();
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for worker in 0..2 {
                let (r, stop) = (&r, &stop);
                s.spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(O::Relaxed) {
                        r.add(total, 1);
                        std::thread::yield_now();
                        if n % 2 == worker {
                            r.add(ok, 1);
                        } else {
                            r.add(errors, 1);
                        }
                        n += 1;
                    }
                });
            }
            for _ in 0..200 {
                let snap = r.snapshot();
                let (req, done) = (
                    snap.counter("requests"),
                    snap.counter("ok") + snap.counter("errors"),
                );
                assert!(req >= done, "torn snapshot: requests={req} done={done}");
            }
            stop.store(true, O::Relaxed);
        });
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let mut r = Registry::new();
        let c = r.counter("serve.requests");
        let g = r.gauge("queue.depth");
        let h = r.histogram("service_time_us");
        r.add(c, 7);
        r.gauge_add(g, 2);
        r.observe(h, 1000);
        let text = r.snapshot().render_prometheus("incore");
        assert!(text.contains("# TYPE incore_serve_requests_total counter\n"));
        assert!(text.contains("incore_serve_requests_total 7\n"));
        assert!(text.contains("# TYPE incore_queue_depth gauge\n"));
        assert!(text.contains("incore_service_time_us{quantile=\"0.99\"} 1000\n"));
        assert!(text.contains("incore_service_time_us_count 1\n"));
        assert!(!text.contains("NaN"));
        // Exactly one TYPE line per family, names unique.
        let mut seen = std::collections::HashSet::new();
        for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            assert!(seen.insert(line.to_string()), "duplicate {line}");
        }
    }
}
