//! Zero-dependency observability: spans, counters, and histograms
//! behind a process-global recorder that costs one relaxed atomic load
//! when disabled.
//!
//! The predictor stack's hot layers (`exec::event`, `memhier::stream`,
//! `engine::Session`) aggregate their statistics in locals and emit them
//! here **once per call**, gated on [`enabled`]; the disabled path is a
//! single `AtomicBool` load, so instrumented code is byte- and
//! timing-identical (within noise) to uninstrumented code unless a
//! profile was requested. `bench::obsbench` asserts both properties on
//! the full corpus.
//!
//! The recorder is thread-aware without depending on any thread pool:
//! every recording thread gets a small process-unique id on first use
//! (the vendored rayon pool spawns scoped threads per `collect`, so ids
//! are assigned lazily rather than at pool construction), and spans
//! carry that id plus the per-thread nesting depth so [`Profile`] can
//! render a per-stage tree and a Chrome-trace with one track per
//! thread.
//!
//! A [`Profile`] drained with [`take`] renders three ways:
//! [`Profile::render_text`] (indented span tree plus counter/histogram
//! tables), [`Profile::to_json`] (stable hand-emitted JSON for CI
//! schema checks), and [`Profile::to_chrome_trace`] (Chrome trace event
//! format — `"X"` complete events and `"C"` counter events — loadable
//! in `about:tracing` or Perfetto).
//!
//! On top of the recorder sit four service-facing primitives grown for
//! `incore-cli serve`:
//!
//! - [`TraceCtx`] — a request-scoped (trace id, span id) pair carried in
//!   a thread-local; [`with_trace`] scopes it, and every [`span`] opened
//!   inside inherits it, so one request renders as a single connected
//!   span tree even across the shard-dispatch thread hop.
//! - [`registry::Registry`] — a named counter/gauge/histogram registry
//!   with lock-free hot-path updates and a *consistent* snapshot (no
//!   torn field-by-field reads), rendered as versioned JSON fragments or
//!   Prometheus text exposition.
//! - [`timeseries`] — fixed-memory 1-second ring buffers giving rolling
//!   10s/1m/5m rates and sliding histogram quantiles.
//! - [`journal::Journal`] — a severity-tagged bounded event journal
//!   (NDJSON lines) for operational moments: overloads, evictions,
//!   stale-cache heals, drains, slow requests.

pub mod journal;
pub mod registry;
pub mod timeseries;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static TRACE: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

/// Request-scoped trace context: a process-unique trace id plus the id
/// of the span that is the current parent. `trace_id == 0` means "not
/// inside any trace" — spans recorded there keep the pre-trace shape.
///
/// The context travels by value (it is two u64s) so a server can mint
/// it on the connection thread, stash it in a queue entry, and restore
/// it on the worker thread with [`with_trace`]; every `span()` opened
/// under the restored context — including ones deep inside
/// `engine`/`exec`/`memhier` that know nothing about serving — becomes
/// part of the request's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceCtx {
    /// The empty context: spans opened under it are untraced.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
    };

    /// Mint a fresh root context (new trace id, no parent span).
    pub fn mint() -> TraceCtx {
        TraceCtx {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            span_id: 0,
        }
    }

    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }
}

/// Allocate a process-unique span id (for callers that record spans
/// explicitly via [`record_span_at`] rather than through RAII guards).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's current trace context ([`TraceCtx::NONE`]
/// outside any [`with_trace`] scope).
pub fn current_trace() -> TraceCtx {
    TRACE.with(|t| t.get())
}

/// Run `f` with `ctx` installed as the thread's trace context,
/// restoring the previous context afterwards (also on panic-free early
/// return; the context is thread-local state, not a lock, so a panic
/// unwinding through here at worst leaves a stale id on a thread that
/// is about to die).
pub fn with_trace<R>(ctx: TraceCtx, f: impl FnOnce() -> R) -> R {
    let prev = TRACE.with(|t| t.replace(ctx));
    let out = f();
    TRACE.with(|t| t.set(prev));
    out
}

/// Is the recorder on? Inlined so instrumentation sites compile to a
/// single relaxed load plus a predictable branch when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct Inner {
    epoch: Instant,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: Vec<SpanRecord>,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            epoch: Instant::now(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
        }
    }
}

fn collector() -> &'static Mutex<Inner> {
    static COLLECTOR: OnceLock<Mutex<Inner>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Inner::new()))
}

/// Turn the recorder on, discarding anything recorded before.
pub fn enable() {
    *collector().lock().expect("obs collector poisoned") = Inner::new();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the recorder off. Recorded data stays until [`take`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Add `delta` to the named counter. No-op while disabled.
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut inner = collector().lock().expect("obs collector poisoned");
    *inner.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Record one observation into the named power-of-two histogram.
/// No-op while disabled.
pub fn observe(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut inner = collector().lock().expect("obs collector poisoned");
    inner
        .histograms
        .entry(name.to_string())
        .or_default()
        .record(value);
}

/// Open a named span; it records itself when dropped. While disabled
/// the guard is inert (no clock read, no lock). Inside a [`with_trace`]
/// scope the span joins the current trace: it gets a fresh span id,
/// records the enclosing span id as its parent, and becomes the parent
/// of spans opened while it is live.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span {
            name: String::new(),
            start: None,
            depth: 0,
            ctx: TraceCtx::NONE,
            parent_id: 0,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let outer = current_trace();
    let ctx = if outer.is_none() {
        TraceCtx::NONE
    } else {
        let child = TraceCtx {
            trace_id: outer.trace_id,
            span_id: next_span_id(),
        };
        TRACE.with(|t| t.set(child));
        child
    };
    Span {
        name: name.to_string(),
        start: Some(Instant::now()),
        depth,
        ctx,
        parent_id: outer.span_id,
    }
}

/// RAII guard returned by [`span`].
pub struct Span {
    name: String,
    start: Option<Instant>,
    depth: u32,
    ctx: TraceCtx,
    parent_id: u64,
}

impl Span {
    /// This span's trace context ([`TraceCtx::NONE`] when untraced or
    /// the recorder is off) — what a caller forwards to another thread.
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if !self.ctx.is_none() {
            TRACE.with(|t| {
                t.set(TraceCtx {
                    trace_id: self.ctx.trace_id,
                    span_id: self.parent_id,
                })
            });
        }
        let tid = TID.with(|t| *t);
        let mut inner = collector().lock().expect("obs collector poisoned");
        let start_us = start
            .saturating_duration_since(inner.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let dur_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let name = std::mem::take(&mut self.name);
        let depth = self.depth;
        inner.spans.push(SpanRecord {
            name,
            tid,
            depth,
            start_us,
            dur_us,
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: if self.ctx.is_none() {
                0
            } else {
                self.parent_id
            },
        });
    }
}

/// Record a span explicitly with caller-supplied trace identity and a
/// caller-held start instant. This is the escape hatch for spans whose
/// open and close happen on different threads (a served request is
/// submitted on its connection's reader thread and answered on a shard
/// worker): the caller mints ids up front, hands them to children, and
/// records the parent here once the request is done. No-op while
/// disabled.
#[allow(clippy::too_many_arguments)]
pub fn record_span_at(name: &str, ctx: TraceCtx, parent_id: u64, start: Instant, dur_us: u64) {
    if !enabled() {
        return;
    }
    let tid = TID.with(|t| *t);
    let mut inner = collector().lock().expect("obs collector poisoned");
    let start_us = start
        .saturating_duration_since(inner.epoch)
        .as_micros()
        .min(u128::from(u64::MAX)) as u64;
    inner.spans.push(SpanRecord {
        name: name.to_string(),
        tid,
        depth: 0,
        start_us,
        dur_us,
        trace_id: ctx.trace_id,
        span_id: ctx.span_id,
        parent_id,
    });
}

/// Drain everything recorded so far (the recorder's enabled/disabled
/// state is left alone; subsequent events accumulate into a fresh
/// profile).
pub fn take() -> Profile {
    let mut inner = collector().lock().expect("obs collector poisoned");
    let drained = std::mem::replace(&mut *inner, Inner::new());
    let mut spans = drained.spans;
    spans.sort_by_key(|s| (s.tid, s.start_us, s.depth));
    Profile {
        counters: drained.counters,
        histograms: drained.histograms,
        spans,
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Process-unique recording-thread id (assigned on first use).
    pub tid: u64,
    /// Nesting depth within its thread at open time.
    pub depth: u32,
    /// Microseconds since the recorder was enabled.
    pub start_us: u64,
    pub dur_us: u64,
    /// Trace this span belongs to; 0 = untraced.
    pub trace_id: u64,
    /// This span's id within the trace; 0 = untraced.
    pub span_id: u64,
    /// Parent span id within the trace; 0 = trace root (or untraced).
    pub parent_id: u64,
}

/// Power-of-two-bucketed histogram: bucket `i` holds values whose
/// bit-length is `i` (bucket 0 is exactly zero), so the whole `u64`
/// range fits in 65 fixed buckets with no configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    /// 128-bit so `mean()` stays exact even for near-`u64::MAX`
    /// observations (2^64 observations of 2^64 still fit in a u128).
    pub sum: u128,
    pub min: u64,
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another histogram into this one (used by the windowed
    /// time-series to merge per-second slots into a sliding view).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the
    /// power-of-two bucket where the cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact recorded `[min, max]`.
    /// With 2x-wide buckets the estimate is within 2x of the true value,
    /// which is enough resolution for the serve metrics' p50/p99 —
    /// consumers needing exact tails should record raw samples instead.
    ///
    /// Edges are exact: `q <= 0` returns the recorded minimum, `q >= 1`
    /// the recorded maximum, the empty histogram 0 everywhere, and a
    /// NaN `q` is treated as 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q };
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                return lower.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Everything one profiling window recorded, with deterministic
/// (sorted-key) iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub spans: Vec<SpanRecord>,
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Profile {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Indented per-thread span tree followed by counter and histogram
    /// tables — the `--profile` / `--profile=text` rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("profile\n");
        if !self.spans.is_empty() {
            out.push_str("  spans:\n");
            let mut last_tid = None;
            for s in &self.spans {
                if last_tid != Some(s.tid) {
                    out.push_str(&format!("    thread {}:\n", s.tid));
                    last_tid = Some(s.tid);
                }
                out.push_str(&format!(
                    "    {:indent$}{} {:.3} ms\n",
                    "",
                    s.name,
                    s.dur_us as f64 / 1e3,
                    indent = 2 * (s.depth as usize + 1),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("    {name:<44} {v:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("  histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "    {:<44} n={} min={} mean={:.1} max={}\n",
                    name,
                    h.count,
                    h.min,
                    h.mean(),
                    h.max
                ));
            }
        }
        out
    }

    /// Stable hand-emitted JSON (`{"counters":…,"histograms":…,"spans":…}`)
    /// — what `--profile=json` prints and CI schema-checks.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ));
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"tid\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{},\"trace_id\":{},\"span_id\":{},\"parent_id\":{}}}",
                json_escape(&s.name),
                s.tid,
                s.depth,
                s.start_us,
                s.dur_us,
                s.trace_id,
                s.span_id,
                s.parent_id
            ));
        }
        out.push_str("]}");
        out
    }

    /// Chrome trace event format: spans become `"X"` complete events
    /// (one track per recording thread), counters become `"C"` counter
    /// events at t=0. Load the file in `about:tracing` or Perfetto.
    /// Spans that belong to a request trace carry their
    /// `trace_id`/`span_id`/`parent_id` in `args` so one request can be
    /// followed across threads; untraced spans keep the original shape.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for s in &self.spans {
            let args = if s.trace_id != 0 {
                format!(
                    ",\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}}}",
                    s.trace_id, s.span_id, s.parent_id
                )
            } else {
                String::new()
            };
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}{}}}",
                json_escape(&s.name),
                s.start_us,
                s.dur_us,
                s.tid,
                args
            ));
        }
        for (name, v) in &self.counters {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                json_escape(name),
                v
            ));
        }
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}\n",
            events.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The recorder is process-global; tests that flip it on serialize
    // through this lock so they don't see each other's events.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _g = exclusive();
        disable();
        let _ = take();
        counter("x", 3);
        observe("h", 7);
        {
            let _s = span("dead");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let _g = exclusive();
        enable();
        counter("b.two", 2);
        counter("a.one", 1);
        counter("b.two", 3);
        let p = take();
        disable();
        assert_eq!(
            p.counters.iter().collect::<Vec<_>>(),
            vec![(&"a.one".to_string(), &1), (&"b.two".to_string(), &5)]
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!((h.min, h.max), (0, 1000));
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]
        );
    }

    #[test]
    fn histogram_quantiles_bracket_the_distribution() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Bucketed estimate: within the power-of-two bucket of the true
        // quantile, clamped to the recorded extremes.
        let p50 = h.quantile(0.5);
        assert!((32..=64).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((64..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(0.0), 1, "q=0 is the exact minimum");
        assert_eq!(h.quantile(1.0), 100, "q=1 is the exact maximum");
        // A single-valued histogram is exact at every quantile.
        let mut one = Histogram::default();
        one.record(42);
        assert_eq!(one.quantile(0.5), 42);
        assert_eq!(one.quantile(0.99), 42);
    }

    #[test]
    fn histogram_edge_quantiles_and_overflow() {
        // Empty histogram: every quantile (and both edges) is 0.
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(1.0), 0);
        assert_eq!(empty.mean(), 0.0);
        // Single-bucket histogram: edges are the exact recorded extremes
        // even when min and max share a power-of-two bucket.
        let mut narrow = Histogram::default();
        narrow.record(33);
        narrow.record(47);
        assert_eq!(narrow.quantile(0.0), 33);
        assert_eq!(narrow.quantile(1.0), 47);
        // Out-of-range and NaN q values clamp instead of panicking.
        assert_eq!(narrow.quantile(-3.0), 33);
        assert_eq!(narrow.quantile(7.5), 47);
        assert_eq!(narrow.quantile(f64::NAN), 33);
        // Near-u64::MAX observations: the u128 sum keeps mean() exact
        // where a saturating u64 sum would have pinned it at u64::MAX/2.
        let mut big = Histogram::default();
        big.record(u64::MAX);
        big.record(u64::MAX);
        big.record(u64::MAX);
        assert_eq!(big.sum, 3 * u128::from(u64::MAX));
        let want = u64::MAX as f64;
        assert!((big.mean() - want).abs() <= want * 1e-9, "mean overflowed");
        assert_eq!(big.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_merge_combines_counts_and_extremes() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 306);
        assert_eq!((merged.min, merged.max), (1, 200));
        assert_eq!(merged.quantile(1.0), 200);
        // Merging an empty histogram is the identity (min untouched).
        let before = merged.clone();
        merged.merge(&Histogram::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn spans_nest_and_render() {
        let _g = exclusive();
        enable();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let p = take();
        disable();
        assert_eq!(p.spans.len(), 2);
        let outer = p.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = p.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        let text = p.render_text();
        assert!(text.contains("outer"));
        assert!(text.contains("  inner"));
    }

    #[test]
    fn threads_get_distinct_track_ids() {
        use rayon::prelude::*;
        let _g = exclusive();
        enable();
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool")
            .install(|| {
                let _: Vec<()> = vec![0u32; 8]
                    .into_par_iter()
                    .map(|_| {
                        let _s = span("work");
                        counter("jobs", 1);
                    })
                    .collect();
            });
        let p = take();
        disable();
        assert_eq!(p.counters.get("jobs"), Some(&8));
        assert_eq!(p.spans.len(), 8);
    }

    #[test]
    fn json_and_chrome_emit_expected_shapes() {
        let _g = exclusive();
        enable();
        counter("c\"quoted", 1);
        observe("h", 42);
        {
            let _s = span("stage");
        }
        let p = take();
        disable();
        let j = p.to_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\\\"quoted"));
        assert!(j.contains("\"spans\":["));
        let t = p.to_chrome_trace();
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"ph\":\"X\""));
        assert!(t.contains("\"ph\":\"C\""));
        assert!(t.ends_with("}\n"));
    }

    #[test]
    fn spans_outside_a_trace_stay_untraced() {
        let _g = exclusive();
        enable();
        {
            let _s = span("plain");
        }
        let p = take();
        disable();
        let s = &p.spans[0];
        assert_eq!((s.trace_id, s.span_id, s.parent_id), (0, 0, 0));
        assert!(!p.to_chrome_trace().contains("\"args\":{\"trace_id\""));
    }

    #[test]
    fn with_trace_builds_a_connected_span_tree() {
        let _g = exclusive();
        enable();
        let ctx = TraceCtx::mint();
        with_trace(ctx, || {
            let outer = span("request");
            let outer_id = outer.ctx().span_id;
            assert_ne!(outer_id, 0);
            {
                let inner = span("compute");
                assert_eq!(inner.ctx().trace_id, ctx.trace_id);
            }
            // After the inner span closes, its parent is current again.
            assert_eq!(current_trace().span_id, outer_id);
        });
        assert!(current_trace().is_none(), "context restored after scope");
        let p = take();
        disable();
        let outer = p.spans.iter().find(|s| s.name == "request").unwrap();
        let inner = p.spans.iter().find(|s| s.name == "compute").unwrap();
        assert_eq!(outer.trace_id, ctx.trace_id);
        assert_eq!(outer.parent_id, 0, "root span has no parent");
        assert_eq!(inner.parent_id, outer.span_id, "child links to parent");
        let t = p.to_chrome_trace();
        assert!(t.contains(&format!("\"trace_id\":{}", ctx.trace_id)));
    }

    #[test]
    fn record_span_at_joins_a_minted_trace() {
        let _g = exclusive();
        enable();
        let ctx = TraceCtx {
            trace_id: TraceCtx::mint().trace_id,
            span_id: next_span_id(),
        };
        let start = Instant::now();
        record_span_at("serve.request", ctx, 0, start, 125);
        let p = take();
        disable();
        let s = &p.spans[0];
        assert_eq!(s.name, "serve.request");
        assert_eq!(s.trace_id, ctx.trace_id);
        assert_eq!(s.span_id, ctx.span_id);
        assert_eq!(s.dur_us, 125);
    }

    #[test]
    fn take_resets_epoch_between_windows() {
        let _g = exclusive();
        enable();
        counter("first", 1);
        let p1 = take();
        counter("second", 1);
        let p2 = take();
        disable();
        assert!(p1.counters.contains_key("first") && !p1.counters.contains_key("second"));
        assert!(p2.counters.contains_key("second") && !p2.counters.contains_key("first"));
    }
}
