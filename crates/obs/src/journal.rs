//! Severity-tagged structured event journal: a bounded ring buffer of
//! operational moments (overloads, cache evictions, stale-entry heals,
//! drains, slow requests) that a service can append to cheaply and a
//! client can drain incrementally.
//!
//! Events get monotonically increasing sequence numbers; when the ring
//! is full the oldest event is dropped and counted, so a poller that
//! asks for `events_since(last_seen)` can both resume where it left off
//! and detect gaps. Rendering is hand-emitted NDJSON (one event per
//! line) to keep the crate zero-dependency.

use std::collections::VecDeque;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json_escape;

/// Event severity, ordered from routine to alarming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Error,
}

impl Severity {
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One journal entry. `fields` carries event-specific key/value detail
/// (kernel label, eviction count, retry hint) in insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number, 1-based, never reused.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at append time.
    pub unix_ms: u64,
    pub severity: Severity,
    /// Stable machine-readable kind, e.g. `"overloaded"`, `"drain"`.
    pub kind: String,
    /// Human-readable one-liner.
    pub message: String,
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// One NDJSON line (no trailing newline), stable key order.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"unix_ms\":{},\"severity\":\"{}\",\"kind\":\"{}\",\"message\":\"{}\"",
            self.seq,
            self.unix_ms,
            self.severity.label(),
            json_escape(&self.kind),
            json_escape(&self.message),
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Bounded event ring. Not internally synchronized — callers wrap it in
/// whatever lock guards their other telemetry (the serve loop keeps it
/// under one mutex beside the windowed series).
#[derive(Debug)]
pub struct Journal {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

impl Journal {
    /// A journal holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Journal {
        Journal {
            cap: cap.max(1),
            next_seq: 1,
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    /// Append an event stamped with the current wall clock.
    pub fn push(
        &mut self,
        severity: Severity,
        kind: &str,
        message: &str,
        fields: Vec<(String, String)>,
    ) -> u64 {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        self.push_at(unix_ms, severity, kind, message, fields)
    }

    /// Append with an explicit timestamp (deterministic tests).
    pub fn push_at(
        &mut self,
        unix_ms: u64,
        severity: Severity,
        kind: &str,
        message: &str,
        fields: Vec<(String, String)>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event {
            seq,
            unix_ms,
            severity,
            kind: kind.to_string(),
            message: message.to_string(),
            fields,
        });
        seq
    }

    /// Events with `seq > since`, oldest first.
    pub fn events_since(&self, since: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.seq > since).collect()
    }

    /// Newest `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<&Event> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).collect()
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All retained events as NDJSON, one line per event.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(j: &mut Journal, n: u64) -> u64 {
        j.push_at(n, Severity::Info, "tick", &format!("tick {n}"), Vec::new())
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_survive_overflow() {
        let mut j = Journal::new(3);
        for n in 1..=5 {
            ev(&mut j, n);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.next_seq(), 6);
        let seqs: Vec<u64> = j.events_since(0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn events_since_resumes_mid_ring() {
        let mut j = Journal::new(8);
        for n in 1..=4 {
            ev(&mut j, n);
        }
        let seqs: Vec<u64> = j.events_since(2).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert!(j.events_since(99).is_empty());
    }

    #[test]
    fn tail_returns_newest_oldest_first() {
        let mut j = Journal::new(8);
        for n in 1..=5 {
            ev(&mut j, n);
        }
        let seqs: Vec<u64> = j.tail(2).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(j.tail(99).len(), 5);
    }

    #[test]
    fn ndjson_lines_are_stable_and_escaped() {
        let mut j = Journal::new(4);
        j.push_at(
            1000,
            Severity::Warn,
            "overloaded",
            "queue \"full\"",
            vec![("shard".to_string(), "2".to_string())],
        );
        let line = j.to_ndjson();
        assert_eq!(
            line,
            "{\"seq\":1,\"unix_ms\":1000,\"severity\":\"warn\",\"kind\":\"overloaded\",\
             \"message\":\"queue \\\"full\\\"\",\"fields\":{\"shard\":\"2\"}}\n"
        );
        // Field-less events omit the fields object entirely.
        let mut plain = Journal::new(1);
        plain.push_at(5, Severity::Error, "x", "y", Vec::new());
        assert!(!plain.to_ndjson().contains("fields"));
    }
}
