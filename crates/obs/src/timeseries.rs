//! Fixed-memory rolling windows over counters and histograms.
//!
//! Both series bucket observations into 1-second slots of a 300-entry
//! ring (`idx = second % 300`); each slot remembers which absolute
//! second it belongs to, so reads simply skip slots whose stamp falls
//! outside the requested window — no background reaper thread, no
//! allocation after construction, and full determinism when tests feed
//! explicit seconds instead of the wall clock.
//!
//! The serve loop keeps one [`WindowedCounter`] per rate it exposes
//! (requests, errors, response-cache hits/misses, coalesces) and one
//! [`WindowedHistogram`] for service time, then reports 10s/1m/5m views
//! in the `metrics` response and the `top` dashboard.

use crate::Histogram;

/// Ring capacity in seconds — the longest supported window (5 minutes).
pub const RING_SECONDS: u64 = 300;

/// The standard reporting windows: 10 seconds, 1 minute, 5 minutes.
pub const WINDOWS: [(&str, u64); 3] = [("10s", 10), ("1m", 60), ("5m", 300)];

/// A counter whose per-second increments are retained for
/// [`RING_SECONDS`], supporting rolling sums and rates.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    slots: Vec<u64>,
    stamps: Vec<u64>,
}

impl Default for WindowedCounter {
    fn default() -> WindowedCounter {
        WindowedCounter {
            slots: vec![0; RING_SECONDS as usize],
            stamps: vec![u64::MAX; RING_SECONDS as usize],
        }
    }
}

impl WindowedCounter {
    pub fn new() -> WindowedCounter {
        WindowedCounter::default()
    }

    /// Add `delta` to the slot for absolute second `now_s`.
    pub fn record(&mut self, now_s: u64, delta: u64) {
        let idx = (now_s % RING_SECONDS) as usize;
        if self.stamps[idx] != now_s {
            self.stamps[idx] = now_s;
            self.slots[idx] = 0;
        }
        self.slots[idx] += delta;
    }

    /// Sum over the `window_s` seconds ending at `now_s` (inclusive).
    pub fn sum(&self, now_s: u64, window_s: u64) -> u64 {
        let window_s = window_s.clamp(1, RING_SECONDS);
        let oldest = now_s.saturating_sub(window_s - 1);
        self.stamps
            .iter()
            .zip(self.slots.iter())
            .filter(|(&stamp, _)| stamp >= oldest && stamp <= now_s)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Average events per second over the window.
    pub fn rate(&self, now_s: u64, window_s: u64) -> f64 {
        let window_s = window_s.clamp(1, RING_SECONDS);
        self.sum(now_s, window_s) as f64 / window_s as f64
    }
}

/// A histogram whose per-second sub-histograms are retained for
/// [`RING_SECONDS`], supporting sliding-window quantiles via
/// [`Histogram::merge`].
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    slots: Vec<Histogram>,
    stamps: Vec<u64>,
}

impl Default for WindowedHistogram {
    fn default() -> WindowedHistogram {
        WindowedHistogram {
            slots: vec![Histogram::default(); RING_SECONDS as usize],
            stamps: vec![u64::MAX; RING_SECONDS as usize],
        }
    }
}

impl WindowedHistogram {
    pub fn new() -> WindowedHistogram {
        WindowedHistogram::default()
    }

    /// Record one observation into the slot for second `now_s`.
    pub fn record(&mut self, now_s: u64, value: u64) {
        let idx = (now_s % RING_SECONDS) as usize;
        if self.stamps[idx] != now_s {
            self.stamps[idx] = now_s;
            self.slots[idx] = Histogram::default();
        }
        self.slots[idx].record(value);
    }

    /// The merged histogram over the `window_s` seconds ending at
    /// `now_s` (inclusive).
    pub fn merged(&self, now_s: u64, window_s: u64) -> Histogram {
        let window_s = window_s.clamp(1, RING_SECONDS);
        let oldest = now_s.saturating_sub(window_s - 1);
        let mut out = Histogram::default();
        for (stamp, h) in self.stamps.iter().zip(self.slots.iter()) {
            if *stamp >= oldest && *stamp <= now_s {
                out.merge(h);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_respect_the_window_edge() {
        let mut c = WindowedCounter::new();
        for s in 0..20 {
            c.record(s, 1);
        }
        assert_eq!(c.sum(19, 10), 10, "seconds 10..=19");
        assert_eq!(c.sum(19, 20), 20);
        assert_eq!(c.sum(19, 1), 1, "just the current second");
        assert!((c.rate(19, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stale_slots_are_reclaimed_after_wraparound() {
        let mut c = WindowedCounter::new();
        c.record(5, 100);
        // One full ring later the same index holds a different second.
        c.record(5 + RING_SECONDS, 7);
        assert_eq!(c.sum(5 + RING_SECONDS, 10), 7, "old stamp excluded");
        // A gap with no records reads as zero.
        assert_eq!(c.sum(5 + 2 * RING_SECONDS + 50, 10), 0);
    }

    #[test]
    fn idle_gaps_do_not_leak_old_counts() {
        let mut c = WindowedCounter::new();
        c.record(100, 50);
        assert_eq!(c.sum(100, 10), 50);
        // 200 seconds idle: the slot is outside every window <= 200s.
        assert_eq!(c.sum(300, 10), 0);
        assert_eq!(c.sum(300, 300), 50, "still inside the 5m window");
    }

    #[test]
    fn histogram_windows_merge_slots() {
        let mut h = WindowedHistogram::new();
        h.record(10, 1000);
        h.record(11, 2000);
        h.record(100, 8);
        let recent = h.merged(100, 10);
        assert_eq!(recent.count, 1);
        assert_eq!(recent.quantile(1.0), 8);
        let all = h.merged(100, 300);
        assert_eq!(all.count, 3);
        assert_eq!((all.min, all.max), (8, 2000));
    }

    #[test]
    fn zero_width_windows_clamp_to_one_second() {
        let mut c = WindowedCounter::new();
        c.record(42, 3);
        assert_eq!(c.sum(42, 0), 3);
        assert!((c.rate(42, 0) - 3.0).abs() < 1e-12);
    }
}
