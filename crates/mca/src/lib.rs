//! An LLVM-MCA-style throughput predictor — the baseline the paper
//! compares its OSACA models against (Fig. 3).
//!
//! LLVM-MCA is a *simulation-based* predictor built on LLVM's scheduling
//! models. Its documented model differs from both the real hardware and
//! from OSACA's optimistic analytical bound in ways that make it
//! systematically **pessimistic** on streaming kernels (the paper: 75 % of
//! MCA's predictions are slower than the measurement):
//!
//! * **static port binding** — µ-ops are bound to one concrete port at
//!   dispatch (write-port reservation), round-robin over the eligible set,
//!   instead of dynamically picking any free port at issue;
//! * **no rename-stage optimizations** — register moves and zeroing
//!   idioms execute on real ports and carry real latencies (scheduling
//!   models encode them as ordinary instructions);
//! * **full latencies everywhere** — address-writeback updates are
//!   charged the full instruction latency, so pointer-bumping loops stall;
//! * **small per-port reservation queues** ([`PORT_QUEUE`] entries) — a
//!   dependency chain parked in one queue backs up the in-order dispatch
//!   stage, throttling independent work on other ports.
//!
//! The implementation shares the machine descriptions of [`uarch`] but
//! none of the analysis machinery of `incore`, mirroring how LLVM-MCA and
//! OSACA are independent tools reading the same scheduling facts.

pub mod timeline;

use isa::dataflow::dataflow;
use isa::Kernel;
use uarch::{InstrClass, InstrDesc, Machine, PortSet, Uop};

/// Prediction result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McaResult {
    /// Predicted steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Total µ-ops per iteration after MCA's decomposition.
    pub uops: usize,
}

/// The MCA-style baseline as a [`uarch::Predictor`] — the unified entry
/// point batch pipelines and divergence lints dispatch through.
///
/// MCA's number falls out of a queue simulation rather than a closed-form
/// bound, so the prediction carries no per-port pressure view and its
/// bottleneck is [`uarch::Bottleneck::Unattributed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct McaBaseline;

impl uarch::Predictor for McaBaseline {
    fn name(&self) -> &'static str {
        "mca"
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let r = crate::predict(machine, kernel);
        uarch::Prediction {
            cycles_per_iter: r.cycles_per_iter,
            bottleneck: uarch::Bottleneck::Unattributed,
            port_pressure: Vec::new(),
            uops_per_iter: r.uops as f64,
        }
    }
}

/// Predict the block throughput of a kernel (cycles per iteration).
pub fn predict(machine: &Machine, kernel: &Kernel) -> McaResult {
    let n = kernel.instructions.len();
    if n == 0 {
        return McaResult {
            cycles_per_iter: 0.0,
            uops: 0,
        };
    }
    let descs = mca_descs(machine, kernel);
    let edges = mca_edges(kernel, &descs);
    simulate(machine, &descs, &edges, 150, 30, None)
}

/// A dispatch/issue event pair for one instruction instance, recorded for
/// the timeline view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub iter: usize,
    pub idx: usize,
    pub dispatched: u64,
    pub issued: u64,
}

/// Run the MCA model and record events for the first `iters` iterations
/// (used by [`timeline::render`]).
pub fn predict_with_events(
    machine: &Machine,
    kernel: &Kernel,
    iters: usize,
) -> (McaResult, Vec<Event>) {
    let n = kernel.instructions.len();
    if n == 0 {
        return (
            McaResult {
                cycles_per_iter: 0.0,
                uops: 0,
            },
            Vec::new(),
        );
    }
    let descs = mca_descs(machine, kernel);
    let edges = mca_edges(kernel, &descs);
    let mut events = Vec::new();
    let r = simulate(machine, &descs, &edges, iters.max(1), 0, Some(&mut events));
    events.retain(|e| e.iter < iters);
    events.sort_by_key(|e| (e.iter, e.idx));
    (r, events)
}

/// MCA's view of the instruction stream: no rename-stage elimination.
fn mca_descs(machine: &Machine, kernel: &Kernel) -> Vec<InstrDesc> {
    use uarch::ports::PortCap;
    kernel
        .instructions
        .iter()
        .map(|inst| {
            let d = machine.describe(inst);
            if d.class == InstrClass::Eliminated && !inst.is_nop() {
                // Schedule the move/idiom on a real unit with unit latency.
                let ports = if inst.max_vec_width() > 0 {
                    machine.port_model.with_cap(PortCap::VecAlu)
                } else {
                    machine.port_model.with_cap(PortCap::IntAlu)
                };
                InstrDesc {
                    uops: vec![Uop::new(ports)],
                    latency: 1,
                    rthroughput: 1.0 / ports.count().max(1) as f64,
                    class: InstrClass::Move,
                    from_fallback: false,
                }
            } else {
                d
            }
        })
        .collect()
}

/// Dependency edge with MCA's pessimistic latency charging: every write
/// becomes available after the producer's full latency.
#[derive(Debug, Clone, Copy)]
struct McaEdge {
    from: usize,
    to: usize,
    weight: u64,
    wrap: bool,
}

fn mca_edges(kernel: &Kernel, descs: &[InstrDesc]) -> Vec<McaEdge> {
    let n = kernel.instructions.len();
    let flows: Vec<_> = kernel.instructions.iter().map(dataflow).collect();
    let mut edges = Vec::new();
    for (j, fj) in flows.iter().enumerate() {
        for &r in &fj.reads {
            let producer = (0..j)
                .rev()
                .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)))
                .map(|i| (i, false))
                .or_else(|| {
                    (0..n)
                        .rev()
                        .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)))
                        .map(|i| (i, true))
                });
            if let Some((i, wrap)) = producer {
                edges.push(McaEdge {
                    from: i,
                    to: j,
                    weight: (descs[i].latency as u64).max(1),
                    wrap,
                });
            }
        }
    }
    edges
}

/// Capacity of each port's reservation queue. LLVM scheduling models use
/// small per-port buffers; a dependency chain parked in one queue backs up
/// the in-order dispatch stage — MCA's main source of pessimism on
/// latency-rich code.
const PORT_QUEUE: usize = 28;

/// Timeline simulation with static port binding, per-port reservation
/// queues, and in-order dispatch that stalls on a full queue.
fn simulate(
    machine: &Machine,
    descs: &[InstrDesc],
    edges: &[McaEdge],
    iterations: usize,
    warmup: usize,
    mut events: Option<&mut Vec<Event>>,
) -> McaResult {
    let n = descs.len();
    let np = machine.port_model.num_ports();
    let total_iters = iterations + warmup;

    // Static binding: round-robin cursor per distinct eligible port set,
    // like MCA's resource-cycle counters.
    let mut cursors: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut bind = |ports: PortSet| -> usize {
        let members: Vec<usize> = ports.iter().collect();
        let c = cursors.entry(ports.0).or_insert(0);
        let p = members[*c % members.len()];
        *c += 1;
        p
    };

    let mut incoming: Vec<Vec<McaEdge>> = vec![Vec::new(); n];
    for e in edges {
        incoming[e.to].push(*e);
    }

    let mut port_free_at = vec![0u64; np];
    // Per-port reservation queues of (iter, idx) waiting µ-ops.
    let mut queues: Vec<std::collections::VecDeque<(usize, usize)>> =
        vec![std::collections::VecDeque::new(); np];
    let mut issue_at: Vec<Vec<Option<u64>>> = vec![vec![None; n]; total_iters];
    // Remaining unissued µ-ops per instance, to detect full issue.
    let mut pending: Vec<Vec<u32>> = vec![vec![0; n]; total_iters];
    let mut last_uop_at: Vec<Vec<u64>> = vec![vec![0; n]; total_iters];
    let mut now: u64 = 0;
    let mut next = (0usize, 0usize);
    let mut warm_cycle = 0u64;
    let mut done_iters = 0usize;
    let mut total_uops = 0usize;
    // In-order completion tracking: an iteration is done only when every
    // instruction in it (and all older iterations) has fully issued.
    let mut inst_done: Vec<usize> = vec![0; total_iters];
    let mut retire_ptr = 0usize;
    let max_cycles = 1_000_000u64 + total_iters as u64 * 3_000;

    // Readiness of an instance: every producer fully issued and its result
    // propagated.
    let ready = |it: usize,
                 idx: usize,
                 issue_at: &Vec<Vec<Option<u64>>>,
                 now: u64,
                 incoming: &Vec<Vec<McaEdge>>|
     -> bool {
        incoming[idx].iter().all(|e| {
            let pit = if e.wrap {
                match it.checked_sub(1) {
                    Some(p) => p,
                    None => return true,
                }
            } else {
                it
            };
            matches!(issue_at[pit][e.from], Some(t) if t + e.weight <= now)
        })
    };

    while done_iters < total_iters && now < max_cycles {
        // Dispatch in order, bounded by width; a full target queue stalls
        // the whole dispatch group (in-order front end).
        let mut budget = machine.dispatch_width as i64;
        'dispatch: while budget > 0 && next.0 < total_iters {
            let (it, idx) = next;
            let nu = descs[idx].uop_count().max(1) as i64;
            if nu > budget && budget < machine.dispatch_width as i64 {
                break;
            }
            // All bound queues must have room.
            let bound: Vec<usize> = descs[idx].uops.iter().map(|u| bind(u.ports)).collect();
            for &p in &bound {
                if queues[p].len() >= PORT_QUEUE {
                    break 'dispatch;
                }
            }
            for &p in &bound {
                queues[p].push_back((it, idx));
            }
            if let Some(ev) = events.as_deref_mut() {
                ev.push(Event {
                    iter: it,
                    idx,
                    dispatched: now,
                    issued: u64::MAX,
                });
            }
            pending[it][idx] = descs[idx].uop_count() as u32;
            if descs[idx].uop_count() == 0 {
                // NOP-like: completes at dispatch.
                issue_at[it][idx] = Some(now);
                inst_done[it] += 1;
                if let Some(ev) = events.as_deref_mut() {
                    if let Some(e) = ev.iter_mut().rev().find(|e| e.iter == it && e.idx == idx) {
                        e.issued = now;
                    }
                }
            }
            budget -= nu;
            next = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // Issue: each port independently takes the oldest *ready* µ-op in
        // its queue (static binding: no port stealing).
        for p in 0..np {
            if port_free_at[p] > now {
                continue;
            }
            let pos = queues[p]
                .iter()
                .position(|&(it, idx)| ready(it, idx, &issue_at, now, &incoming));
            if let Some(pos) = pos {
                let (it, idx) = queues[p].remove(pos).unwrap();
                // Occupancy of the µ-op bound here: use the max occupancy of
                // the instruction's µ-ops eligible for this port.
                let occ = descs[idx]
                    .uops
                    .iter()
                    .filter(|u| u.ports.contains(p))
                    .map(|u| (u.occupancy.ceil() as u64).max(1))
                    .max()
                    .unwrap_or(1);
                port_free_at[p] = now + occ;
                total_uops += 1;
                last_uop_at[it][idx] = last_uop_at[it][idx].max(now);
                pending[it][idx] -= 1;
                if pending[it][idx] == 0 {
                    issue_at[it][idx] = Some(last_uop_at[it][idx]);
                    inst_done[it] += 1;
                    if let Some(ev) = events.as_deref_mut() {
                        if let Some(e) = ev.iter_mut().rev().find(|e| e.iter == it && e.idx == idx)
                        {
                            e.issued = last_uop_at[it][idx];
                        }
                    }
                }
            }
        }
        while retire_ptr < total_iters && inst_done[retire_ptr] == n {
            retire_ptr += 1;
            if retire_ptr == warmup {
                warm_cycle = now;
            }
        }
        done_iters = retire_ptr;
        now += 1;
    }

    let measured = (done_iters.saturating_sub(warmup)).max(1) as f64;
    McaResult {
        cycles_per_iter: (now - warm_cycle) as f64 / measured,
        uops: total_uops / total_iters.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn p(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::X86).unwrap();
        predict(m, &k).cycles_per_iter
    }

    #[test]
    fn serial_chain_bounded_by_latency() {
        let m = Machine::golden_cove();
        let c = p(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            &m,
        );
        assert!(c >= 4.0 - 0.1, "c={c}");
        assert!(c < 7.0, "c={c}");
    }

    #[test]
    fn mca_does_not_eliminate_moves() {
        let m = Machine::golden_cove();
        let asm = ".L1:\n vmovaps %zmm1, %zmm2\n vmovaps %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n";
        let mca_c = p(asm, &m);
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(mca_c > osaca, "mca={mca_c} osaca={osaca}");
    }

    #[test]
    fn mca_is_pessimistic_vs_simulator_on_streaming() {
        // The paper's central Fig. 3 relationship: MCA ≥ measurement ≥
        // OSACA for typical streaming kernels.
        let m = Machine::golden_cove();
        let asm = ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let mca_c = predict(&m, &k).cycles_per_iter;
        let meas = exec::cycles_per_iteration(&m, &k);
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(osaca <= meas + 0.05, "osaca={osaca} meas={meas}");
        assert!(mca_c >= meas * 0.85, "mca={mca_c} meas={meas}");
    }

    #[test]
    fn empty_kernel() {
        let m = Machine::zen4();
        let k = Kernel {
            instructions: vec![],
            isa: Isa::X86,
            loop_label: None,
        };
        assert_eq!(predict(&m, &k).cycles_per_iter, 0.0);
    }

    #[test]
    fn aarch64_kernels_work() {
        let m = Machine::neoverse_v2();
        let k = parse_kernel(
            ".L1:\n ldr q0, [x1, x4]\n fadd v0.2d, v0.2d, v1.2d\n str q0, [x0, x4]\n add x4, x4, #16\n cmp x4, x5\n b.ne .L1\n",
            Isa::AArch64,
        )
        .unwrap();
        let r = predict(&m, &k);
        assert!(r.cycles_per_iter >= 1.0, "{}", r.cycles_per_iter);
        assert!(r.cycles_per_iter < 20.0, "{}", r.cycles_per_iter);
    }

    #[test]
    fn static_binding_creates_contention() {
        // Two µ-ops alternating over {0,5} plus one pinned to port 0:
        // dynamic picking resolves this, static round-robin collides on
        // some iterations. MCA must be ≥ the optimal analytical bound.
        let m = Machine::golden_cove();
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm0, %zmm1, %zmm3\n vdivpd %ymm4, %ymm5, %ymm6\n subq $1, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let mca_c = predict(&m, &k).cycles_per_iter;
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(mca_c >= osaca - 0.05, "mca={mca_c} osaca={osaca}");
    }
}
