//! An LLVM-MCA-style throughput predictor — the baseline the paper
//! compares its OSACA models against (Fig. 3).
//!
//! LLVM-MCA is a *simulation-based* predictor built on LLVM's scheduling
//! models. Its documented model differs from both the real hardware and
//! from OSACA's optimistic analytical bound in ways that make it
//! systematically **pessimistic** on streaming kernels (the paper: 75 % of
//! MCA's predictions are slower than the measurement):
//!
//! * **static port binding** — µ-ops are bound to one concrete port at
//!   dispatch (write-port reservation), round-robin over the eligible set,
//!   instead of dynamically picking any free port at issue;
//! * **no rename-stage optimizations** — register moves and zeroing
//!   idioms execute on real ports and carry real latencies (scheduling
//!   models encode them as ordinary instructions);
//! * **full latencies everywhere** — address-writeback updates are
//!   charged the full instruction latency, so pointer-bumping loops stall;
//! * **small per-port reservation queues** ([`PORT_QUEUE`] entries) — a
//!   dependency chain parked in one queue backs up the in-order dispatch
//!   stage, throttling independent work on other ports.
//!
//! The implementation shares the machine descriptions of [`uarch`] but
//! none of the analysis machinery of `incore`, mirroring how LLVM-MCA and
//! OSACA are independent tools reading the same scheduling facts.

pub mod timeline;

use isa::dataflow::dataflow;
use isa::Kernel;
use uarch::{InstrClass, InstrDesc, Machine, PortSet, Uop};

/// Prediction result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McaResult {
    /// Predicted steady-state cycles per loop iteration.
    pub cycles_per_iter: f64,
    /// Total µ-ops per iteration after MCA's decomposition.
    pub uops: usize,
}

/// The MCA-style baseline as a [`uarch::Predictor`] — the unified entry
/// point batch pipelines and divergence lints dispatch through.
///
/// MCA's number falls out of a queue simulation rather than a closed-form
/// bound, so the prediction carries no per-port pressure view and its
/// bottleneck is [`uarch::Bottleneck::Unattributed`].
#[derive(Debug, Clone, Copy, Default)]
pub struct McaBaseline;

impl uarch::Predictor for McaBaseline {
    fn name(&self) -> &'static str {
        "mca"
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let r = crate::predict(machine, kernel);
        uarch::Prediction {
            cycles_per_iter: r.cycles_per_iter,
            bottleneck: uarch::Bottleneck::Unattributed,
            port_pressure: Vec::new(),
            uops_per_iter: r.uops as f64,
        }
    }
}

/// Predict the block throughput of a kernel (cycles per iteration).
///
/// Runs the buffer-reusing fast simulation ([`fast_simulate`]); its result
/// is pinned bit-identical to [`predict_reference`] by the test suite.
pub fn predict(machine: &Machine, kernel: &Kernel) -> McaResult {
    use std::cell::RefCell;
    let n = kernel.instructions.len();
    if n == 0 {
        return McaResult {
            cycles_per_iter: 0.0,
            uops: 0,
        };
    }
    let descs = mca_descs(machine, kernel);
    let edges = mca_edges(kernel, &descs);
    thread_local! {
        static SCRATCH: RefCell<SimScratch> = RefCell::new(SimScratch::default());
    }
    SCRATCH.with(|s| fast_simulate(machine, &descs, &edges, 150, 30, &mut s.borrow_mut()))
}

/// The original allocation-heavy prediction loop, kept verbatim as the
/// equivalence oracle for [`predict`] and as the honest pre-optimization
/// baseline the pipeline bench measures against.
pub fn predict_reference(machine: &Machine, kernel: &Kernel) -> McaResult {
    let n = kernel.instructions.len();
    if n == 0 {
        return McaResult {
            cycles_per_iter: 0.0,
            uops: 0,
        };
    }
    let descs = mca_descs(machine, kernel);
    let edges = mca_edges(kernel, &descs);
    simulate(machine, &descs, &edges, 150, 30, None)
}

/// [`McaBaseline`]'s twin that drives [`predict_reference`]. It reports the
/// same predictor name, so a report produced with it is byte-identical to
/// one produced with the fast path — which is exactly what the pipeline
/// bench uses it for.
#[derive(Debug, Clone, Copy, Default)]
pub struct McaReferenceBaseline;

impl uarch::Predictor for McaReferenceBaseline {
    fn name(&self) -> &'static str {
        "mca"
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let r = predict_reference(machine, kernel);
        uarch::Prediction {
            cycles_per_iter: r.cycles_per_iter,
            bottleneck: uarch::Bottleneck::Unattributed,
            port_pressure: Vec::new(),
            uops_per_iter: r.uops as f64,
        }
    }
}

/// A dispatch/issue event pair for one instruction instance, recorded for
/// the timeline view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub iter: usize,
    pub idx: usize,
    pub dispatched: u64,
    pub issued: u64,
}

/// Run the MCA model and record events for the first `iters` iterations
/// (used by [`timeline::render`]).
pub fn predict_with_events(
    machine: &Machine,
    kernel: &Kernel,
    iters: usize,
) -> (McaResult, Vec<Event>) {
    let n = kernel.instructions.len();
    if n == 0 {
        return (
            McaResult {
                cycles_per_iter: 0.0,
                uops: 0,
            },
            Vec::new(),
        );
    }
    let descs = mca_descs(machine, kernel);
    let edges = mca_edges(kernel, &descs);
    let mut events = Vec::new();
    let r = simulate(machine, &descs, &edges, iters.max(1), 0, Some(&mut events));
    events.retain(|e| e.iter < iters);
    events.sort_by_key(|e| (e.iter, e.idx));
    (r, events)
}

/// MCA's view of the instruction stream: no rename-stage elimination.
fn mca_descs(machine: &Machine, kernel: &Kernel) -> Vec<InstrDesc> {
    use uarch::ports::PortCap;
    kernel
        .instructions
        .iter()
        .map(|inst| {
            let d = machine.describe(inst);
            if d.class == InstrClass::Eliminated && !inst.is_nop() {
                // Schedule the move/idiom on a real unit with unit latency.
                let ports = if inst.max_vec_width() > 0 {
                    machine.port_model.with_cap(PortCap::VecAlu)
                } else {
                    machine.port_model.with_cap(PortCap::IntAlu)
                };
                InstrDesc {
                    uops: vec![Uop::new(ports)],
                    latency: 1,
                    rthroughput: 1.0 / ports.count().max(1) as f64,
                    class: InstrClass::Move,
                    from_fallback: false,
                }
            } else {
                d
            }
        })
        .collect()
}

/// Dependency edge with MCA's pessimistic latency charging: every write
/// becomes available after the producer's full latency.
#[derive(Debug, Clone, Copy)]
struct McaEdge {
    from: usize,
    to: usize,
    weight: u64,
    wrap: bool,
}

fn mca_edges(kernel: &Kernel, descs: &[InstrDesc]) -> Vec<McaEdge> {
    let n = kernel.instructions.len();
    let flows: Vec<_> = kernel.instructions.iter().map(dataflow).collect();
    let mut edges = Vec::new();
    for (j, fj) in flows.iter().enumerate() {
        for &r in &fj.reads {
            let producer = (0..j)
                .rev()
                .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)))
                .map(|i| (i, false))
                .or_else(|| {
                    (0..n)
                        .rev()
                        .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)))
                        .map(|i| (i, true))
                });
            if let Some((i, wrap)) = producer {
                edges.push(McaEdge {
                    from: i,
                    to: j,
                    weight: (descs[i].latency as u64).max(1),
                    wrap,
                });
            }
        }
    }
    edges
}

/// Capacity of each port's reservation queue. LLVM scheduling models use
/// small per-port buffers; a dependency chain parked in one queue backs up
/// the in-order dispatch stage — MCA's main source of pessimism on
/// latency-rich code.
const PORT_QUEUE: usize = 28;

/// Timeline simulation with static port binding, per-port reservation
/// queues, and in-order dispatch that stalls on a full queue.
fn simulate(
    machine: &Machine,
    descs: &[InstrDesc],
    edges: &[McaEdge],
    iterations: usize,
    warmup: usize,
    mut events: Option<&mut Vec<Event>>,
) -> McaResult {
    let n = descs.len();
    let np = machine.port_model.num_ports();
    let total_iters = iterations + warmup;

    // Static binding: round-robin cursor per distinct eligible port set,
    // like MCA's resource-cycle counters.
    let mut cursors: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    let mut bind = |ports: PortSet| -> usize {
        let members: Vec<usize> = ports.iter().collect();
        let c = cursors.entry(ports.0).or_insert(0);
        let p = members[*c % members.len()];
        *c += 1;
        p
    };

    let mut incoming: Vec<Vec<McaEdge>> = vec![Vec::new(); n];
    for e in edges {
        incoming[e.to].push(*e);
    }

    let mut port_free_at = vec![0u64; np];
    // Per-port reservation queues of (iter, idx) waiting µ-ops.
    let mut queues: Vec<std::collections::VecDeque<(usize, usize)>> =
        vec![std::collections::VecDeque::new(); np];
    let mut issue_at: Vec<Vec<Option<u64>>> = vec![vec![None; n]; total_iters];
    // Remaining unissued µ-ops per instance, to detect full issue.
    let mut pending: Vec<Vec<u32>> = vec![vec![0; n]; total_iters];
    let mut last_uop_at: Vec<Vec<u64>> = vec![vec![0; n]; total_iters];
    let mut now: u64 = 0;
    let mut next = (0usize, 0usize);
    let mut warm_cycle = 0u64;
    let mut done_iters = 0usize;
    let mut total_uops = 0usize;
    // In-order completion tracking: an iteration is done only when every
    // instruction in it (and all older iterations) has fully issued.
    let mut inst_done: Vec<usize> = vec![0; total_iters];
    let mut retire_ptr = 0usize;
    let max_cycles = 1_000_000u64 + total_iters as u64 * 3_000;

    // Readiness of an instance: every producer fully issued and its result
    // propagated.
    let ready = |it: usize,
                 idx: usize,
                 issue_at: &Vec<Vec<Option<u64>>>,
                 now: u64,
                 incoming: &Vec<Vec<McaEdge>>|
     -> bool {
        incoming[idx].iter().all(|e| {
            let pit = if e.wrap {
                match it.checked_sub(1) {
                    Some(p) => p,
                    None => return true,
                }
            } else {
                it
            };
            matches!(issue_at[pit][e.from], Some(t) if t + e.weight <= now)
        })
    };

    while done_iters < total_iters && now < max_cycles {
        // Dispatch in order, bounded by width; a full target queue stalls
        // the whole dispatch group (in-order front end).
        let mut budget = machine.dispatch_width as i64;
        'dispatch: while budget > 0 && next.0 < total_iters {
            let (it, idx) = next;
            let nu = descs[idx].uop_count().max(1) as i64;
            if nu > budget && budget < machine.dispatch_width as i64 {
                break;
            }
            // All bound queues must have room.
            let bound: Vec<usize> = descs[idx].uops.iter().map(|u| bind(u.ports)).collect();
            for &p in &bound {
                if queues[p].len() >= PORT_QUEUE {
                    break 'dispatch;
                }
            }
            for &p in &bound {
                queues[p].push_back((it, idx));
            }
            if let Some(ev) = events.as_deref_mut() {
                ev.push(Event {
                    iter: it,
                    idx,
                    dispatched: now,
                    issued: u64::MAX,
                });
            }
            pending[it][idx] = descs[idx].uop_count() as u32;
            if descs[idx].uop_count() == 0 {
                // NOP-like: completes at dispatch.
                issue_at[it][idx] = Some(now);
                inst_done[it] += 1;
                if let Some(ev) = events.as_deref_mut() {
                    if let Some(e) = ev.iter_mut().rev().find(|e| e.iter == it && e.idx == idx) {
                        e.issued = now;
                    }
                }
            }
            budget -= nu;
            next = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // Issue: each port independently takes the oldest *ready* µ-op in
        // its queue (static binding: no port stealing).
        for p in 0..np {
            if port_free_at[p] > now {
                continue;
            }
            let pos = queues[p]
                .iter()
                .position(|&(it, idx)| ready(it, idx, &issue_at, now, &incoming));
            if let Some(pos) = pos {
                let (it, idx) = queues[p].remove(pos).unwrap();
                // Occupancy of the µ-op bound here: use the max occupancy of
                // the instruction's µ-ops eligible for this port.
                let occ = descs[idx]
                    .uops
                    .iter()
                    .filter(|u| u.ports.contains(p))
                    .map(|u| (u.occupancy.ceil() as u64).max(1))
                    .max()
                    .unwrap_or(1);
                port_free_at[p] = now + occ;
                total_uops += 1;
                last_uop_at[it][idx] = last_uop_at[it][idx].max(now);
                pending[it][idx] -= 1;
                if pending[it][idx] == 0 {
                    issue_at[it][idx] = Some(last_uop_at[it][idx]);
                    inst_done[it] += 1;
                    if let Some(ev) = events.as_deref_mut() {
                        if let Some(e) = ev.iter_mut().rev().find(|e| e.iter == it && e.idx == idx)
                        {
                            e.issued = last_uop_at[it][idx];
                        }
                    }
                }
            }
        }
        while retire_ptr < total_iters && inst_done[retire_ptr] == n {
            retire_ptr += 1;
            if retire_ptr == warmup {
                warm_cycle = now;
            }
        }
        done_iters = retire_ptr;
        now += 1;
    }

    let measured = (done_iters.saturating_sub(warmup)).max(1) as f64;
    McaResult {
        cycles_per_iter: (now - warm_cycle) as f64 / measured,
        uops: total_uops / total_iters.max(1),
    }
}

/// Per-port min-heap (by readiness time) of `(ready, seq, cell)` queue
/// entries whose readiness is known but still in the future.
type FutureHeap = std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32, u32)>>;
/// Per-port min-heap (by dispatch sequence id) of `(seq, cell)` entries
/// ready to issue now.
type ReadyHeap = std::collections::BinaryHeap<std::cmp::Reverse<(u32, u32)>>;

/// Reusable buffers for [`fast_simulate`]. One instance lives per thread
/// inside [`predict`]; after the first few kernels every buffer has reached
/// its high-water capacity and the simulation stops allocating entirely.
#[derive(Debug, Default)]
struct SimScratch {
    /// Concatenated port members of each distinct eligible port set.
    members: Vec<usize>,
    /// `[start, end)` range into `members` per port-set slot.
    member_ranges: Vec<(u32, u32)>,
    /// Round-robin cursor per port-set slot (replaces the cursor HashMap).
    /// Kept reduced modulo the slot's member count — only the residue is
    /// ever observable.
    cursors: Vec<usize>,
    /// Port-set slot of each µ-op, flattened over all descs.
    slot_of_uop: Vec<u16>,
    /// Start offset into `slot_of_uop` per instruction.
    uop_offsets: Vec<u32>,
    /// PortSet bits → slot, cleared (capacity kept) per call.
    set_slots: std::collections::HashMap<u32, u16>,
    /// `[start, end)` range into the edge list per consumer instruction.
    incoming_ranges: Vec<(u32, u32)>,
    /// Edge indices regrouped by producer (`from`).
    out_edge_idx: Vec<u32>,
    /// `[start, end)` range into `out_edge_idx` per producer instruction.
    out_ranges: Vec<(u32, u32)>,
    port_free_at: Vec<u64>,
    /// Per-port reservation-queue occupancy. The queue itself has no
    /// explicit representation: entry order is the per-port `seq` counter
    /// and every entry lives in exactly one of `future`/`ready`/limbo
    /// (producers unissued), so only the count is needed for the
    /// queue-full stall.
    qlen: Vec<u32>,
    /// Per-port push counters: the dispatch-order sequence id of the next
    /// entry.
    next_seq: Vec<u32>,
    /// Per-port min-heap (by readiness time) of `(ready, seq, cell)`
    /// entries whose readiness is known but still in the future.
    future: Vec<FutureHeap>,
    /// Per-port min-heap (by sequence id) of `(seq, cell)` entries ready
    /// to issue now. The top is exactly the reference's "oldest ready
    /// µ-op by queue position".
    ready: Vec<ReadyHeap>,
    /// Issue occupancy per `(instruction, port)`, flattened `idx * np + p`
    /// (max occupancy over the instruction's µ-ops eligible for the
    /// port, as the reference computes on every issue).
    occ_of: Vec<u8>,
    /// Flattened `it * n + idx` tables; `u64::MAX` encodes "not yet".
    issue_at: Vec<u64>,
    pending: Vec<u32>,
    last_uop_at: Vec<u64>,
    inst_done: Vec<u32>,
    /// Exact readiness time per instance, computed once when its last
    /// producer issues (`u64::MAX` = still unknown). `issue_at` entries are
    /// write-once, so the value never needs invalidation.
    ready_at: Vec<u64>,
    /// Unissued-producer count per instance; `-1` = not yet dispatched.
    prod_pending: Vec<i32>,
    /// Port each µ-op instance was bound to, indexed `it * U + off + ui`
    /// (`U` = µ-ops per iteration). Written at dispatch, read at
    /// notification; never read for undispatched instances, so it is not
    /// cleared between calls.
    uop_port: Vec<u8>,
    /// Queue sequence id of each µ-op instance, same indexing as
    /// `uop_port`.
    uop_seq: Vec<u32>,
    /// Per-dispatch-attempt bound-port scratch.
    bound: Vec<usize>,
}

/// Exact readiness time of a dispatched instance all of whose producers
/// have issued: the max over incoming edges of producer issue time plus
/// edge weight (wrap edges read the previous iteration; iteration 0 has
/// no previous, so those are satisfied). Mirrors the `ready` closure in
/// [`simulate`] at the moment it would first return `true`.
fn compute_ready(
    it: usize,
    idx: usize,
    n: usize,
    edges: &[McaEdge],
    incoming_ranges: &[(u32, u32)],
    issue_at: &[u64],
) -> u64 {
    let (a, b) = incoming_ranges[idx];
    let mut at = 0u64;
    for e in &edges[a as usize..b as usize] {
        let pit = if e.wrap {
            match it.checked_sub(1) {
                Some(p) => p,
                None => continue,
            }
        } else {
            it
        };
        let t = issue_at[pit * n + e.from];
        debug_assert_ne!(t, u64::MAX, "producer not issued");
        at = at.max(t + e.weight);
    }
    at
}

/// File an instance's µ-op queue entries under their readiness time `r`:
/// already-matured entries go straight to the per-port ready heap, the
/// rest to the future heap keyed by `r`.
#[allow(clippy::too_many_arguments)]
fn schedule_uops(
    cell: usize,
    nuops: usize,
    uop_base: usize,
    r: u64,
    now: u64,
    uop_port: &[u8],
    uop_seq: &[u32],
    future: &mut [FutureHeap],
    ready: &mut [ReadyHeap],
) {
    for ui in 0..nuops {
        let p = uop_port[uop_base + ui] as usize;
        let seq = uop_seq[uop_base + ui];
        if r <= now {
            ready[p].push(std::cmp::Reverse((seq, cell as u32)));
        } else {
            future[p].push(std::cmp::Reverse((r, seq, cell as u32)));
        }
    }
}

/// Propagate an instance's issue to its consumers: decrement their
/// unissued-producer counts and, for any that hit zero, fix their
/// readiness time and file their queue entries into the issue heaps.
/// Consumers not yet dispatched (`prod_pending == -1`) are skipped — their
/// count is taken at dispatch, when this issue is already visible.
#[allow(clippy::too_many_arguments)]
fn notify_issue(
    cell: usize,
    n: usize,
    total_iters: usize,
    now: u64,
    uops_per_iter: usize,
    descs: &[InstrDesc],
    edges: &[McaEdge],
    out_edge_idx: &[u32],
    out_ranges: &[(u32, u32)],
    incoming_ranges: &[(u32, u32)],
    uop_offsets: &[u32],
    issue_at: &[u64],
    prod_pending: &mut [i32],
    ready_at: &mut [u64],
    uop_port: &[u8],
    uop_seq: &[u32],
    future: &mut [FutureHeap],
    ready: &mut [ReadyHeap],
) {
    let (it, idx) = (cell / n, cell % n);
    let (a, b) = out_ranges[idx];
    for &ei in &out_edge_idx[a as usize..b as usize] {
        let e = &edges[ei as usize];
        let cit = it + e.wrap as usize;
        if cit >= total_iters {
            continue;
        }
        let ccell = cit * n + e.to;
        if prod_pending[ccell] > 0 {
            prod_pending[ccell] -= 1;
            if prod_pending[ccell] == 0 {
                let r = compute_ready(cit, e.to, n, edges, incoming_ranges, issue_at);
                ready_at[ccell] = r;
                schedule_uops(
                    ccell,
                    descs[e.to].uops.len(),
                    cit * uops_per_iter + uop_offsets[e.to] as usize,
                    r,
                    now,
                    uop_port,
                    uop_seq,
                    future,
                    ready,
                );
            }
        }
    }
}

/// Event-driven port of [`simulate`] over reused flat buffers: no per-call
/// `Vec<Vec<_>>` tables, no per-µ-op member allocation in the binding
/// step, and — instead of every port rescanning its whole reservation
/// queue every cycle — each queue entry is filed once under its exact
/// readiness time and surfaces through two small per-port heaps (`future`
/// keyed by readiness, `ready` keyed by queue position). Idle stretches
/// are fast-forwarded in closed form. Every stateful decision —
/// round-robin cursor advancement (including on stalled dispatch
/// attempts), queue order, port priority — is preserved exactly, which the
/// equivalence tests pin with `f64::to_bits`.
fn fast_simulate(
    machine: &Machine,
    descs: &[InstrDesc],
    edges: &[McaEdge],
    iterations: usize,
    warmup: usize,
    s: &mut SimScratch,
) -> McaResult {
    let n = descs.len();
    let np = machine.port_model.num_ports();
    let total_iters = iterations + warmup;

    // Static binding tables: one slot per distinct eligible port set, in
    // first-touch order (each cursor is independent, so slot order does
    // not affect behavior — only determinism of the tables).
    s.set_slots.clear();
    s.members.clear();
    s.member_ranges.clear();
    s.cursors.clear();
    s.slot_of_uop.clear();
    s.uop_offsets.clear();
    for d in descs {
        s.uop_offsets.push(s.slot_of_uop.len() as u32);
        for u in &d.uops {
            let slot = match s.set_slots.get(&u.ports.0) {
                Some(&slot) => slot,
                None => {
                    let slot = s.member_ranges.len() as u16;
                    let start = s.members.len() as u32;
                    s.members.extend(u.ports.iter());
                    s.member_ranges.push((start, s.members.len() as u32));
                    s.cursors.push(0);
                    s.set_slots.insert(u.ports.0, slot);
                    slot
                }
            };
            s.slot_of_uop.push(slot);
        }
    }
    let uops_per_iter = s.slot_of_uop.len();

    // Occupancy lookup per (instruction, port), replacing the per-issue
    // filter/max over the instruction's µ-ops.
    s.occ_of.clear();
    s.occ_of.resize(n * np, 1);
    for (idx, d) in descs.iter().enumerate() {
        for u in &d.uops {
            let occ = (u.occupancy.ceil() as u64).max(1).min(u8::MAX as u64) as u8;
            for p in u.ports.iter() {
                let e = &mut s.occ_of[idx * np + p];
                *e = (*e).max(occ);
            }
        }
    }

    // `mca_edges` emits edges grouped by consumer in increasing order, so
    // the per-consumer edge lists are contiguous runs of the input slice.
    s.incoming_ranges.clear();
    s.incoming_ranges.resize(n, (0, 0));
    let mut k = 0usize;
    for (to, range) in s.incoming_ranges.iter_mut().enumerate() {
        let start = k;
        while k < edges.len() && edges[k].to == to {
            k += 1;
        }
        *range = (start as u32, k as u32);
    }
    debug_assert_eq!(k, edges.len(), "edges not grouped by consumer");

    // Outgoing adjacency (edge indices regrouped by producer), for issue
    // notifications.
    s.out_ranges.clear();
    s.out_ranges.resize(n, (0, 0));
    for e in edges {
        s.out_ranges[e.from].1 += 1;
    }
    let mut start = 0u32;
    for r in &mut s.out_ranges {
        let cnt = r.1;
        *r = (start, start);
        start += cnt;
    }
    s.out_edge_idx.clear();
    s.out_edge_idx.resize(edges.len(), 0);
    for (ei, e) in edges.iter().enumerate() {
        let slot = s.out_ranges[e.from].1;
        s.out_edge_idx[slot as usize] = ei as u32;
        s.out_ranges[e.from].1 += 1;
    }

    s.port_free_at.clear();
    s.port_free_at.resize(np, 0);
    if s.future.len() < np {
        s.future.resize_with(np, std::collections::BinaryHeap::new);
        s.ready.resize_with(np, std::collections::BinaryHeap::new);
    }
    for p in 0..np {
        s.future[p].clear();
        s.ready[p].clear();
    }
    s.qlen.clear();
    s.qlen.resize(np, 0);
    s.next_seq.clear();
    s.next_seq.resize(np, 0);
    let cells = total_iters * n;
    s.issue_at.clear();
    s.issue_at.resize(cells, u64::MAX);
    s.pending.clear();
    s.pending.resize(cells, 0);
    s.last_uop_at.clear();
    s.last_uop_at.resize(cells, 0);
    s.ready_at.clear();
    s.ready_at.resize(cells, u64::MAX);
    s.prod_pending.clear();
    s.prod_pending.resize(cells, -1);
    s.inst_done.clear();
    s.inst_done.resize(total_iters, 0);
    // `uop_port`/`uop_seq` are written at dispatch and only read for
    // dispatched instances, so stale contents from a previous call are
    // never observed — grow without clearing.
    let uop_cells = total_iters * uops_per_iter;
    if s.uop_port.len() < uop_cells {
        s.uop_port.resize(uop_cells, 0);
        s.uop_seq.resize(uop_cells, 0);
    }

    let mut now: u64 = 0;
    let mut next = (0usize, 0usize);
    let mut warm_cycle = 0u64;
    let mut done_iters = 0usize;
    let mut total_uops = 0usize;
    let mut retire_ptr = 0usize;
    let max_cycles = 1_000_000u64 + total_iters as u64 * 3_000;

    while done_iters < total_iters && now < max_cycles {
        // Dispatch in order, bounded by width; a full target queue stalls
        // the whole dispatch group (in-order front end). Note the cursors
        // advance even when the queue-full check then stalls the group —
        // that matches the reference loop and is load-bearing for
        // bit-identical output.
        let next_before = next;
        let mut issued_any = false;
        let mut budget = machine.dispatch_width as i64;
        'dispatch: while budget > 0 && next.0 < total_iters {
            let (it, idx) = next;
            let nu = descs[idx].uop_count().max(1) as i64;
            if nu > budget && budget < machine.dispatch_width as i64 {
                break;
            }
            s.bound.clear();
            let off = s.uop_offsets[idx] as usize;
            for ui in 0..descs[idx].uops.len() {
                let slot = s.slot_of_uop[off + ui] as usize;
                let (ms, me) = s.member_ranges[slot];
                let members = &s.members[ms as usize..me as usize];
                let c = &mut s.cursors[slot];
                let p = members[*c];
                *c += 1;
                if *c == members.len() {
                    *c = 0;
                }
                s.bound.push(p);
            }
            for &p in &s.bound {
                if s.qlen[p] as usize >= PORT_QUEUE {
                    break 'dispatch;
                }
            }
            let cell = it * n + idx;
            s.pending[cell] = descs[idx].uop_count() as u32;
            if descs[idx].uop_count() == 0 {
                // NOP-like: completes at dispatch. It holds no queue slots,
                // so its own readiness is never queried; `prod_pending`
                // stays in the undispatched state and notifications pass
                // it by.
                s.issue_at[cell] = now;
                s.inst_done[it] += 1;
                notify_issue(
                    cell,
                    n,
                    total_iters,
                    now,
                    uops_per_iter,
                    descs,
                    edges,
                    &s.out_edge_idx,
                    &s.out_ranges,
                    &s.incoming_ranges,
                    &s.uop_offsets,
                    &s.issue_at,
                    &mut s.prod_pending,
                    &mut s.ready_at,
                    &s.uop_port,
                    &s.uop_seq,
                    &mut s.future,
                    &mut s.ready,
                );
            } else {
                let uop_base = it * uops_per_iter + off;
                for (ui, &p) in s.bound.iter().enumerate() {
                    let seq = s.next_seq[p];
                    s.next_seq[p] += 1;
                    s.qlen[p] += 1;
                    s.uop_port[uop_base + ui] = p as u8;
                    s.uop_seq[uop_base + ui] = seq;
                }
                // Count producers that have not issued yet; anything that
                // issues later flows in through `notify_issue`.
                let (a, b) = s.incoming_ranges[idx];
                let mut cnt = 0i32;
                for e in &edges[a as usize..b as usize] {
                    let pit = if e.wrap {
                        match it.checked_sub(1) {
                            Some(p) => p,
                            None => continue,
                        }
                    } else {
                        it
                    };
                    if s.issue_at[pit * n + e.from] == u64::MAX {
                        cnt += 1;
                    }
                }
                s.prod_pending[cell] = cnt;
                if cnt == 0 {
                    let r = compute_ready(it, idx, n, edges, &s.incoming_ranges, &s.issue_at);
                    s.ready_at[cell] = r;
                    schedule_uops(
                        cell,
                        descs[idx].uops.len(),
                        uop_base,
                        r,
                        now,
                        &s.uop_port,
                        &s.uop_seq,
                        &mut s.future,
                        &mut s.ready,
                    );
                }
            }
            budget -= nu;
            next = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // Issue: each port independently takes the oldest *ready* µ-op in
        // its queue (static binding: no port stealing). Matured future
        // entries surface into the ready heap first; the ready heap's
        // minimum sequence id is precisely the reference scan's first
        // ready entry by queue position.
        for p in 0..np {
            if s.port_free_at[p] > now {
                continue;
            }
            while let Some(&std::cmp::Reverse((r, seq, cell))) = s.future[p].peek() {
                if r > now {
                    break;
                }
                s.future[p].pop();
                s.ready[p].push(std::cmp::Reverse((seq, cell)));
            }
            let Some(&std::cmp::Reverse((_, cell))) = s.ready[p].peek() else {
                continue;
            };
            s.ready[p].pop();
            s.qlen[p] -= 1;
            issued_any = true;
            let cell = cell as usize;
            let (it, idx) = (cell / n, cell % n);
            let occ = s.occ_of[idx * np + p] as u64;
            s.port_free_at[p] = now + occ;
            total_uops += 1;
            s.last_uop_at[cell] = s.last_uop_at[cell].max(now);
            s.pending[cell] -= 1;
            if s.pending[cell] == 0 {
                s.issue_at[cell] = s.last_uop_at[cell];
                s.inst_done[it] += 1;
                notify_issue(
                    cell,
                    n,
                    total_iters,
                    now,
                    uops_per_iter,
                    descs,
                    edges,
                    &s.out_edge_idx,
                    &s.out_ranges,
                    &s.incoming_ranges,
                    &s.uop_offsets,
                    &s.issue_at,
                    &mut s.prod_pending,
                    &mut s.ready_at,
                    &s.uop_port,
                    &s.uop_seq,
                    &mut s.future,
                    &mut s.ready,
                );
            }
        }
        while retire_ptr < total_iters && s.inst_done[retire_ptr] as usize == n {
            retire_ptr += 1;
            if retire_ptr == warmup {
                warm_cycle = now;
            }
        }
        done_iters = retire_ptr;
        now += 1;

        // Idle-cycle skip. If the cycle just simulated (T = now-1) neither
        // dispatched nor issued anything, following cycles stay idle until
        // either (a) some port can issue — queues cannot drain without
        // issues and no new readiness times can appear (a µ-op's readiness
        // is fixed once its producers issue) — or (b) the stalled bind
        // rotates onto a non-full queue: the round-robin cursors keep
        // advancing during failed binds, so the chosen ports vary
        // cycle-to-cycle. Both bounds are computed exactly; the skipped
        // cycles' only state change (the constant per-cycle cursor
        // advance) is applied in closed form, so the jump is equivalent to
        // simulating each idle cycle.
        if !issued_any && next == next_before && done_iters < total_iters && now < max_cycles {
            // (a) earliest cycle at which any port can issue. A non-empty
            // ready heap issues the moment the port is free; otherwise the
            // earliest future entry gates it. Entries in neither heap have
            // unissued producers and cannot mature while idle.
            let mut t_issue = u64::MAX;
            for p in 0..np {
                let t = if !s.ready[p].is_empty() {
                    s.port_free_at[p]
                } else if let Some(&std::cmp::Reverse((r, _, _))) = s.future[p].peek() {
                    r.max(s.port_free_at[p])
                } else {
                    continue;
                };
                t_issue = t_issue.min(t);
            }

            // (b) earliest k >= 1 such that the bind of the stalled
            // instruction at cycle T+k lands every µ-op on a non-full
            // queue. The j-th slot-s µ-op at cycle T+k picks member
            // (c_s + (k-1)*m_s + j) mod len_s, with c_s the cursor after
            // cycle T's failed bind and m_s the instruction's µ-op count
            // in that slot. The pattern is periodic, so scanning a bounded
            // window is exact for every cycle it covers.
            const SCAN: u64 = 256;
            let mut bound_by_dispatch = now + SCAN;
            if next.0 < total_iters {
                let idx = next.1;
                let off = s.uop_offsets[idx] as usize;
                let nuops = descs[idx].uops.len();
                'scan: for k in 1..=SCAN {
                    // Per-slot occurrence index within this bind.
                    let mut ok = true;
                    for ui in 0..nuops {
                        let slot = s.slot_of_uop[off + ui] as usize;
                        let j = s.slot_of_uop[off..off + ui]
                            .iter()
                            .filter(|&&x| x as usize == slot)
                            .count();
                        let m = s.slot_of_uop[off..off + nuops]
                            .iter()
                            .filter(|&&x| x as usize == slot)
                            .count() as u64;
                        let (ms, me) = s.member_ranges[slot];
                        let members = &s.members[ms as usize..me as usize];
                        let pos = (s.cursors[slot] as u64 + (k - 1) * m + j as u64)
                            % members.len() as u64;
                        let p = members[pos as usize];
                        if s.qlen[p] as usize >= PORT_QUEUE {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        bound_by_dispatch = now - 1 + k;
                        break 'scan;
                    }
                }
            } else {
                bound_by_dispatch = u64::MAX;
            }

            // t_issue == MAX with no dispatch bound means deadlock: the
            // reference would spin to the cycle cap, so jump there.
            let target = t_issue.min(bound_by_dispatch).max(now).min(max_cycles);
            let skipped = target - now;
            if skipped > 0 {
                if next.0 < total_iters {
                    let idx = next.1;
                    let off = s.uop_offsets[idx] as usize;
                    for ui in 0..descs[idx].uops.len() {
                        let slot = s.slot_of_uop[off + ui] as usize;
                        let (ms, me) = s.member_ranges[slot];
                        let len = (me - ms) as usize;
                        s.cursors[slot] = (s.cursors[slot] + skipped as usize) % len;
                    }
                }
                now = target;
            }
        }
    }

    let measured = (done_iters.saturating_sub(warmup)).max(1) as f64;
    McaResult {
        cycles_per_iter: (now - warm_cycle) as f64 / measured,
        uops: total_uops / total_iters.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn p(asm: &str, m: &Machine) -> f64 {
        let k = parse_kernel(asm, Isa::X86).unwrap();
        predict(m, &k).cycles_per_iter
    }

    #[test]
    fn serial_chain_bounded_by_latency() {
        let m = Machine::golden_cove();
        let c = p(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            &m,
        );
        assert!(c >= 4.0 - 0.1, "c={c}");
        assert!(c < 7.0, "c={c}");
    }

    #[test]
    fn mca_does_not_eliminate_moves() {
        let m = Machine::golden_cove();
        let asm = ".L1:\n vmovaps %zmm1, %zmm2\n vmovaps %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n";
        let mca_c = p(asm, &m);
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(mca_c > osaca, "mca={mca_c} osaca={osaca}");
    }

    #[test]
    fn mca_is_pessimistic_vs_simulator_on_streaming() {
        // The paper's central Fig. 3 relationship: MCA ≥ measurement ≥
        // OSACA for typical streaming kernels.
        let m = Machine::golden_cove();
        let asm = ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let mca_c = predict(&m, &k).cycles_per_iter;
        let meas = exec::cycles_per_iteration(&m, &k);
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(osaca <= meas + 0.05, "osaca={osaca} meas={meas}");
        assert!(mca_c >= meas * 0.85, "mca={mca_c} meas={meas}");
    }

    #[test]
    fn empty_kernel() {
        let m = Machine::zen4();
        let k = Kernel {
            instructions: vec![],
            isa: Isa::X86,
            loop_label: None,
        };
        assert_eq!(predict(&m, &k).cycles_per_iter, 0.0);
    }

    #[test]
    fn aarch64_kernels_work() {
        let m = Machine::neoverse_v2();
        let k = parse_kernel(
            ".L1:\n ldr q0, [x1, x4]\n fadd v0.2d, v0.2d, v1.2d\n str q0, [x0, x4]\n add x4, x4, #16\n cmp x4, x5\n b.ne .L1\n",
            Isa::AArch64,
        )
        .unwrap();
        let r = predict(&m, &k);
        assert!(r.cycles_per_iter >= 1.0, "{}", r.cycles_per_iter);
        assert!(r.cycles_per_iter < 20.0, "{}", r.cycles_per_iter);
    }

    #[test]
    fn static_binding_creates_contention() {
        // Two µ-ops alternating over {0,5} plus one pinned to port 0:
        // dynamic picking resolves this, static round-robin collides on
        // some iterations. MCA must be ≥ the optimal analytical bound.
        let m = Machine::golden_cove();
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm0, %zmm1, %zmm3\n vdivpd %ymm4, %ymm5, %ymm6\n subq $1, %rax\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let mca_c = predict(&m, &k).cycles_per_iter;
        let osaca = incore::analyze(&m, &k).prediction;
        assert!(mca_c >= osaca - 0.05, "mca={mca_c} osaca={osaca}");
    }

    #[test]
    fn fast_path_is_bit_identical_to_reference() {
        // The scratch-buffer simulation must reproduce the reference loop
        // exactly — not approximately — across kernels exercising NOP-like
        // zero-µ-op instructions, static-binding contention, serial chains,
        // memory traffic, and both ISAs on all three machines.
        let x86 = [
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm0, %zmm1, %zmm3\n vdivpd %ymm4, %ymm5, %ymm6\n subq $1, %rax\n jne .L1\n",
            ".L1:\n nop\n addq $1, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            "movq %rax, %rbx\naddq $1, %rbx\n",
        ];
        let a64 = [
            ".L1:\n ldr q0, [x1, x4]\n fadd v0.2d, v0.2d, v1.2d\n str q0, [x0, x4]\n add x4, x4, #16\n cmp x4, x5\n b.ne .L1\n",
            ".L1:\n ld1d z0.d, p0/z, [x1, x4, lsl #3]\n fmla z1.d, p0/m, z0.d, z2.d\n add x4, x4, #8\n cmp x4, x5\n b.ne .L1\n",
        ];
        for m in [
            Machine::golden_cove(),
            Machine::zen4(),
            Machine::neoverse_v2(),
        ] {
            for (isa, asm) in x86
                .iter()
                .map(|a| (Isa::X86, a))
                .chain(a64.iter().map(|a| (Isa::AArch64, a)))
            {
                let k = parse_kernel(asm, isa).unwrap();
                let fast = predict(&m, &k);
                let slow = predict_reference(&m, &k);
                assert_eq!(
                    fast.cycles_per_iter.to_bits(),
                    slow.cycles_per_iter.to_bits(),
                    "machine={} asm={asm:?} fast={} slow={}",
                    m.name,
                    fast.cycles_per_iter,
                    slow.cycles_per_iter
                );
                assert_eq!(fast.uops, slow.uops, "machine={} asm={asm:?}", m.name);
            }
        }
    }

    #[test]
    fn reference_baseline_matches_predict() {
        use uarch::Predictor;
        let m = Machine::golden_cove();
        let k = parse_kernel(
            ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let b = McaReferenceBaseline;
        assert_eq!(b.name(), "mca");
        let pred = b.predict(&m, &k);
        assert_eq!(
            pred.cycles_per_iter.to_bits(),
            predict(&m, &k).cycles_per_iter.to_bits()
        );
    }
}
