//! llvm-mca-style timeline view.
//!
//! Renders a per-instance timeline in (a simplification of) MCA's
//! notation: `D` = dispatched, `=` = waiting in a reservation queue,
//! `E` = issued to its port, `.` = (not tracked further). One row per
//! instruction instance, labelled `[iteration,index]`.

use isa::Kernel;
use uarch::Machine;

/// Render a timeline of the first `iters` iterations.
pub fn render(machine: &Machine, kernel: &Kernel, iters: usize) -> String {
    use std::fmt::Write;
    let (result, events) = crate::predict_with_events(machine, kernel, iters);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MCA timeline — {} ({:.2} cy/iter predicted)",
        machine.arch.label(),
        result.cycles_per_iter
    );
    if events.is_empty() {
        return out;
    }
    let t_end = events
        .iter()
        .map(|e| if e.issued == u64::MAX { e.dispatched } else { e.issued } + 1)
        .max()
        .unwrap_or(1)
        .min(events.iter().map(|e| e.dispatched).min().unwrap_or(0) + 120);
    let t0 = events.iter().map(|e| e.dispatched).min().unwrap_or(0);

    // Cycle ruler (tens digits).
    let _ = write!(out, "{:<10}", "");
    for t in t0..t_end {
        let _ = write!(out, "{}", (t / 10) % 10);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<10}", "");
    for t in t0..t_end {
        let _ = write!(out, "{}", t % 10);
    }
    let _ = writeln!(out);

    for e in &events {
        let label = format!("[{},{}]", e.iter, e.idx);
        let _ = write!(out, "{label:<10}");
        for t in t0..t_end {
            let c = if t < e.dispatched {
                ' '
            } else if t == e.dispatched && (e.issued == u64::MAX || e.issued != e.dispatched) {
                'D'
            } else if e.issued != u64::MAX && t == e.issued {
                'E'
            } else if e.issued != u64::MAX && t < e.issued {
                '='
            } else {
                '.'
            };
            let _ = write!(out, "{c}");
        }
        let text = kernel
            .instructions
            .get(e.idx)
            .map(|i| i.raw.as_str())
            .unwrap_or("");
        let _ = writeln!(out, " {text}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    #[test]
    fn timeline_renders_rows_per_instance() {
        let m = Machine::golden_cove();
        let k = parse_kernel(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let t = render(&m, &k, 2);
        // 2 iterations × 3 instructions = 6 rows.
        assert_eq!(t.matches("[0,").count() + t.matches("[1,").count(), 6);
        assert!(t.contains('E'), "every instance should issue");
        assert!(t.contains("vmulpd"));
    }

    #[test]
    fn dependent_chain_issues_later() {
        let m = Machine::golden_cove();
        let k = parse_kernel(
            ".L1:\n vdivpd %zmm1, %zmm2, %zmm3\n vaddpd %zmm3, %zmm4, %zmm5\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let (_, events) = crate::predict_with_events(&m, &k, 1);
        let div = events.iter().find(|e| e.idx == 0).unwrap();
        let add = events.iter().find(|e| e.idx == 1).unwrap();
        // The add waits for the divide's 14-cycle latency.
        assert!(
            add.issued >= div.issued + 14,
            "div@{} add@{}",
            div.issued,
            add.issued
        );
    }

    #[test]
    fn empty_kernel_timeline() {
        let m = Machine::zen4();
        let k = Kernel {
            instructions: vec![],
            isa: Isa::X86,
            loop_label: None,
        };
        let t = render(&m, &k, 2);
        assert!(t.contains("0.00 cy/iter"));
    }
}
