//! Table III — instruction throughput/latency microbenchmarks on the core
//! simulator, printing the regenerated table.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_instr");
    g.sample_size(10);
    for m in uarch::all_machines() {
        g.bench_function(format!("{}_vec_fma_tp", m.arch.chip()), |b| {
            b.iter(|| bench::instruction_throughput(&m, bench::ibench::Instr::VecFma))
        });
        g.bench_function(format!("{}_vec_fma_lat", m.arch.chip()), |b| {
            b.iter(|| bench::instruction_latency(&m, bench::ibench::Instr::VecFma))
        });
    }
    g.finish();
    eprintln!("{}", bench::tables::render_table3());
}

criterion_group!(benches, bench);
criterion_main!(benches);
