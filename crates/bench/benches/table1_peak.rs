//! Table I — peak-FLOP benchmark: time the FMA-saturating kernel on the
//! core simulator for each machine and print the Table I rows.

use criterion::{criterion_group, criterion_main, Criterion};

fn fma_peak_kernel(m: &uarch::Machine) -> isa::Kernel {
    let mut asm = String::from(".L0:\n");
    match m.isa {
        isa::Isa::X86 => {
            let r = if m.simd_width_bits == 512 {
                "zmm"
            } else {
                "ymm"
            };
            for i in 0..10 {
                asm.push_str(&format!("    vfmadd231pd %{r}14, %{r}15, %{r}{i}\n"));
            }
            asm.push_str("    subq $1, %rax\n    jne .L0\n");
        }
        isa::Isa::AArch64 => {
            for i in 0..10 {
                asm.push_str(&format!("    fmla v{i}.2d, v14.2d, v15.2d\n"));
            }
            asm.push_str("    subs x5, x5, #1\n    b.ne .L0\n");
        }
    }
    isa::parse_kernel(&asm, m.isa).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_peak");
    for m in uarch::all_machines() {
        let k = fma_peak_kernel(&m);
        g.bench_function(m.arch.chip(), |b| {
            b.iter(|| exec::cycles_per_iteration(&m, std::hint::black_box(&k)))
        });
        // Report the achieved flops the simulated chip reaches.
        let cy = exec::cycles_per_iteration(&m, &k);
        let lanes = (m.simd_width_bits / 64) as f64;
        let flops_per_iter = 10.0 * lanes * 2.0;
        let row = node::table1_row(&m);
        let f = node::freq::sustained_freq_ghz(
            &m,
            match m.arch {
                uarch::Arch::NeoverseV2 => isa::IsaExt::Neon,
                _ => isa::IsaExt::Avx512,
            },
            m.cores,
        );
        let tflops = flops_per_iter / cy * f * m.cores as f64 / 1000.0;
        eprintln!(
            "[table1] {}: simulated peak {:.2} Tflop/s (model: theor {:.2}, achiev {:.2})",
            m.arch.chip(),
            tflops,
            row.theor_peak_tflops,
            row.achieved_peak_tflops
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
