//! Observability-overhead benchmark: Criterion timings for a
//! representative kernel simulated with the `obs` recorder disabled and
//! enabled, then a full-corpus validation comparison written to
//! `BENCH_obs.json` at the repository root (see `bench::obsbench`).
//!
//! `BENCH_OBS_LIMIT=<n>` caps the corpus at n variants per machine — CI
//! uses this for a quick smoke run; local `cargo bench --bench obs_core`
//! measures the whole corpus.

use criterion::{criterion_group, Criterion};

fn recorder_overhead(c: &mut Criterion) {
    let m = uarch::Machine::golden_cove();
    let v = kernels::Variant {
        kernel: kernels::StreamKernel::StreamTriad,
        compiler: kernels::Compiler::Icx,
        opt: kernels::OptLevel::O3,
        arch: m.arch,
    };
    let k = kernels::generate_kernel(&v, &m);
    let mut g = c.benchmark_group("obs_core/simulate");
    g.sample_size(10);
    let mut scratch = exec::SimScratch::default();
    obs::disable();
    g.bench_function("recorder_disabled", |b| {
        b.iter(|| {
            exec::simulate_with_scratch(&m, &k, exec::SimConfig::default(), &mut scratch)
                .cycles_per_iter
        })
    });
    obs::enable();
    g.bench_function("recorder_enabled", |b| {
        b.iter(|| {
            exec::simulate_with_scratch(&m, &k, exec::SimConfig::default(), &mut scratch)
                .cycles_per_iter
        })
    });
    let _ = obs::take();
    obs::disable();
    g.finish();
}

criterion_group!(benches, recorder_overhead);

fn main() {
    benches();
    let limit = std::env::var("BENCH_OBS_LIMIT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let report = bench::obsbench::run(limit);
    eprintln!(
        "[obs_core] {} blocks: disabled {:.1} ms vs enabled {:.1} ms ({:+.1}% overhead), \
         {} counters / {} spans recorded, disabled-identical: {}, enabled-identical: {}",
        report.blocks,
        report.disabled_ms,
        report.enabled_ms,
        report.overhead_pct,
        report.profile_counters,
        report.profile_spans,
        report.disabled_runs_identical,
        report.enabled_output_identical,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, report.to_json()).expect("write BENCH_obs.json");
    eprintln!("[obs_core] wrote {path}");
    assert!(
        report.disabled_runs_identical,
        "validation output drifted between recorder-disabled runs"
    );
    assert!(
        report.enabled_output_identical,
        "enabling the obs recorder changed the validation output"
    );
}
