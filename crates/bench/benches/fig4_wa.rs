//! Fig. 4 — write-allocate evasion: store-only benchmark traffic ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use memhier::{store_traffic_ratio, StoreKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_wa");
    g.sample_size(10);
    for m in uarch::all_machines() {
        g.bench_function(format!("{}_standard_full", m.arch.chip()), |b| {
            b.iter(|| store_traffic_ratio(&m, m.cores, StoreKind::Standard).ratio)
        });
        if m.isa == isa::Isa::X86 {
            g.bench_function(format!("{}_nt_full", m.arch.chip()), |b| {
                b.iter(|| store_traffic_ratio(&m, m.cores, StoreKind::NonTemporal).ratio)
            });
        }
    }
    g.finish();
    eprintln!("{}", bench::tables::render_fig4());
}

criterion_group!(benches, bench);
criterion_main!(benches);
