//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. balanced vs. optimal port assignment in the analyzer,
//! 2. the simulator's silicon quirks on vs. off,
//! 3. the SpecI2M gating threshold,
//! 4. out-of-order window (ROB/scheduler) size in the simulator.

use criterion::{criterion_group, criterion_main, Criterion};

fn corpus_kernels(m: &uarch::Machine) -> Vec<isa::Kernel> {
    kernels::variants_for(m.arch)
        .into_iter()
        .filter(|v| v.opt == kernels::OptLevel::O3)
        .map(|v| kernels::generate_kernel(&v, m))
        .collect()
}

fn ablation_port_assignment(c: &mut Criterion) {
    let m = uarch::Machine::golden_cove();
    let ks = corpus_kernels(&m);
    let mut g = c.benchmark_group("ablation_port_assignment");
    for (name, strat) in [
        ("balanced", incore::PortAssignment::Balanced),
        ("optimal", incore::PortAssignment::Optimal),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                ks.iter()
                    .map(|k| {
                        incore::analyze_with(
                            &m,
                            k,
                            incore::Options {
                                assignment: strat,
                                frontend: true,
                            },
                        )
                        .prediction
                    })
                    .sum::<f64>()
            })
        });
    }
    g.finish();
    // Report the prediction delta.
    let opts = |a| incore::Options {
        assignment: a,
        frontend: true,
    };
    let (mut worse, mut total) = (0usize, 0usize);
    for k in &ks {
        let bal = incore::analyze_with(&m, k, opts(incore::PortAssignment::Balanced)).prediction;
        let opt = incore::analyze_with(&m, k, opts(incore::PortAssignment::Optimal)).prediction;
        total += 1;
        if bal > opt + 1e-9 {
            worse += 1;
        }
    }
    eprintln!("[ablation] balanced heuristic overestimates pressure on {worse}/{total} kernels");
}

fn ablation_quirks(c: &mut Criterion) {
    // A serial FMA accumulation chain — the pattern the Neoverse V2
    // forwards at 2 cycles instead of the 4-cycle documented latency
    // (iterative solvers à la Gauss-Seidel compile to this with
    // -ffp-contract at higher optimization levels).
    let m = uarch::Machine::neoverse_v2();
    let k = isa::parse_kernel(
        ".L0:\n    fmla v0.2d, v1.2d, v2.2d\n    subs x5, x5, #1\n    b.ne .L0\n",
        isa::Isa::AArch64,
    )
    .unwrap();
    let mut g = c.benchmark_group("ablation_quirks");
    for (name, quirks) in [("on", true), ("off", false)] {
        let cfg = exec::SimConfig {
            quirks,
            ..Default::default()
        };
        g.bench_function(name, |b| {
            b.iter(|| exec::simulate(&m, &k, cfg).cycles_per_iter)
        });
    }
    g.finish();
    let on = exec::simulate(&m, &k, exec::SimConfig::default()).cycles_per_iter;
    let off = exec::simulate(
        &m,
        &k,
        exec::SimConfig {
            quirks: false,
            ..Default::default()
        },
    )
    .cycles_per_iter;
    let model = incore::analyze(&m, &k).prediction;
    eprintln!(
        "[ablation] V2 FMA accumulation chain: quirks on {on:.2} cy/iter vs off {off:.2} (model predicts {model:.2} — the forwarding path is what OSACA over-predicts)"
    );
}

fn ablation_speci2m(c: &mut Criterion) {
    let m = uarch::Machine::golden_cove();
    let mut g = c.benchmark_group("ablation_speci2m");
    g.sample_size(10);
    g.bench_function("full_domain", |b| {
        b.iter(|| memhier::store_traffic_ratio(&m, 13, memhier::StoreKind::Standard).ratio)
    });
    g.finish();
    for n in [1, 4, 8, 10, 13] {
        let p = memhier::store_traffic_ratio(&m, n, memhier::StoreKind::Standard);
        eprintln!(
            "[ablation] SpecI2M at {n:>2} cores: ratio {:.3} (utilization {:.2})",
            p.ratio, p.utilization
        );
    }
}

fn ablation_ooo_window(c: &mut Criterion) {
    // Shrinking the ROB/scheduler hurts the measured throughput of
    // latency-rich kernels; the analytical model (infinite window) does not
    // move. This quantifies the gap the window size creates.
    let mut m = uarch::Machine::golden_cove();
    let v = kernels::Variant {
        kernel: kernels::StreamKernel::Jacobi3D27,
        compiler: kernels::Compiler::Icx,
        opt: kernels::OptLevel::O3,
        arch: m.arch,
    };
    let k = kernels::generate_kernel(&v, &m);
    let mut g = c.benchmark_group("ablation_ooo_window");
    g.sample_size(10);
    for (name, rob, sched) in [
        ("512_205", 512u32, 205u32),
        ("128_64", 128, 64),
        ("64_32", 64, 32),
    ] {
        m.rob_size = rob;
        m.sched_size = sched;
        let mm = m.clone();
        g.bench_function(name, |b| b.iter(|| exec::cycles_per_iteration(&mm, &k)));
        eprintln!(
            "[ablation] ROB {rob}/sched {sched}: {:.2} cy/iter",
            exec::cycles_per_iteration(&mm, &k)
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_port_assignment,
    ablation_quirks,
    ablation_speci2m,
    ablation_ooo_window
);
criterion_main!(benches);
