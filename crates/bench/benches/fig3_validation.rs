//! Fig. 3 — the full 416-block validation run, timed end-to-end, printing
//! the RPE histograms and summary statistics.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_validation");
    g.sample_size(10);
    // Time one machine's sub-corpus per benchmark id.
    for arch in [
        uarch::Arch::NeoverseV2,
        uarch::Arch::GoldenCove,
        uarch::Arch::Zen4,
    ] {
        let chip = match arch {
            uarch::Arch::NeoverseV2 => "GCS",
            uarch::Arch::GoldenCove => "SPR",
            uarch::Arch::Zen4 => "Genoa",
        };
        g.bench_function(chip, |b| b.iter(|| bench::rpe_corpus(&[arch]).len()));
    }
    g.finish();

    let records = bench::rpe_corpus(&[
        uarch::Arch::NeoverseV2,
        uarch::Arch::GoldenCove,
        uarch::Arch::Zen4,
    ]);
    let osaca: Vec<f64> = records.iter().map(|r| r.rpe_osaca).collect();
    let mca: Vec<f64> = records.iter().map(|r| r.rpe_mca).collect();
    eprintln!(
        "{}",
        bench::fig3::render_histogram("OSACA-style in-core model", &osaca)
    );
    eprintln!(
        "{}",
        bench::fig3::render_histogram("LLVM-MCA-style model", &mca)
    );
    let so = bench::fig3::summarize(&osaca);
    let sm = bench::fig3::summarize(&mca);
    eprintln!(
        "[fig3] n={} | OSACA optimistic {:.0}% (paper 96%), off-by-2x {} (paper 1) | MCA optimistic {:.0}% (paper 25%), off-by-2x {} (paper 14)",
        records.len(),
        so.optimistic_fraction * 100.0,
        so.off_by_2x,
        sm.optimistic_fraction * 100.0,
        sm.off_by_2x
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
