//! Serving-path benchmark: Criterion timings for the hot wire codec,
//! then the deterministic load-generator run (1/8/64 concurrent clients
//! over corpus kernels against an in-process `incore-cli serve`)
//! written to `BENCH_serve.json` at the repository root (see
//! `bench::servebench`).
//!
//! `BENCH_SERVE_LIMIT=<n>` caps the corpus at n kernels per pass — CI
//! uses this for a quick smoke run; local `cargo bench --bench
//! serve_core` drives the whole corpus.

use criterion::{criterion_group, Criterion};

fn wire_codec(c: &mut Criterion) {
    let machine = uarch::Machine::golden_cove();
    let v = kernels::Variant {
        kernel: kernels::StreamKernel::StreamTriad,
        compiler: kernels::Compiler::Icx,
        opt: kernels::OptLevel::O3,
        arch: machine.arch,
    };
    let asm = kernels::generate(&v, &machine);
    let frame = format!(
        "{{\"type\":\"analyze\",\"id\":1,\"label\":\"triad\",\"asm\":{},\"arch\":\"spr\",\"mca\":true}}",
        serde_json::to_string(&asm).unwrap()
    );
    let report =
        cli::analyze_report_json(&machine, "triad", &asm, cli::AnalyzeFlags::default()).unwrap();
    let mut g = c.benchmark_group("serve_core/codec");
    g.bench_function("parse_request", |b| {
        b.iter(|| cli::proto::parse_request(&frame).unwrap().id())
    });
    g.bench_function("render_extract", |b| {
        b.iter(|| {
            let rendered = cli::proto::render_analyze_ok(1, report.trim_end());
            cli::proto::extract_report(&rendered).map(str::len)
        })
    });
    g.finish();
}

criterion_group!(benches, wire_codec);

fn main() {
    benches();
    let limit = std::env::var("BENCH_SERVE_LIMIT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let report = bench::servebench::run(limit);
    eprintln!(
        "[serve_core] {} kernels, byte_identical: {}, cache hit rate {:.3}, coalesce rate {:.3}",
        report.kernels, report.byte_identical, report.cache_hit_rate, report.coalesce_rate,
    );
    for l in &report.levels {
        eprintln!(
            "[serve_core]   {:>2} clients: {:>6} reqs in {:>8.1} ms — {:>8.1} req/s, \
             p50 {:>6} us, p99 {:>6} us, hit rate {:.3}, coalesce rate {:.3}",
            l.clients,
            l.requests,
            l.wall_ms,
            l.requests_per_sec,
            l.p50_us,
            l.p99_us,
            l.cache_hit_rate,
            l.coalesce_rate,
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, report.to_json()).expect("write BENCH_serve.json");
    eprintln!("[serve_core] wrote {path}");
    assert!(
        report.byte_identical,
        "served responses diverged from single-shot analyze --json"
    );
    assert!(
        report.cache_hit_rate > 0.0 && report.coalesce_rate > 0.0,
        "the server must demonstrably share work across clients"
    );
}
