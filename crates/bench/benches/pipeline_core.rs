//! Pipeline throughput benchmark with an allocation micro-assert:
//!
//! 1. A counting global allocator audits `isa::parse_kernel` over the
//!    full 416-block corpus. After one warm-up pass (which populates the
//!    thread-local intern arena), every further pass must allocate an
//!    *identical* amount — the interner has converged, nothing transient
//!    accumulates — and no more than materializing the output `Kernel`
//!    structures themselves costs (a deep clone). A regression that
//!    reintroduces per-token `String` churn on the steady path fails
//!    here before it shows up as a timing drift.
//! 2. The tracked pipeline run (`bench::pipelinebench`): baseline vs
//!    batch vs streaming-cold vs persistent-cache-warm kernels/sec at 1
//!    and 8 threads, written to `BENCH_pipeline.json` at the repository
//!    root with its byte-identity and speedup gates asserted.
//!
//! `BENCH_PIPELINE_LIMIT=<n>` caps the volume corpus at n blocks — CI
//! uses this for a quick smoke run; local `cargo bench --bench
//! pipeline_core` drives three full passes over the variant grid.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, Criterion};

/// `System`, plus a tally of calls and bytes handed out.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// The one sanctioned unsafe block in the workspace's benches: pure
// delegation to `System` with relaxed counters on the side.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// (allocation calls, bytes) performed by `f`.
fn counted<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (a0, b0) = (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    );
    let out = f();
    let (a1, b1) = (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    );
    (out, a1 - a0, b1 - b0)
}

/// The full corpus as (isa, asm text) across all three machines.
fn corpus_text() -> Vec<(isa::Isa, String)> {
    uarch::all_machines()
        .iter()
        .flat_map(|m| {
            kernels::variants_for(m.arch)
                .into_iter()
                .map(|v| (m.isa, kernels::generate(&v, m)))
                .collect::<Vec<_>>()
        })
        .collect()
}

fn parse_pass(blocks: &[(isa::Isa, String)]) -> Vec<isa::Kernel> {
    blocks
        .iter()
        .map(|(isa, asm)| isa::parse_kernel(asm, *isa).expect("corpus parses"))
        .collect()
}

/// The steady-path allocation audit (see module docs).
fn assert_zero_transient_allocations() {
    let blocks = corpus_text();
    // Warm-up: populates the thread-local intern arena.
    let kernels = parse_pass(&blocks);
    let (_, clone_allocs, clone_bytes) = counted(|| kernels.clone());
    let (_, pass2_allocs, pass2_bytes) = counted(|| parse_pass(&blocks));
    let (_, pass3_allocs, pass3_bytes) = counted(|| parse_pass(&blocks));
    eprintln!(
        "[pipeline_core] alloc audit over {} blocks: clone {} allocs / {} B, \
         steady parse {} allocs / {} B (then {} allocs / {} B)",
        blocks.len(),
        clone_allocs,
        clone_bytes,
        pass2_allocs,
        pass2_bytes,
        pass3_allocs,
        pass3_bytes,
    );
    assert_eq!(
        (pass2_allocs, pass2_bytes),
        (pass3_allocs, pass3_bytes),
        "steady-state parse passes must allocate identically — something transient accumulates"
    );
    // Materializing the output structures (deep clone) is the floor; the
    // steady parse may not exceed it by more than a constant per block
    // (arena scratch), i.e. zero *per-instruction* transient clones.
    let slack = 4 * blocks.len() as u64;
    assert!(
        pass2_allocs <= clone_allocs + slack,
        "steady parse allocates {pass2_allocs} vs clone {clone_allocs} (+{slack} slack) — \
         transient per-instruction heap churn is back"
    );
}

fn parse_throughput(c: &mut Criterion) {
    let blocks = corpus_text();
    let insts: usize = parse_pass(&blocks)
        .iter()
        .map(|k| k.instructions.len())
        .sum();
    let mut g = c.benchmark_group("pipeline_core");
    g.sample_size(20);
    g.bench_function(format!("parse/{insts}-insts"), |b| {
        b.iter(|| parse_pass(&blocks).len())
    });
    g.finish();
}

criterion_group!(benches, parse_throughput);

fn main() {
    benches();
    assert_zero_transient_allocations();
    let limit = std::env::var("BENCH_PIPELINE_LIMIT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let report = bench::pipelinebench::run(limit);
    eprintln!(
        "[pipeline_core] {} {} blocks, byte_identical: {}, peak RSS {:?} kB",
        report.arch, report.blocks, report.byte_identical, report.peak_rss_kb,
    );
    for r in &report.threads {
        eprintln!(
            "[pipeline_core]   {} thread(s): baseline {:>8.1}/s, batch {:>8.1}/s, \
             cold {:>8.1}/s ({:.2}x baseline), warm {:>8.1}/s ({:.2}x cold)",
            r.threads,
            r.baseline_kernels_per_sec,
            r.batch_kernels_per_sec,
            r.cold_kernels_per_sec,
            r.cold_speedup_vs_baseline,
            r.warm_kernels_per_sec,
            r.warm_speedup_vs_cold,
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, report.to_json()).expect("write BENCH_pipeline.json");
    eprintln!("[pipeline_core] wrote {path}");
    assert!(
        report.byte_identical,
        "pipeline paths diverged — streaming/caching may not change report bytes"
    );
    // The acceptance gates only bind on the full corpus: tiny smoke
    // corpora (CI) are noise-dominated, so gate on ≥ one grid pass.
    let grid = kernels::variants_for(uarch::Arch::GoldenCove).len();
    if report.blocks >= grid {
        for r in &report.threads {
            assert!(
                r.cold_speedup_vs_baseline >= 2.0,
                "cold pipeline must be ≥2x the pre-PR validate path at {} thread(s): {:.2}x",
                r.threads,
                r.cold_speedup_vs_baseline
            );
            assert!(
                r.warm_speedup_vs_cold >= 10.0,
                "warm cache replay must be ≥10x cold at {} thread(s): {:.2}x",
                r.threads,
                r.warm_speedup_vs_cold
            );
            assert_eq!(
                (r.warm_disk_hits, r.warm_disk_misses),
                (report.blocks as u64, 0),
                "warm run must replay every block from disk"
            );
        }
    }
}
