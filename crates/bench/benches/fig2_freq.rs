//! Fig. 2 — sustained-frequency sweep over cores and ISA extensions.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_freq");
    for m in uarch::all_machines() {
        g.bench_function(m.arch.chip(), |b| {
            b.iter(|| node::fig2_sweep(std::hint::black_box(&m)))
        });
    }
    g.finish();
    eprintln!("{}", bench::tables::render_fig2());
}

criterion_group!(benches, bench);
criterion_main!(benches);
