//! Simulator-core benchmark: Criterion timings for representative
//! kernels on both engines, then a full-corpus comparison written to
//! `BENCH_sim.json` at the repository root (see `bench::simbench`).
//!
//! `BENCH_SIM_LIMIT=<n>` caps the corpus at n variants per machine —
//! CI uses this for a quick smoke run; local `cargo bench --bench
//! sim_core` measures the whole corpus.

use criterion::{criterion_group, Criterion};

fn representative_kernels(c: &mut Criterion) {
    let m = uarch::Machine::golden_cove();
    for kernel in [
        kernels::StreamKernel::StreamTriad,
        kernels::StreamKernel::Jacobi3D27,
    ] {
        let v = kernels::Variant {
            kernel,
            compiler: kernels::Compiler::Icx,
            opt: kernels::OptLevel::O3,
            arch: m.arch,
        };
        let k = kernels::generate_kernel(&v, &m);
        let mut g = c.benchmark_group(format!("sim_core/{}", v.kernel.name()));
        g.sample_size(10);
        let mut scratch = exec::SimScratch::default();
        g.bench_function("event", |b| {
            b.iter(|| {
                exec::simulate_with_scratch(&m, &k, exec::SimConfig::default(), &mut scratch)
                    .cycles_per_iter
            })
        });
        let ref_cfg = exec::SimConfig {
            reference: true,
            ..Default::default()
        };
        g.bench_function("reference", |b| {
            b.iter(|| exec::simulate(&m, &k, ref_cfg).cycles_per_iter)
        });
        g.finish();
    }
}

criterion_group!(benches, representative_kernels);

fn main() {
    benches();
    let limit = std::env::var("BENCH_SIM_LIMIT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let report = bench::simbench::run(limit);
    eprintln!(
        "[sim_core] {} blocks: event {:.1} ms vs reference {:.1} ms — {:.1}x speedup, \
         {} early exits, equivalent: {}",
        report.blocks,
        report.event_ms,
        report.reference_ms,
        report.speedup,
        report.early_exit_blocks,
        report.equivalent,
    );
    for r in &report.machines {
        eprintln!(
            "[sim_core]   {:<6} {:<12} {:>3} blocks: {:>8.1} ms vs {:>8.1} ms ({:.1}x, {} early exits)",
            r.chip, r.arch, r.blocks, r.event_ms, r.reference_ms, r.speedup, r.early_exit_blocks
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, report.to_json()).expect("write BENCH_sim.json");
    eprintln!("[sim_core] wrote {path}");
    assert!(
        report.equivalent,
        "event engine diverged from the reference engine on the corpus"
    );
}
