//! Dataflow-extraction benchmark with micro-asserts: time
//! `isa::dataflow::dataflow` over every instruction of the full corpus,
//! and assert on the way that the extracted effect sets are bounded and
//! alias-deduplicated — the contract the small-vec dedupe in
//! `Dataflow::read`/`write` exists to keep. A regression that reintroduces
//! duplicate alias entries (or quadratic blowup via unbounded sets) fails
//! the assert before it shows up as a timing drift.

use criterion::{criterion_group, Criterion};
use isa::dataflow::dataflow;

/// No instruction in either ISA legitimately touches more registers than
/// this; a larger set means the dedupe failed and aliases piled up.
const MAX_EFFECTS: usize = 12;

/// The corpus, generated and parsed once: (chip, kernel) per variant.
fn corpus() -> Vec<(&'static str, isa::Kernel)> {
    uarch::all_machines()
        .iter()
        .flat_map(|m| {
            kernels::variants_for(m.arch)
                .into_iter()
                .map(|v| (m.arch.chip(), kernels::generate_kernel(&v, m)))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Extract dataflow for every instruction, asserting the effect-set
/// invariants, and return a checksum so the work cannot be optimized out.
fn sweep(blocks: &[(&str, isa::Kernel)]) -> usize {
    let mut total = 0usize;
    for (chip, kernel) in blocks {
        for inst in &kernel.instructions {
            let f = dataflow(inst);
            assert!(
                f.reads.len() <= MAX_EFFECTS && f.writes.len() <= MAX_EFFECTS,
                "{chip}: {} reads {} / writes {} — dedupe regressed",
                inst.raw,
                f.reads.len(),
                f.writes.len()
            );
            for (i, a) in f.reads.iter().enumerate() {
                for b in &f.reads[i + 1..] {
                    assert!(
                        !a.aliases(b),
                        "{chip}: duplicate read alias in {}",
                        inst.raw
                    );
                }
            }
            for (i, a) in f.writes.iter().enumerate() {
                for b in &f.writes[i + 1..] {
                    assert!(
                        !a.aliases(b),
                        "{chip}: duplicate write alias in {}",
                        inst.raw
                    );
                }
            }
            total += f.reads.len() + f.writes.len();
        }
    }
    total
}

fn dataflow_extraction(c: &mut Criterion) {
    let blocks = corpus();
    let insts: usize = blocks.iter().map(|(_, k)| k.instructions.len()).sum();
    let mut g = c.benchmark_group("dataflow_core");
    g.sample_size(20);
    g.bench_function(format!("extract/{insts}-insts"), |b| {
        b.iter(|| sweep(&blocks))
    });
    g.finish();
}

criterion_group!(benches, dataflow_extraction);

fn main() {
    benches();
    // One audited pass outside the timing loop so the invariants hold
    // even when the bench is run with a sampling profile that skips work.
    let blocks = corpus();
    let effects = sweep(&blocks);
    eprintln!(
        "[dataflow_core] {} blocks, {} effects extracted — alias sets bounded and deduplicated",
        blocks.len(),
        effects
    );
}
