//! Memory-hierarchy benchmark: Criterion timings for one representative
//! store stream (fast streaming path vs. per-access reference), then the
//! full Fig. 4 sweep comparison written to `BENCH_memhier.json` at the
//! repository root (see `bench::membench`).
//!
//! `BENCH_MEMHIER_LIMIT=<n>` caps the sweep at n core counts per machine
//! — CI uses this for a quick smoke run; local `cargo bench --bench
//! memhier_core` measures the whole Fig. 4 sweep.

use criterion::{criterion_group, Criterion};
use memhier::{Hierarchy, MemScratch, StreamConfig, StreamPattern};

fn representative_stream(c: &mut Criterion) {
    let m = uarch::Machine::golden_cove();
    let mut h = Hierarchy::from_machine(&m, m.cores);
    let line = h.line_bytes();
    let slice_bytes: u64 = m
        .caches
        .iter()
        .map(|cc| {
            if cc.shared {
                cc.size_kib * 1024 / m.cores as u64
            } else {
                cc.size_kib * 1024
            }
        })
        .sum();
    let lines = (4 * slice_bytes).max(8 << 20) / line;
    let p = StreamPattern::store_lines(line, lines);
    let mut scratch = MemScratch::default();
    let mut g = c.benchmark_group("memhier_core/spr_store_stream");
    g.sample_size(10);
    g.bench_function("fast", |b| {
        b.iter(|| {
            h.reset();
            h.access_stream_with_scratch(p, StreamConfig::default(), &mut scratch);
            h.flush();
            h.mem.write_bytes
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            h.reset();
            h.access_stream_with_scratch(p, StreamConfig::reference(), &mut scratch);
            h.flush();
            h.mem.write_bytes
        })
    });
    g.finish();
}

criterion_group!(benches, representative_stream);

fn main() {
    benches();
    let limit = std::env::var("BENCH_MEMHIER_LIMIT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let report = bench::membench::run(limit);
    eprintln!(
        "[memhier_core] {} sweep points: fast {:.1} ms vs reference {:.1} ms — {:.1}x speedup, \
         parallel sweep {:.1} ms, equivalent: {}",
        report.points,
        report.fast_ms,
        report.reference_ms,
        report.speedup,
        report.parallel_sweep_ms,
        report.equivalent,
    );
    for r in &report.machines {
        eprintln!(
            "[memhier_core]   {:<6} {:<12} {:>3} points: {:>8.1} ms vs {:>8.1} ms ({:.1}x, {} accesses extrapolated)",
            r.chip, r.arch, r.points, r.fast_ms, r.reference_ms, r.speedup, r.extrapolated_accesses
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_memhier.json");
    std::fs::write(path, report.to_json()).expect("write BENCH_memhier.json");
    eprintln!("[memhier_core] wrote {path}");
    assert!(
        report.equivalent,
        "streaming fast path diverged from the per-access reference on the Fig. 4 sweep"
    );
}
