//! Tracked memory-hierarchy benchmark: times the streaming fast path
//! (steady-state extrapolation + hoisted bases + pooled hierarchies)
//! against the original per-access reference pipeline over the full
//! Fig. 4 sweep, checking bit-exact agreement while doing so. It also
//! verifies that the parallel Fig. 4 / Table I / ECM sweeps are
//! byte-identical to single-threaded runs. The `memhier_core` bench
//! target runs this and writes the report to `BENCH_memhier.json` at
//! the repository root, so the speedup is recorded alongside the code
//! that produced it (same schema style as `BENCH_sim.json`).

use memhier::storebench::{self, SweepScratch};
use memhier::{StoreKind, StorePoint, StreamConfig};
use serde::Serialize;
use std::time::Instant;

/// Per-machine timing row.
#[derive(Debug, Clone, Serialize)]
pub struct MachineRow {
    pub chip: &'static str,
    pub arch: &'static str,
    /// Sweep points (core counts × store kinds).
    pub points: usize,
    pub fast_ms: f64,
    pub reference_ms: f64,
    pub speedup: f64,
    /// Stream accesses whose effect the fast pass applied in closed form.
    pub extrapolated_accesses: u64,
}

/// The whole report, serialized to `BENCH_memhier.json`.
#[derive(Debug, Clone, Serialize)]
pub struct MemBenchReport {
    pub schema_version: u32,
    pub points: usize,
    pub fast_ms: f64,
    pub reference_ms: f64,
    pub speedup: f64,
    /// Wall clock of the whole Fig. 4 sweep fanned out on the rayon pool
    /// (fast path, default thread count).
    pub parallel_sweep_ms: f64,
    /// Every sweep point was bit-identical between fast and reference
    /// pipelines, and every parallel sweep (Fig. 4, Table I, ECM) was
    /// byte-identical to its single-threaded run.
    pub equivalent: bool,
    pub machines: Vec<MachineRow>,
}

impl MemBenchReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

fn bits(p: &StorePoint) -> (u32, u64, u64) {
    (p.cores, p.ratio.to_bits(), p.utilization.to_bits())
}

fn counts_for(m: &uarch::Machine, limit: Option<usize>) -> Vec<u32> {
    let mut c = storebench::fig4_core_counts(m);
    if let Some(n) = limit {
        c.truncate(n);
    }
    c
}

/// Run the benchmark over the Fig. 4 sweep (optionally the first `limit`
/// core counts per machine, for smoke runs): fast pipeline vs. the
/// per-count per-access reference pipeline, then the parallel sweeps
/// against their single-threaded twins.
pub fn run(limit: Option<usize>) -> MemBenchReport {
    let machines = uarch::all_machines();
    let mut rows = Vec::new();
    let mut equivalent = true;
    for m in &machines {
        let counts = counts_for(m, limit);
        let mut kinds = vec![StoreKind::Standard];
        if storebench::nt_applicable(m.arch) {
            kinds.push(StoreKind::NonTemporal);
        }
        let mut scratch = SweepScratch::default();
        // Warm the hierarchy pool and snapshot buffers so the timed fast
        // pass measures streaming, not first-touch allocation.
        for &k in &kinds {
            std::hint::black_box(storebench::sweep_points(
                m,
                &counts,
                k,
                StreamConfig::default(),
                &mut scratch,
            ));
        }
        let start = Instant::now();
        let mut extrapolated = 0u64;
        let fast: Vec<Vec<StorePoint>> = kinds
            .iter()
            .map(|&k| {
                let pts =
                    storebench::sweep_points(m, &counts, k, StreamConfig::default(), &mut scratch);
                extrapolated += scratch.last_outcome.extrapolated;
                pts
            })
            .collect();
        let fast_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let reference: Vec<Vec<StorePoint>> = kinds
            .iter()
            .map(|&k| {
                counts
                    .iter()
                    .map(|&n| {
                        let mut s = SweepScratch::default();
                        storebench::store_traffic_ratio_with(
                            m,
                            n,
                            k,
                            StreamConfig::reference(),
                            &mut s,
                        )
                    })
                    .collect()
            })
            .collect();
        let reference_ms = start.elapsed().as_secs_f64() * 1e3;
        for (f, r) in fast.iter().flatten().zip(reference.iter().flatten()) {
            if bits(f) != bits(r) {
                equivalent = false;
            }
        }
        rows.push(MachineRow {
            chip: m.arch.chip(),
            arch: m.arch.label(),
            points: counts.len() * kinds.len(),
            fast_ms,
            reference_ms,
            speedup: reference_ms / fast_ms.max(1e-9),
            extrapolated_accesses: extrapolated,
        });
    }

    // The parallel sweeps must be byte-identical to single-threaded runs.
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool builds");
    let counts: Vec<Vec<u32>> = machines.iter().map(|m| counts_for(m, limit)).collect();
    let start = Instant::now();
    let fig4_par = storebench::fig4_full_with(&machines, &counts, StreamConfig::default());
    let parallel_sweep_ms = start.elapsed().as_secs_f64() * 1e3;
    let fig4_one =
        one.install(|| storebench::fig4_full_with(&machines, &counts, StreamConfig::default()));
    if serde_json::to_string(&fig4_par).expect("serializes")
        != serde_json::to_string(&fig4_one).expect("serializes")
    {
        equivalent = false;
    }
    if crate::tables::render_table1() != one.install(crate::tables::render_table1) {
        equivalent = false;
    }
    let ecm_par = serde_json::to_string(&node::ecm::triad_ecm_rows(&machines)).expect("serializes");
    let ecm_one = one.install(|| {
        serde_json::to_string(&node::ecm::triad_ecm_rows(&machines)).expect("serializes")
    });
    if ecm_par != ecm_one {
        equivalent = false;
    }

    let points = rows.iter().map(|r| r.points).sum();
    let fast_ms: f64 = rows.iter().map(|r| r.fast_ms).sum();
    let reference_ms: f64 = rows.iter().map(|r| r.reference_ms).sum();
    MemBenchReport {
        schema_version: 1,
        points,
        fast_ms,
        reference_ms,
        speedup: reference_ms / fast_ms.max(1e-9),
        parallel_sweep_ms,
        equivalent,
        machines: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_equivalent_and_covers_all_machines() {
        let report = run(Some(2));
        assert!(report.equivalent, "fast pipeline diverged from reference");
        assert_eq!(report.machines.len(), uarch::all_machines().len());
        // Standard sweeps must actually have extrapolated (the NT closed
        // form bypasses the stream driver).
        for r in &report.machines {
            assert!(
                r.extrapolated_accesses > 0,
                "{}: steady state never detected",
                r.chip
            );
        }
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("schema_version").unwrap().as_f64().unwrap(), 1.0);
        assert!(o.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }
}
