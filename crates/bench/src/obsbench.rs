//! Tracked observability-overhead benchmark: runs the corpus validation
//! pipeline with the `obs` recorder disabled (twice, checking the report
//! is byte-identical across runs) and enabled (checking the report does
//! not change at all when the recorder is on), and times both so the
//! disabled-path overhead stays visible. The `obs_core` bench target
//! runs this and writes the report to `BENCH_obs.json` at the
//! repository root.

use serde::Serialize;
use std::time::Instant;

/// The whole report, serialized to `BENCH_obs.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ObsBenchReport {
    pub schema_version: u32,
    /// Corpus blocks evaluated per run.
    pub blocks: usize,
    /// Wall-clock of a validation run with the recorder disabled (ms).
    pub disabled_ms: f64,
    /// Wall-clock of the same run with the recorder enabled (ms).
    pub enabled_ms: f64,
    /// `(enabled - disabled) / disabled`, in percent. Includes the cost
    /// of actually collecting every counter, span, and histogram — the
    /// disabled-path cost (one relaxed atomic load per hot call) is not
    /// separable from run-to-run noise.
    pub overhead_pct: f64,
    /// Two recorder-disabled runs serialize byte-identically (timings
    /// zeroed, as in the engine determinism test).
    pub disabled_runs_identical: bool,
    /// The recorder-enabled run serializes byte-identically to the
    /// disabled runs: observation never leaks into results.
    pub enabled_output_identical: bool,
    /// Counters the enabled run actually recorded (sanity: nonzero).
    pub profile_counters: usize,
    /// Spans the enabled run actually recorded.
    pub profile_spans: usize,
}

impl ObsBenchReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

/// One validation run; returns the timings-zeroed JSON (the stable,
/// thread-invariant part of the report), the block count, and the
/// wall-clock in milliseconds.
fn run_once(limit: Option<usize>) -> (String, usize, f64) {
    let mut session = engine::Session::new().threads(1);
    if let Some(n) = limit {
        session = session.limit(n);
    }
    let start = Instant::now();
    let mut report = session.run().expect("corpus validation runs");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let blocks = report.records.len();
    report.timings = engine::RunTimings::default();
    (report.to_json(), blocks, ms)
}

/// Run the benchmark (optionally capped at `limit` blocks per machine
/// for smoke runs): two recorder-disabled validation passes and one
/// recorder-enabled pass over the same corpus.
pub fn run(limit: Option<usize>) -> ObsBenchReport {
    obs::disable();
    let _ = obs::take();
    // Warm-up pass: parse caches, allocator, thread pool.
    let (baseline, blocks, _) = run_once(limit);
    let (second, _, disabled_ms) = run_once(limit);
    obs::enable();
    let (enabled, _, enabled_ms) = run_once(limit);
    let profile = obs::take();
    obs::disable();
    ObsBenchReport {
        schema_version: 1,
        blocks,
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms - disabled_ms) / disabled_ms.max(1e-9) * 100.0,
        disabled_runs_identical: baseline == second,
        enabled_output_identical: enabled == baseline,
        profile_counters: profile.counters.len(),
        profile_spans: profile.spans.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_state_never_changes_validation_output() {
        let report = run(Some(4));
        assert!(report.blocks >= 4);
        assert!(
            report.disabled_runs_identical,
            "validation output drifted between identical runs"
        );
        assert!(
            report.enabled_output_identical,
            "enabling the obs recorder changed the validation output"
        );
        assert!(report.profile_counters > 0, "enabled run recorded nothing");
        assert!(report.profile_spans > 0, "enabled run recorded no spans");
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("schema_version").unwrap().as_f64().unwrap(), 1.0);
        assert!(o.get("disabled_ms").unwrap().as_f64().unwrap() > 0.0);
    }
}
