//! Text renderers for the paper's tables and figures.
//!
//! The heavy renders (Table I rows, the Fig. 4 write-allocate sweep) fan
//! out on the vendored rayon pool; the pool's map is order-preserving,
//! so output is byte-identical at every thread count.

use rayon::prelude::*;
use std::fmt::Write;

/// Table I — node comparison.
pub fn render_table1() -> String {
    let machines = uarch::all_machines();
    let rows: Vec<node::Table1Row> = machines.par_iter().map(node::table1_row).collect();
    let mut s = String::new();
    let _ = writeln!(s, "Table I — node comparison");
    let _ = writeln!(
        s,
        "{:<28} {:>12} {:>12} {:>12}",
        "", rows[0].chip, rows[1].chip, rows[2].chip
    );
    let line = |s: &mut String, label: &str, f: &dyn Fn(&node::Table1Row) -> String| {
        let _ = writeln!(
            s,
            "{label:<28} {:>12} {:>12} {:>12}",
            f(&rows[0]),
            f(&rows[1]),
            f(&rows[2])
        );
    };
    line(&mut s, "Cores", &|r| r.cores.to_string());
    line(&mut s, "Frequency (max/base) [GHz]", &|r| {
        format!("{:.1}/{:.2}", r.freq_max_ghz, r.freq_base_ghz)
    });
    line(&mut s, "Theor. DP peak [Tflop/s]", &|r| {
        format!("{:.2}", r.theor_peak_tflops)
    });
    line(&mut s, "Achiev. DP peak [Tflop/s]", &|r| {
        format!("{:.2}", r.achieved_peak_tflops)
    });
    line(&mut s, "TDP [W]", &|r| format!("{:.0}", r.tdp_w));
    line(&mut s, "L1/L2 [KiB], L3 [MiB]", &|r| {
        format!("{}/{}/{}", r.l1_kib, r.l2_kib, r.l3_mib)
    });
    line(&mut s, "Main memory [GB]", &|r| {
        format!("{} {}", r.mem_gb, r.mem_type)
    });
    line(&mut s, "ccNUMA domains", &|r| r.numa_domains.to_string());
    line(&mut s, "Mem BW theor. [GB/s]", &|r| {
        format!("{:.0}", r.theor_bw_gbs)
    });
    line(&mut s, "Mem BW measured [GB/s]", &|r| {
        format!("{:.0}", r.measured_bw_gbs)
    });
    s
}

/// Table II — in-core features.
pub fn render_table2() -> String {
    let rows: Vec<uarch::machine::Table2Row> = uarch::all_machines()
        .iter()
        .map(|m| m.table2_row())
        .collect();
    let mut s = String::new();
    let _ = writeln!(s, "Table II — in-core features and port models");
    let _ = writeln!(
        s,
        "{:<18} {:>14} {:>14} {:>14}",
        "", rows[0].uarch, rows[1].uarch, rows[2].uarch
    );
    let line = |s: &mut String, label: &str, f: &dyn Fn(&uarch::machine::Table2Row) -> String| {
        let _ = writeln!(
            s,
            "{label:<18} {:>14} {:>14} {:>14}",
            f(&rows[0]),
            f(&rows[1]),
            f(&rows[2])
        );
    };
    line(&mut s, "Number of ports", &|r| r.num_ports.to_string());
    line(&mut s, "SIMD width [B]", &|r| {
        r.simd_width_bytes.to_string()
    });
    line(&mut s, "Int units", &|r| r.int_units.to_string());
    line(&mut s, "FP vector units", &|r| r.fp_vec_units.to_string());
    line(&mut s, "Loads/cy", &|r| {
        format!("{}x{}B", r.loads_per_cycle, r.load_width_bits / 8)
    });
    line(&mut s, "Stores/cy", &|r| {
        format!("{}x{}B", r.stores_per_cycle, r.store_width_bits / 8)
    });
    s
}

/// Table III — instruction throughput and latency.
pub fn render_table3() -> String {
    let cells = crate::ibench::table3();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table III — DP instruction throughput [elements/cy] and latency [cy]"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10}   {:>8} {:>8} {:>8}",
        "", "GCS", "SPR", "Genoa", "GCS", "SPR", "Genoa"
    );
    for instr in crate::ibench::Instr::ALL {
        let name = instr.name();
        let get = |chip: &str| {
            cells
                .iter()
                .find(|c| c.instr == name && c.chip == chip)
                .unwrap()
        };
        let (g, p, z) = (get("GCS"), get("SPR"), get("Genoa"));
        let _ = writeln!(
            s,
            "{name:<16} {:>10.2} {:>10.2} {:>10.2}   {:>8.1} {:>8.1} {:>8.1}",
            g.throughput, p.throughput, z.throughput, g.latency_cy, p.latency_cy, z.latency_cy
        );
    }
    s
}

/// Fig. 1 — the port-model block diagram (for any machine).
pub fn render_fig1(machine: &uarch::Machine) -> String {
    machine.port_model.render(&format!(
        "Fig. 1 — {} port model ({})",
        machine.arch.label(),
        machine.part
    ))
}

/// Fig. 2 — sustained frequency sweep.
pub fn render_fig2() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 2 — sustained clock frequency [GHz] vs. active cores"
    );
    for m in uarch::all_machines() {
        let _ = writeln!(s, "\n{} ({} cores):", m.arch.chip(), m.cores);
        for (ext, series) in node::fig2_sweep(&m) {
            let samples: Vec<String> = [1u32, 2, 4, 8, 13, 16, 26, 32, 52, 72, 96]
                .iter()
                .filter(|&&n| n <= m.cores)
                .map(|&n| format!("{n}:{:.2}", series[(n - 1) as usize].1))
                .collect();
            let _ = writeln!(s, "  {:<8} {}", ext.label(), samples.join("  "));
        }
    }
    s
}

/// Fig. 4 — write-allocate evasion sweep. All (machine × store kind)
/// tasks run concurrently on the rayon pool via
/// [`memhier::storebench::fig4_full`].
pub fn render_fig4() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 4 — memory traffic / stored volume vs. cores (store-only, 40 GB)"
    );
    let machines = uarch::all_machines();
    let sweeps = memhier::storebench::fig4_full(&machines, memhier::StreamConfig::default());
    for sw in &sweeps {
        let _ = writeln!(s, "\n{}:", sw.chip);
        for (i, p) in sw.standard.iter().enumerate() {
            let (n, std) = (p.cores, p.ratio);
            match &sw.nt {
                Some(nt) => {
                    let ntr = nt[i].ratio;
                    let _ = writeln!(s, "  cores {n:>3}: standard {std:.3}   NT stores {ntr:.3}");
                }
                None => {
                    let _ = writeln!(s, "  cores {n:>3}: standard {std:.3}");
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render_nonempty() {
        assert!(super::render_table1().contains("GCS"));
        assert!(super::render_table2().contains("Neoverse V2"));
        let m = uarch::Machine::neoverse_v2();
        assert!(super::render_fig1(&m).contains("17 issue ports"));
        assert!(super::render_fig2().contains("AVX-512"));
    }

    #[test]
    fn fig4_renders_all_machines() {
        let s = super::render_fig4();
        assert!(s.contains("GCS") && s.contains("SPR") && s.contains("Genoa"));
        assert!(s.contains("NT stores"));
    }
}
