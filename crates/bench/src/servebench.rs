//! Tracked throughput benchmark for `incore-cli serve`: a deterministic
//! load generator drives 1, 8, and 64 concurrent clients over corpus
//! kernels against an in-process server, checks every response
//! byte-identical to the single-shot `analyze --json` report, and
//! records requests/sec, p50/p99 round-trip latency, and the cache-hit
//! and coalesce rates. The `serve_core` bench target runs this and
//! writes the report to `BENCH_serve.json` at the repository root, so
//! the serving trajectory is recorded alongside the code that produced
//! it.
//!
//! Workload shape (per concurrency level, fresh server each):
//! 1. every client lands the *same* simulator-backed request at a
//!    barrier — on a cold server that is the coalescing window;
//! 2. each client then walks the corpus kernels twice, request/response
//!    lockstep, so the second pass replays from the response cache;
//! 3. an `overloaded` rejection is retried after the server's hint —
//!    the load generator honors the backpressure protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use cli::serve::{ServeOpts, ServerHandle};
use cli::{proto, AnalyzeFlags};
use serde::Serialize;

/// One concurrency level.
#[derive(Debug, Clone, Serialize)]
pub struct LevelRow {
    pub clients: usize,
    /// Analyze requests issued (excluding overload retries).
    pub requests: u64,
    /// Overload rejections observed (each was retried).
    pub overloaded: u64,
    pub wall_ms: f64,
    pub requests_per_sec: f64,
    /// Round-trip latency quantiles over all requests, microseconds.
    pub p50_us: u64,
    pub p99_us: u64,
    pub cache_hit_rate: f64,
    pub coalesce_rate: f64,
    pub coalesced: u64,
    pub response_hits: u64,
}

/// The whole report, serialized to `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    pub schema_version: u32,
    /// Distinct corpus kernels in the workload.
    pub kernels: usize,
    /// Every response matched the single-shot `analyze --json` bytes.
    pub byte_identical: bool,
    /// Aggregate cache-hit rate over all levels (response cache).
    pub cache_hit_rate: f64,
    /// Aggregate coalesce rate over all levels.
    pub coalesce_rate: f64,
    pub levels: Vec<LevelRow>,
}

impl ServeBenchReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

struct Workload {
    /// (label, asm, expected report bytes) per corpus kernel.
    kernels: Vec<(String, String, String)>,
    /// The barrier probe: identical across clients, simulator-backed.
    probe_frame: String,
    probe_expected: String,
}

fn analyze_frame(id: u64, label: &str, asm: &str, mca: bool, sim: bool) -> String {
    format!(
        "{{\"type\":\"analyze\",\"id\":{id},\"label\":{},\"asm\":{},\"arch\":\"spr\",\"mca\":{mca},\"sim\":{sim}}}\n",
        serde_json::to_string(&label.to_string()).expect("label serializes"),
        serde_json::to_string(&asm.to_string()).expect("asm serializes"),
    )
}

fn workload(limit: Option<usize>) -> Workload {
    let machine = uarch::Machine::golden_cove();
    let flags = AnalyzeFlags {
        mca: true,
        ..AnalyzeFlags::default()
    };
    let mut variants = kernels::variants_for(machine.arch);
    if let Some(n) = limit {
        variants.truncate(n);
    }
    let kernels = variants
        .iter()
        .map(|v| {
            let label = v.label();
            let asm = kernels::generate(v, &machine);
            let expected = cli::analyze_report_json(&machine, &label, &asm, flags)
                .expect("corpus kernel analyzes")
                .trim_end()
                .to_string();
            (label, asm, expected)
        })
        .collect::<Vec<_>>();
    let probe_label = "coalesce-probe";
    let probe_asm = &kernels[0].1;
    let probe_flags = AnalyzeFlags {
        sim: true,
        ..AnalyzeFlags::default()
    };
    let probe_expected = cli::analyze_report_json(&machine, probe_label, probe_asm, probe_flags)
        .expect("probe analyzes")
        .trim_end()
        .to_string();
    let probe_frame = analyze_frame(u64::MAX >> 1, probe_label, probe_asm, false, true);
    Workload {
        kernels,
        probe_frame,
        probe_expected,
    }
}

/// Send one frame and read responses until the request's response
/// arrives, retrying on overload. Returns (report bytes, retries).
fn request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    frame: &str,
) -> (String, u64) {
    let mut retries = 0;
    loop {
        stream.write_all(frame.as_bytes()).expect("write request");
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read response") > 0,
            "server closed mid-benchmark"
        );
        if let Some(report) = proto::extract_report(&line) {
            return (report.to_string(), retries);
        }
        let v: serde_json::Value = serde_json::from_str(line.trim_end()).expect("response parses");
        let kind = v
            .as_object()
            .and_then(|o| o.get("error"))
            .and_then(|e| e.as_object())
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str())
            .unwrap_or("?")
            .to_string();
        assert_eq!(kind, "overloaded", "unexpected failure: {line}");
        retries += 1;
        assert!(retries < 1000, "server never shed its overload");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

fn run_level(work: &Workload, clients: usize) -> (LevelRow, bool) {
    let server = ServerHandle::start(ServeOpts {
        queue: 256,
        cache: 4096,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let barrier = Barrier::new(clients);
    let latencies = Mutex::new(obs::Histogram::default());
    let requests = AtomicU64::new(0);
    let retries_total = AtomicU64::new(0);
    let identical = AtomicU64::new(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let (barrier, latencies, requests, retries_total, identical) =
                (&barrier, &latencies, &requests, &retries_total, &identical);
            s.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let record = |report: &str, expected: &str, t0: Instant, retries: u64| {
                    requests.fetch_add(1, Ordering::Relaxed);
                    retries_total.fetch_add(retries, Ordering::Relaxed);
                    if report != expected {
                        identical.store(0, Ordering::Relaxed);
                    }
                    let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    latencies
                        .lock()
                        .expect("latency histogram poisoned")
                        .record(us);
                };
                // The coalescing window: everyone fires the identical
                // simulator-backed request at once against a cold cache.
                barrier.wait();
                let t0 = Instant::now();
                let (report, retries) = request(&mut stream, &mut reader, &work.probe_frame);
                record(&report, &work.probe_expected, t0, retries);
                // Two corpus passes, shuffled per client by rotation;
                // the second pass replays from the response cache.
                let n = work.kernels.len();
                for pass in 0..2 {
                    for i in 0..n {
                        let k = (i + c * 7 + pass * 3) % n;
                        let (label, asm, expected) = &work.kernels[k];
                        let frame = analyze_frame(k as u64, label, asm, true, false);
                        let t0 = Instant::now();
                        let (report, retries) = request(&mut stream, &mut reader, &frame);
                        record(&report, expected, t0, retries);
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let summary = server.shutdown().expect("graceful drain");
    let h = latencies.into_inner().expect("latency histogram poisoned");
    let requests = requests.into_inner();
    let lookups = summary.response_hits + summary.response_misses;
    let row = LevelRow {
        clients,
        requests,
        overloaded: retries_total.into_inner(),
        wall_ms,
        requests_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
        p50_us: h.quantile(0.50),
        p99_us: h.quantile(0.99),
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            summary.response_hits as f64 / lookups as f64
        },
        coalesce_rate: if summary.analyze == 0 {
            0.0
        } else {
            summary.coalesced as f64 / summary.analyze as f64
        },
        coalesced: summary.coalesced,
        response_hits: summary.response_hits,
    };
    (row, identical.into_inner() == 1)
}

/// Run the load generator at every concurrency level. `limit` caps the
/// corpus kernels per pass (smoke runs); `None` is the full corpus.
pub fn run(limit: Option<usize>) -> ServeBenchReport {
    let work = workload(limit);
    let mut levels = Vec::new();
    let mut byte_identical = true;
    for clients in [1usize, 8, 64] {
        let (row, identical) = run_level(&work, clients);
        byte_identical &= identical;
        levels.push(row);
    }
    let total: u64 = levels.iter().map(|l| l.requests).sum();
    let hits: u64 = levels.iter().map(|l| l.response_hits).sum();
    let coalesced: u64 = levels.iter().map(|l| l.coalesced).sum();
    ServeBenchReport {
        schema_version: 1,
        kernels: work.kernels.len(),
        byte_identical,
        cache_hit_rate: hits as f64 / (total as f64).max(1.0),
        coalesce_rate: coalesced as f64 / (total as f64).max(1.0),
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_byte_identical_and_shares_work() {
        let report = run(Some(3));
        assert!(
            report.byte_identical,
            "served bytes diverged from analyze --json"
        );
        assert_eq!(report.levels.len(), 3);
        assert_eq!(
            report.levels.iter().map(|l| l.clients).collect::<Vec<_>>(),
            vec![1, 8, 64]
        );
        for l in &report.levels {
            // probe + two passes over 3 kernels per client
            assert_eq!(l.requests, (l.clients * 7) as u64);
            assert!(l.requests_per_sec > 0.0);
            assert!(l.p99_us >= l.p50_us);
        }
        assert!(report.cache_hit_rate > 0.0, "{report:?}");
        assert!(report.coalesce_rate > 0.0, "{report:?}");
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("schema_version")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
