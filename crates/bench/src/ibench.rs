//! Instruction micro-benchmarks (Table III) in the style of ibench /
//! OoO-bench: throughput loops of independent instructions and latency
//! loops of serial chains, executed on the cycle-level core simulator.

use serde::Serialize;
use uarch::{Arch, Machine};

/// The instruction classes of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    Gather,
    VecAdd,
    VecMul,
    VecFma,
    VecDiv,
    ScalarAdd,
    ScalarMul,
    ScalarFma,
    ScalarDiv,
}

impl Instr {
    pub const ALL: [Instr; 9] = [
        Instr::Gather,
        Instr::VecAdd,
        Instr::VecMul,
        Instr::VecFma,
        Instr::VecDiv,
        Instr::ScalarAdd,
        Instr::ScalarMul,
        Instr::ScalarFma,
        Instr::ScalarDiv,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Instr::Gather => "gather [CL/cy]",
            Instr::VecAdd => "VEC ADD",
            Instr::VecMul => "VEC MUL",
            Instr::VecFma => "VEC FMA",
            Instr::VecDiv => "VEC FP Div",
            Instr::ScalarAdd => "Scalar ADD",
            Instr::ScalarMul => "Scalar MUL",
            Instr::ScalarFma => "Scalar FMA",
            Instr::ScalarDiv => "Scalar Div",
        }
    }
}

/// Vector register name at the Table III width for a machine (the paper
/// picks the best-performing width: zmm on SPR, ymm on Genoa, NEON on GCS).
fn vec_name(m: &Machine, i: usize) -> String {
    match m.arch {
        Arch::GoldenCove => format!("%zmm{i}"),
        Arch::Zen4 => format!("%ymm{i}"),
        Arch::NeoverseV2 => format!("v{i}.2d"),
    }
}

/// DP lanes at the benchmarked width.
fn lanes(m: &Machine) -> f64 {
    match m.arch {
        Arch::GoldenCove => 8.0,
        Arch::Zen4 => 4.0,
        Arch::NeoverseV2 => 2.0,
    }
}

/// Cache lines touched by one gather at the benchmarked width (worst-case
/// stride: one line per element).
fn gather_lines(m: &Machine) -> f64 {
    lanes(m)
}

/// One x86/AArch64 arithmetic instruction with explicit dest/sources.
fn arith(m: &Machine, instr: Instr, dst: &str, a: &str, b: &str) -> String {
    let x86 = m.isa == isa::Isa::X86;
    match instr {
        Instr::VecAdd => {
            if x86 {
                format!("vaddpd {a}, {b}, {dst}")
            } else {
                format!("fadd {dst}, {a}, {b}")
            }
        }
        Instr::VecMul => {
            if x86 {
                format!("vmulpd {a}, {b}, {dst}")
            } else {
                format!("fmul {dst}, {a}, {b}")
            }
        }
        Instr::VecFma => {
            if x86 {
                format!("vfmadd231pd {a}, {b}, {dst}")
            } else {
                format!("fmla {dst}, {a}, {b}")
            }
        }
        Instr::VecDiv => {
            if x86 {
                format!("vdivpd {a}, {b}, {dst}")
            } else {
                format!("fdiv {dst}, {a}, {b}")
            }
        }
        Instr::ScalarAdd => {
            if x86 {
                format!("vaddsd {a}, {b}, {dst}")
            } else {
                format!("fadd {dst}, {a}, {b}")
            }
        }
        Instr::ScalarMul => {
            if x86 {
                format!("vmulsd {a}, {b}, {dst}")
            } else {
                format!("fmul {dst}, {a}, {b}")
            }
        }
        Instr::ScalarFma => {
            if x86 {
                format!("vfmadd231sd {a}, {b}, {dst}")
            } else {
                format!("fmadd {dst}, {a}, {b}, {dst}")
            }
        }
        Instr::ScalarDiv => {
            if x86 {
                format!("vdivsd {a}, {b}, {dst}")
            } else {
                format!("fdiv {dst}, {a}, {b}")
            }
        }
        Instr::Gather => unreachable!("gather handled separately"),
    }
}

fn reg(m: &Machine, instr: Instr, i: usize) -> String {
    let scalar = matches!(
        instr,
        Instr::ScalarAdd | Instr::ScalarMul | Instr::ScalarFma | Instr::ScalarDiv
    );
    match (m.isa, scalar) {
        (isa::Isa::X86, true) => format!("%xmm{i}"),
        (isa::Isa::X86, false) => vec_name(m, i),
        (isa::Isa::AArch64, true) => format!("d{i}"),
        (isa::Isa::AArch64, false) => vec_name(m, i),
    }
}

fn loop_tail(m: &Machine) -> &'static str {
    match m.isa {
        isa::Isa::X86 => "    subq $1, %rax\n    jne .L0\n",
        isa::Isa::AArch64 => "    subs x5, x5, #1\n    b.ne .L0\n",
    }
}

fn gather_inst(m: &Machine, dst: usize) -> String {
    match m.arch {
        Arch::GoldenCove => {
            format!("    vgatherdpd (%rsi,%ymm12,8), %zmm{dst}{{%k1}}\n")
        }
        Arch::Zen4 => format!("    vgatherdpd (%rsi,%xmm12,8), %ymm{dst}{{%k1}}\n"),
        Arch::NeoverseV2 => format!("    ld1d {{z{dst}.d}}, p0/z, [x1, z12.d, lsl #3]\n"),
    }
}

/// Throughput microbenchmark: `streams` independent instructions per loop
/// iteration. Returns instructions per cycle.
pub fn instruction_throughput(m: &Machine, instr: Instr) -> f64 {
    let streams = 10usize;
    let mut asm = String::from(".L0:\n");
    if instr == Instr::Gather {
        for i in 0..4 {
            asm.push_str(&gather_inst(m, i));
        }
        asm.push_str(loop_tail(m));
        let k = isa::parse_kernel(&asm, m.isa).expect("gather bench parses");
        let cy = exec::cycles_per_iteration(m, &k);
        return 4.0 / cy;
    }
    for i in 0..streams {
        let dst = reg(m, instr, i);
        let a = reg(m, instr, 14);
        let b = reg(m, instr, 15);
        asm.push_str(&format!("    {}\n", arith(m, instr, &dst, &a, &b)));
    }
    asm.push_str(loop_tail(m));
    let k = isa::parse_kernel(&asm, m.isa).expect("tp bench parses");
    let cy = exec::cycles_per_iteration(m, &k);
    streams as f64 / cy
}

/// Latency microbenchmark: a serial chain through the destination. Returns
/// cycles per instruction (the dependency-limited latency).
pub fn instruction_latency(m: &Machine, instr: Instr) -> f64 {
    if instr == Instr::Gather {
        // The gather's load-to-use latency is not observable through a
        // register chain in this harness; report the model value, as the
        // paper's tables do for documented latencies.
        let k = isa::parse_kernel(&gather_inst(m, 0), m.isa).expect("gather parses");
        return m.describe(&k.instructions[0]).latency as f64;
    }
    let chain_len = 4usize;
    let mut asm = String::from(".L0:\n");
    for k in 0..chain_len {
        // Chain through a *source* operand (alternating two registers), not
        // the accumulator: accumulator chains measure special forwarding
        // paths (e.g. Neoverse V2's fast FMA accumulation), while the
        // paper's Table III reports the full input-to-output latency.
        let dst = reg(m, instr, k % 2);
        let a = reg(m, instr, (k + 1) % 2);
        let b = reg(m, instr, 15);
        asm.push_str(&format!("    {}\n", arith(m, instr, &dst, &a, &b)));
    }
    asm.push_str(loop_tail(m));
    let k = isa::parse_kernel(&asm, m.isa).expect("lat bench parses");
    let cy = exec::cycles_per_iteration(m, &k);
    cy / chain_len as f64
}

/// One Table III row for one machine.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Cell {
    pub instr: &'static str,
    pub chip: &'static str,
    /// DP elements per cycle (cache lines per cycle for the gather row).
    pub throughput: f64,
    pub latency_cy: f64,
}

/// Regenerate the full Table III.
pub fn table3() -> Vec<Table3Cell> {
    let mut out = Vec::new();
    for m in uarch::all_machines() {
        for instr in Instr::ALL {
            let tp_inst = instruction_throughput(&m, instr);
            let throughput = match instr {
                Instr::Gather => tp_inst * gather_lines(&m),
                Instr::VecAdd | Instr::VecMul | Instr::VecFma | Instr::VecDiv => {
                    tp_inst * lanes(&m)
                }
                _ => tp_inst,
            };
            out.push(Table3Cell {
                instr: instr.name(),
                chip: m.arch.chip(),
                throughput,
                latency_cy: instruction_latency(&m, instr),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::Machine;

    fn tp(m: &Machine, i: Instr) -> f64 {
        instruction_throughput(m, i)
    }
    fn lat(m: &Machine, i: Instr) -> f64 {
        instruction_latency(m, i)
    }

    #[test]
    fn glc_vec_fma_table3() {
        let m = Machine::golden_cove();
        // 2 FMA/cy at 8 lanes = 16 DP/cy; latency 4.
        let t = tp(&m, Instr::VecFma) * 8.0;
        assert!((t - 16.0).abs() < 1.5, "tp = {t}");
        let l = lat(&m, Instr::VecFma);
        assert!((l - 4.0).abs() < 0.3, "lat = {l}");
    }

    #[test]
    fn v2_scalar_add_table3() {
        let m = Machine::neoverse_v2();
        // 4 scalar FP adds/cy, latency 2.
        let t = tp(&m, Instr::ScalarAdd);
        assert!((t - 4.0).abs() < 0.5, "tp = {t}");
        let l = lat(&m, Instr::ScalarAdd);
        assert!((l - 2.0).abs() < 0.3, "lat = {l}");
    }

    #[test]
    fn zen4_vec_add_table3() {
        let m = Machine::zen4();
        // 2 ymm adds/cy = 8 DP/cy; latency 3.
        let t = tp(&m, Instr::VecAdd) * 4.0;
        assert!((t - 8.0).abs() < 1.0, "tp = {t}");
        let l = lat(&m, Instr::VecAdd);
        assert!((l - 3.0).abs() < 0.3, "lat = {l}");
    }

    #[test]
    fn divide_throughputs_are_fractional() {
        // Table III: 0.4 / 0.5 / 0.8 DP elements per cycle.
        let gcs = tp(&Machine::neoverse_v2(), Instr::VecDiv) * 2.0;
        let spr = tp(&Machine::golden_cove(), Instr::VecDiv) * 8.0;
        let genoa = tp(&Machine::zen4(), Instr::VecDiv) * 4.0;
        assert!((gcs - 0.4).abs() < 0.1, "gcs={gcs}");
        assert!((spr - 0.5).abs() < 0.1, "spr={spr}");
        // Zen 4 measures slightly better than the model (the paper's π
        // observation): ≈ 1.0 with the silicon quirk enabled.
        assert!((0.7..=1.1).contains(&genoa), "genoa={genoa}");
    }

    #[test]
    fn gathers_parse_and_run() {
        for m in uarch::all_machines() {
            let t = tp(&m, Instr::Gather);
            assert!(t > 0.0 && t < 1.0, "{}: {t}", m.arch.label());
        }
    }

    #[test]
    fn latency_superiority_of_v2() {
        // Paper: V2 shows lower-or-equal latency for every instruction.
        let v2 = Machine::neoverse_v2();
        let glc = Machine::golden_cove();
        for i in [
            Instr::VecAdd,
            Instr::VecMul,
            Instr::VecFma,
            Instr::ScalarFma,
        ] {
            assert!(
                lat(&v2, i) <= lat(&glc, i) + 0.2,
                "{}: v2={} glc={}",
                i.name(),
                lat(&v2, i),
                lat(&glc, i)
            );
        }
    }
}
