//! Tracked simulator-core benchmark: times the event-driven engine
//! against the naive reference engine over the full validation corpus
//! and checks bit-exact agreement while doing so. The `sim_core` bench
//! target runs this and writes the report to `BENCH_sim.json` at the
//! repository root, so the speedup is recorded alongside the code that
//! produced it.

use serde::Serialize;
use std::time::Instant;

/// Per-machine timing row.
#[derive(Debug, Clone, Serialize)]
pub struct MachineRow {
    pub chip: &'static str,
    pub arch: &'static str,
    pub blocks: usize,
    pub event_ms: f64,
    pub reference_ms: f64,
    pub speedup: f64,
    /// Blocks where the event engine's steady-state detector fired.
    pub early_exit_blocks: usize,
}

/// The whole report, serialized to `BENCH_sim.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SimBenchReport {
    pub schema_version: u32,
    pub blocks: usize,
    pub event_ms: f64,
    pub reference_ms: f64,
    pub speedup: f64,
    pub early_exit_blocks: usize,
    /// Every block produced bit-identical results on both engines.
    pub equivalent: bool,
    pub machines: Vec<MachineRow>,
}

impl SimBenchReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

fn bits(r: exec::SimResult) -> (u64, u64, u64, bool) {
    (
        r.cycles_per_iter.to_bits(),
        r.total_cycles,
        r.uops_per_cycle.to_bits(),
        r.truncated,
    )
}

/// Run the benchmark over the corpus (optionally the first `limit`
/// variants per machine, for smoke runs) with the default simulation
/// config on the event side and `reference: true` on the naive side.
pub fn run(limit: Option<usize>) -> SimBenchReport {
    let cfg = exec::SimConfig::default();
    let ref_cfg = exec::SimConfig {
        reference: true,
        ..cfg
    };
    let mut scratch = exec::SimScratch::default();
    let mut machines = Vec::new();
    let mut equivalent = true;
    for m in uarch::all_machines() {
        let mut variants = kernels::variants_for(m.arch);
        if let Some(n) = limit {
            variants.truncate(n);
        }
        let ks: Vec<isa::Kernel> = variants
            .iter()
            .map(|v| kernels::generate_kernel(v, &m))
            .collect();
        // Warm the parse/describe caches and the scratch arena so both
        // timed passes measure simulation, not first-touch allocation.
        for k in &ks {
            std::hint::black_box(exec::simulate_with_scratch(&m, k, cfg, &mut scratch));
        }
        let start = Instant::now();
        let event: Vec<exec::SimResult> = ks
            .iter()
            .map(|k| exec::simulate_with_scratch(&m, k, cfg, &mut scratch))
            .collect();
        let event_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let reference: Vec<exec::SimResult> =
            ks.iter().map(|k| exec::simulate(&m, k, ref_cfg)).collect();
        let reference_ms = start.elapsed().as_secs_f64() * 1e3;
        let mut early_exit_blocks = 0;
        for (e, r) in event.iter().zip(&reference) {
            if bits(*e) != bits(*r) {
                equivalent = false;
            }
            if e.early_exit_iter.is_some() {
                early_exit_blocks += 1;
            }
        }
        machines.push(MachineRow {
            chip: m.arch.chip(),
            arch: m.arch.label(),
            blocks: ks.len(),
            event_ms,
            reference_ms,
            speedup: reference_ms / event_ms.max(1e-9),
            early_exit_blocks,
        });
    }
    let blocks = machines.iter().map(|r| r.blocks).sum();
    let event_ms: f64 = machines.iter().map(|r| r.event_ms).sum();
    let reference_ms: f64 = machines.iter().map(|r| r.reference_ms).sum();
    SimBenchReport {
        schema_version: 1,
        blocks,
        event_ms,
        reference_ms,
        speedup: reference_ms / event_ms.max(1e-9),
        early_exit_blocks: machines.iter().map(|r| r.early_exit_blocks).sum(),
        equivalent,
        machines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_equivalent_and_covers_all_machines() {
        let report = run(Some(4));
        assert!(report.equivalent, "engines disagreed on a corpus block");
        assert_eq!(report.machines.len(), uarch::all_machines().len());
        assert_eq!(report.blocks, 12);
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("schema_version").unwrap().as_f64().unwrap(), 1.0);
        assert!(o.get("speedup").unwrap().as_f64().unwrap() > 0.0);
    }
}
