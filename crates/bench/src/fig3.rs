//! Fig. 3 — model validation over the 416-block corpus.
//!
//! For every kernel variant the pipeline measures the "hardware" (the
//! cycle-level OoO simulator), asks both predictors (the OSACA-style
//! in-core model and the LLVM-MCA baseline) for their block throughput,
//! and reports the relative prediction error
//!
//! ```text
//! RPE = (measured − predicted) / measured
//! ```
//!
//! so that **positive** values mean the prediction is *faster* than the
//! measurement (the paper's right-hand side of the red line — where a
//! lower-bound model should sit).

use rayon::prelude::*;
use serde::Serialize;

/// One validated block.
#[derive(Debug, Clone, Serialize)]
pub struct RpeRecord {
    pub kernel: &'static str,
    pub compiler: &'static str,
    pub opt: &'static str,
    pub chip: &'static str,
    /// Simulated "measurement" in cycles/iteration.
    pub measured: f64,
    /// OSACA-style in-core prediction.
    pub osaca: f64,
    /// LLVM-MCA-style prediction.
    pub mca: f64,
    /// Relative prediction errors (positive = prediction faster).
    pub rpe_osaca: f64,
    pub rpe_mca: f64,
}

/// Run the full corpus (or a machine subset) and collect RPE records.
pub fn rpe_corpus(archs: &[uarch::Arch]) -> Vec<RpeRecord> {
    let machines: Vec<uarch::Machine> = uarch::all_machines()
        .into_iter()
        .filter(|m| archs.contains(&m.arch))
        .collect();
    machines
        .iter()
        .flat_map(|m| {
            let variants = kernels::variants_for(m.arch);
            variants
                .into_par_iter()
                .map(|v| {
                    let kernel = kernels::generate_kernel(&v, m);
                    let measured = exec::cycles_per_iteration(m, &kernel);
                    let osaca = incore::analyze(m, &kernel).prediction;
                    let mca = mca::predict(m, &kernel).cycles_per_iter;
                    RpeRecord {
                        kernel: v.kernel.name(),
                        compiler: v.compiler.name(),
                        opt: v.opt.name(),
                        chip: m.arch.chip(),
                        measured,
                        osaca,
                        mca,
                        rpe_osaca: rpe(measured, osaca),
                        rpe_mca: rpe(measured, mca),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Relative prediction error, positive when the prediction is faster.
pub fn rpe(measured: f64, predicted: f64) -> f64 {
    if measured <= 0.0 {
        return 0.0;
    }
    (measured - predicted) / measured
}

/// Summary statistics over a set of RPEs, mirroring the numbers quoted in
/// the paper's Fig. 3 discussion.
#[derive(Debug, Clone, Serialize)]
pub struct RpeSummary {
    pub count: usize,
    /// Fraction of predictions on the optimistic (positive) side.
    pub optimistic_fraction: f64,
    /// Fraction within +0..10 % / +0..20 %.
    pub within_10: f64,
    pub within_20: f64,
    /// Fraction within ±10 % / ±20 % on either side.
    pub abs_within_10: f64,
    pub abs_within_20: f64,
    /// Number off by more than a factor of two (RPE ≤ −1.0).
    pub off_by_2x: usize,
    /// Mean RPE over the optimistic side only.
    pub mean_positive: f64,
    /// Mean |RPE| over everything.
    pub mean_abs: f64,
}

/// Summarize a slice of RPE values.
pub fn summarize(rpes: &[f64]) -> RpeSummary {
    let count = rpes.len().max(1);
    let pos: Vec<f64> = rpes.iter().copied().filter(|r| *r >= 0.0).collect();
    RpeSummary {
        count: rpes.len(),
        optimistic_fraction: pos.len() as f64 / count as f64,
        within_10: rpes.iter().filter(|r| (0.0..0.10).contains(*r)).count() as f64 / count as f64,
        within_20: rpes.iter().filter(|r| (0.0..0.20).contains(*r)).count() as f64 / count as f64,
        abs_within_10: rpes.iter().filter(|r| r.abs() < 0.10).count() as f64 / count as f64,
        abs_within_20: rpes.iter().filter(|r| r.abs() < 0.20).count() as f64 / count as f64,
        off_by_2x: rpes.iter().filter(|r| **r <= -1.0).count(),
        mean_positive: if pos.is_empty() {
            0.0
        } else {
            pos.iter().sum::<f64>() / pos.len() as f64
        },
        mean_abs: rpes.iter().map(|r| r.abs()).sum::<f64>() / count as f64,
    }
}

/// Per-kernel mean |RPE| for both predictors — shows *where* each model is
/// weak (Gauss-Seidel for the in-core model, post-index pointer walks for
/// MCA).
pub fn by_kernel(records: &[RpeRecord]) -> Vec<(String, f64, f64)> {
    let mut names: Vec<&str> = records.iter().map(|r| r.kernel).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let o: Vec<f64> = records
                .iter()
                .filter(|r| r.kernel == name)
                .map(|r| r.rpe_osaca)
                .collect();
            let m: Vec<f64> = records
                .iter()
                .filter(|r| r.kernel == name)
                .map(|r| r.rpe_mca)
                .collect();
            (
                name.to_string(),
                summarize(&o).mean_abs,
                summarize(&m).mean_abs,
            )
        })
        .collect()
}

/// 10 %-wide histogram buckets from ≤ −100 % to > +100 %, as in Fig. 3.
/// Returns `(lower_edge_percent, count)` pairs.
pub fn histogram(rpes: &[f64]) -> Vec<(i32, usize)> {
    let mut buckets: Vec<(i32, usize)> = (-10..10).map(|b| (b * 10, 0)).collect();
    for &r in rpes {
        let pct = r * 100.0;
        let idx = if pct < -100.0 {
            0
        } else {
            (((pct + 100.0) / 10.0).floor() as i32).clamp(0, 19) as usize
        };
        buckets[idx].1 += 1;
    }
    buckets
}

/// Render a Fig. 3-style ASCII histogram for one predictor.
pub fn render_histogram(title: &str, rpes: &[f64]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let h = histogram(rpes);
    let max = h.iter().map(|(_, c)| *c).max().unwrap_or(1).max(1);
    let _ = writeln!(out, "{title} (n = {})", rpes.len());
    for (edge, count) in h {
        let bar = "#".repeat(count * 50 / max);
        let marker = if edge == 0 { "|" } else { " " };
        let _ = writeln!(out, "{edge:>5}%..{:>4}% {marker} {bar} {count}", edge + 10);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpe_sign_convention() {
        // Prediction faster (lower cycles) → positive.
        assert!(rpe(10.0, 8.0) > 0.0);
        assert!(rpe(10.0, 12.0) < 0.0);
        assert_eq!(rpe(10.0, 10.0), 0.0);
        assert_eq!(rpe(0.0, 5.0), 0.0);
    }

    #[test]
    fn summary_counts() {
        let rpes = [0.05, 0.15, -0.05, -1.2, 0.5];
        let s = summarize(&rpes);
        assert_eq!(s.count, 5);
        assert_eq!(s.off_by_2x, 1);
        assert!((s.optimistic_fraction - 0.6).abs() < 1e-9);
        assert!((s.within_10 - 0.2).abs() < 1e-9);
        assert!((s.within_20 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[0.05, 0.05, -0.15, -2.0]);
        let at = |edge: i32| h.iter().find(|(e, _)| *e == edge).unwrap().1;
        assert_eq!(at(0), 2);
        assert_eq!(at(-20), 1);
        assert_eq!(at(-100), 1);
        assert_eq!(h.len(), 20);
    }

    /// The headline claim on a small slice: OSACA predictions are
    /// overwhelmingly optimistic (lower-bound), MCA predictions mostly
    /// pessimistic.
    #[test]
    fn corpus_slice_reproduces_fig3_shape() {
        let records = rpe_corpus(&[uarch::Arch::GoldenCove]);
        assert_eq!(records.len(), 156);
        let osaca: Vec<f64> = records.iter().map(|r| r.rpe_osaca).collect();
        let mca: Vec<f64> = records.iter().map(|r| r.rpe_mca).collect();
        let so = summarize(&osaca);
        let sm = summarize(&mca);
        assert!(
            so.optimistic_fraction > 0.85,
            "osaca optimistic {:.2}",
            so.optimistic_fraction
        );
        assert!(
            sm.optimistic_fraction < so.optimistic_fraction,
            "mca {:.2} should be more pessimistic than osaca {:.2}",
            sm.optimistic_fraction,
            so.optimistic_fraction
        );
    }
}
