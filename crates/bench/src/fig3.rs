//! Fig. 3 — model validation over the 416-block corpus.
//!
//! For every kernel variant the pipeline measures the "hardware" (the
//! cycle-level OoO simulator), asks both predictors (the OSACA-style
//! in-core model and the LLVM-MCA baseline) for their block throughput,
//! and reports the relative prediction error
//!
//! ```text
//! RPE = (measured − predicted) / measured
//! ```
//!
//! so that **positive** values mean the prediction is *faster* than the
//! measurement (the paper's right-hand side of the red line — where a
//! lower-bound model should sit).
//!
//! This module is a thin presentation layer over [`engine`]: the actual
//! corpus run — parallel fan-out, kernel-parse caching, predictor
//! dispatch through the [`uarch::Predictor`] trait — lives in
//! [`engine::Session`]. Here we only flatten the structured
//! [`engine::BatchReport`] into the flat per-record rows the repro
//! binary and the paper-claims tests consume.

use serde::Serialize;

pub use engine::{histogram, render_histogram, rpe, summarize, Summary as RpeSummary};

/// One validated block, flattened for tabular output.
#[derive(Debug, Clone, Serialize)]
pub struct RpeRecord {
    pub kernel: String,
    pub compiler: String,
    pub opt: String,
    pub chip: String,
    /// Simulated "measurement" in cycles/iteration.
    pub measured: f64,
    /// OSACA-style in-core prediction.
    pub osaca: f64,
    /// LLVM-MCA-style prediction.
    pub mca: f64,
    /// Relative prediction errors (positive = prediction faster).
    pub rpe_osaca: f64,
    pub rpe_mca: f64,
}

/// Run the full corpus (or a machine subset) and collect RPE records.
///
/// Thin wrapper over [`engine::Session`] with the default predictor set
/// (in-core + MCA baseline, simulator reference).
pub fn rpe_corpus(archs: &[uarch::Arch]) -> Vec<RpeRecord> {
    let report = engine::Session::new()
        .archs(archs)
        .run()
        .expect("builtin corpus evaluation cannot fail");
    report
        .records
        .into_iter()
        .map(|r| {
            let get = |name: &str| {
                let p = r
                    .prediction(name)
                    .unwrap_or_else(|| panic!("predictor `{name}` missing from record"));
                (p.cycles_per_iter, p.rpe.unwrap_or(0.0))
            };
            let (osaca, rpe_osaca) = get("incore");
            let (mca, rpe_mca) = get("mca");
            RpeRecord {
                measured: r.measured.unwrap_or(0.0),
                osaca,
                mca,
                rpe_osaca,
                rpe_mca,
                kernel: r.kernel,
                compiler: r.compiler,
                opt: r.opt,
                chip: r.chip,
            }
        })
        .collect()
}

/// Per-kernel mean |RPE| for both predictors — shows *where* each model is
/// weak (Gauss-Seidel for the in-core model, post-index pointer walks for
/// MCA).
pub fn by_kernel(records: &[RpeRecord]) -> Vec<(String, f64, f64)> {
    let mut names: Vec<&str> = records.iter().map(|r| r.kernel.as_str()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let o: Vec<f64> = records
                .iter()
                .filter(|r| r.kernel == name)
                .map(|r| r.rpe_osaca)
                .collect();
            let m: Vec<f64> = records
                .iter()
                .filter(|r| r.kernel == name)
                .map(|r| r.rpe_mca)
                .collect();
            (
                name.to_string(),
                summarize(&o).mean_abs,
                summarize(&m).mean_abs,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim on a small slice: OSACA predictions are
    /// overwhelmingly optimistic (lower-bound), MCA predictions mostly
    /// pessimistic.
    #[test]
    fn corpus_slice_reproduces_fig3_shape() {
        let records = rpe_corpus(&[uarch::Arch::GoldenCove]);
        assert_eq!(records.len(), 156);
        let osaca: Vec<f64> = records.iter().map(|r| r.rpe_osaca).collect();
        let mca: Vec<f64> = records.iter().map(|r| r.rpe_mca).collect();
        let so = summarize(&osaca);
        let sm = summarize(&mca);
        assert!(
            so.optimistic_fraction > 0.85,
            "osaca optimistic {:.2}",
            so.optimistic_fraction
        );
        assert!(
            sm.optimistic_fraction < so.optimistic_fraction,
            "mca {:.2} should be more pessimistic than osaca {:.2}",
            sm.optimistic_fraction,
            so.optimistic_fraction
        );
    }

    /// The wrapper must agree with a hand-rolled serial evaluation of the
    /// same blocks — no drift between bench and engine.
    #[test]
    fn wrapper_matches_direct_predictor_calls() {
        use uarch::Predictor;
        let records = rpe_corpus(&[uarch::Arch::Zen4]);
        let m = uarch::Machine::zen4();
        let v = kernels::variants_for(m.arch)[0];
        let kernel = kernels::generate_kernel(&v, &m);
        let direct = incore::InCoreModel::new().predict(&m, &kernel);
        let r = &records[0];
        assert_eq!(r.kernel, v.kernel.name());
        assert_eq!(r.osaca, direct.cycles_per_iter);
    }
}
