//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro table1|table2|table3|fig1|fig2|fig3|fig4|ecm|all [--json FILE] [--threads N]
//! ```
//!
//! `--threads N` sizes the rayon pool the parallel renders (Table I,
//! Fig. 4, ECM) run on; output is byte-identical at every thread count.

use std::env;
use std::fs;

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    let mut threads = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        threads = args.get(i + 1).and_then(|s| s.parse::<usize>().ok());
        args.drain(i..(i + 2).min(args.len()));
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut json = serde_json::Map::new();

    match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool builds")
            .install(|| dispatch(what, &mut json)),
        None => dispatch(what, &mut json),
    }

    if let Some(path) = json_path {
        fs::write(&path, serde_json::Value::Object(json).to_string()).expect("write json");
        eprintln!("wrote {path}");
    }
}

fn dispatch(what: &str, json: &mut serde_json::Map<String, serde_json::Value>) {
    match what {
        "table1" => print!("{}", bench::tables::render_table1()),
        "table2" => print!("{}", bench::tables::render_table2()),
        "table3" => {
            print!("{}", bench::tables::render_table3());
            json.insert(
                "table3".into(),
                serde_json::to_value(bench::ibench::table3()).unwrap(),
            );
        }
        "fig1" => {
            for m in uarch::all_machines() {
                print!("{}", bench::tables::render_fig1(&m));
            }
        }
        "fig2" => print!("{}", bench::tables::render_fig2()),
        "fig3" => run_fig3(json),
        "fig4" => print!("{}", bench::tables::render_fig4()),
        "ecm" => run_ecm(json),
        "all" => {
            print!("{}", bench::tables::render_table1());
            println!();
            print!("{}", bench::tables::render_table2());
            println!();
            print!("{}", bench::tables::render_table3());
            println!();
            print!(
                "{}",
                bench::tables::render_fig1(&uarch::Machine::neoverse_v2())
            );
            println!();
            print!("{}", bench::tables::render_fig2());
            println!();
            run_fig3(json);
            println!();
            print!("{}", bench::tables::render_fig4());
            println!();
            run_ecm(json);
        }
        other => {
            eprintln!(
                "unknown target `{other}`; use table1|table2|table3|fig1|fig2|fig3|fig4|ecm|all"
            );
            std::process::exit(2);
        }
    }
}

fn run_fig3(json: &mut serde_json::Map<String, serde_json::Value>) {
    use uarch::Arch::*;
    let records = bench::rpe_corpus(&[NeoverseV2, GoldenCove, Zen4]);
    let osaca: Vec<f64> = records.iter().map(|r| r.rpe_osaca).collect();
    let mca: Vec<f64> = records.iter().map(|r| r.rpe_mca).collect();

    println!(
        "Fig. 3 — relative prediction error over {} test blocks",
        records.len()
    );
    println!(
        "(positive = prediction faster than measurement; lower-bound models should sit right of 0)"
    );
    println!();
    print!(
        "{}",
        bench::fig3::render_histogram("OSACA-style in-core model", &osaca)
    );
    println!();
    print!(
        "{}",
        bench::fig3::render_histogram("LLVM-MCA-style model", &mca)
    );

    let so = bench::fig3::summarize(&osaca);
    let sm = bench::fig3::summarize(&mca);
    println!();
    println!("summary                         OSACA      LLVM-MCA");
    println!(
        "optimistic (right of 0)     {:>8.0}%  {:>10.0}%",
        so.optimistic_fraction * 100.0,
        sm.optimistic_fraction * 100.0
    );
    println!(
        "within +0..10%              {:>8.0}%  {:>10.0}%",
        so.within_10 * 100.0,
        sm.within_10 * 100.0
    );
    println!(
        "within +0..20%              {:>8.0}%  {:>10.0}%",
        so.within_20 * 100.0,
        sm.within_20 * 100.0
    );
    println!(
        "within ±20%                 {:>8.0}%  {:>10.0}%",
        so.abs_within_20 * 100.0,
        sm.abs_within_20 * 100.0
    );
    println!(
        "off by > 2x                 {:>9}  {:>11}",
        so.off_by_2x, sm.off_by_2x
    );
    println!(
        "mean RPE (optimistic side)  {:>8.0}%  {:>10.0}%",
        so.mean_positive * 100.0,
        sm.mean_positive * 100.0
    );
    println!(
        "mean |RPE|                  {:>8.0}%  {:>10.0}%",
        so.mean_abs * 100.0,
        sm.mean_abs * 100.0
    );

    // Per-µarch means quoted in the paper's text.
    println!();
    for chip in ["GCS", "SPR", "Genoa"] {
        let o: Vec<f64> = records
            .iter()
            .filter(|r| r.chip == chip)
            .map(|r| r.rpe_osaca)
            .collect();
        let m: Vec<f64> = records
            .iter()
            .filter(|r| r.chip == chip)
            .map(|r| r.rpe_mca)
            .collect();
        let so = bench::fig3::summarize(&o);
        let sm = bench::fig3::summarize(&m);
        println!(
            "{chip:<6} mean positive RPE: OSACA {:>3.0}% vs MCA {:>3.0}%   mean |RPE|: {:>3.0}% vs {:>3.0}%",
            so.mean_positive * 100.0,
            sm.mean_positive * 100.0,
            so.mean_abs * 100.0,
            sm.mean_abs * 100.0
        );
    }

    println!();
    println!("per-kernel mean |RPE|            OSACA   LLVM-MCA");
    for (name, o, m) in bench::fig3::by_kernel(&records) {
        println!("{name:<28} {:>8.0}% {:>9.0}%", o * 100.0, m * 100.0);
    }

    json.insert("fig3".into(), serde_json::to_value(&records).unwrap());
}

fn run_ecm(json: &mut serde_json::Map<String, serde_json::Value>) {
    println!("ECM model (extension) — STREAM triad, cycles per cache line of work");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "chip", "T_core", "T_L1L2", "T_L2L3", "T_L3Mem", "T_mem", "n_sat"
    );
    let machines = uarch::all_machines();
    let rows = node::ecm::triad_ecm_rows(&machines);
    for r in &rows {
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>6}",
            r.chip, r.t_core, r.t_l1_l2, r.t_l2_l3, r.t_l3_mem, r.t_mem, r.n_sat
        );
    }
    json.insert("ecm".into(), serde_json::to_value(rows).unwrap());
}
