//! Tracked throughput benchmark for the analysis pipeline: drive a
//! generated volume corpus (see [`kernels::volume::volume_blocks`])
//! through the `engine` session at 1 and 8 worker threads, and record
//! analyzed-kernels-per-second along four paths:
//!
//! 1. **baseline** — the pre-optimization `validate` path: a batch
//!    session whose MCA predictor is [`mca::McaReferenceBaseline`], the
//!    reference implementation the fast two-heap scheduler is pinned
//!    bit-identical to. This is the honest "before" number: same
//!    reports, pre-PR cost.
//! 2. **batch** — the current fast batch path ([`engine::Session::run`]).
//! 3. **cold** — the streaming path ([`engine::Session::run_streamed`])
//!    against a fresh persistent cache directory (computes everything,
//!    writes every record).
//! 4. **warm** — the same streaming run again: every record replays
//!    from the content-addressed disk cache.
//!
//! Every pair of paths must produce byte-identical `BatchReport` JSON
//! once the observational `timings` block is zeroed — the
//! `byte_identical` flag in the report is the conjunction over all
//! measured thread counts. The `pipeline_core` bench target runs this
//! and writes `BENCH_pipeline.json` at the repository root, so pipeline
//! throughput is a tracked trajectory like sim/memhier/serve.

use std::time::Instant;

use engine::{BatchReport, Session};
use serde::Serialize;

/// One measured thread count.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadRow {
    pub threads: usize,
    /// Pre-PR validate path: batch session, reference MCA scheduler.
    pub baseline_ms: f64,
    pub baseline_kernels_per_sec: f64,
    /// Current fast batch path.
    pub batch_ms: f64,
    pub batch_kernels_per_sec: f64,
    /// Streaming path, fresh cache dir (compute + persist).
    pub cold_ms: f64,
    pub cold_kernels_per_sec: f64,
    /// Streaming path, warm cache dir (disk replay).
    pub warm_ms: f64,
    pub warm_kernels_per_sec: f64,
    /// cold vs baseline (the acceptance gate asks ≥ 2×).
    pub cold_speedup_vs_baseline: f64,
    /// warm vs cold (the acceptance gate asks ≥ 10×).
    pub warm_speedup_vs_cold: f64,
    /// Disk cache counters of the warm run (hits must cover the corpus).
    pub warm_disk_hits: u64,
    pub warm_disk_misses: u64,
    /// stream-vs-batch and warm-vs-cold reports byte-identical (timings
    /// zeroed) at this thread count.
    pub byte_identical: bool,
}

/// The whole report, serialized to `BENCH_pipeline.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineBenchReport {
    pub schema_version: u32,
    pub arch: String,
    /// Volume-corpus blocks per run.
    pub blocks: usize,
    /// All byte-identity checks passed at every thread count.
    pub byte_identical: bool,
    /// Peak resident set of the bench process (`VmHWM`, kB) — a proxy,
    /// not a per-run measurement; `null` off Linux.
    pub peak_rss_kb: Option<u64>,
    pub threads: Vec<ThreadRow>,
}

impl PipelineBenchReport {
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

const ARCH: uarch::Arch = uarch::Arch::GoldenCove;

/// A session over the volume corpus. No simulator reference: the bench
/// isolates the analysis pipeline (parse → in-core + MCA → report).
fn session(threads: usize, blocks: usize) -> Session {
    Session::new()
        .archs(&[ARCH])
        .volume(blocks)
        .threads(threads)
        .reference(None)
}

/// The same session on the pre-PR cost model: the reference MCA
/// scheduler instead of the fast two-heap one (bit-identical output).
fn baseline_session(threads: usize, blocks: usize) -> Session {
    session(threads, blocks).predictors(vec![
        Box::new(incore::InCoreModel::new()),
        Box::new(mca::McaReferenceBaseline),
    ])
}

/// Report JSON with the observational blocks zeroed — the byte-identity
/// currency of the equivalence checks. `timings` is wall clock;
/// `cache` legitimately differs between paths (the streaming path does
/// not memoize kernel parses). Every analytical field stays.
fn normalized(report: &BatchReport) -> String {
    let mut r = report.clone();
    r.timings = Default::default();
    r.cache = Default::default();
    r.to_json()
}

fn timed(run: impl FnOnce() -> BatchReport) -> (BatchReport, f64) {
    let start = Instant::now();
    let report = run();
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// `VmHWM` from `/proc/self/status` in kB (peak RSS of this process).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn run_threads(threads: usize, blocks: usize) -> ThreadRow {
    let (baseline, baseline_ms) = timed(|| {
        baseline_session(threads, blocks)
            .run()
            .expect("baseline runs")
    });
    let (batch, batch_ms) = timed(|| session(threads, blocks).run().expect("batch runs"));
    let (stream, _) = timed(|| {
        session(threads, blocks)
            .run_streamed(0)
            .expect("stream runs")
    });
    let dir = std::env::temp_dir().join(format!(
        "incore-pipeline-bench-{}-t{threads}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (cold, cold_ms) = timed(|| {
        session(threads, blocks)
            .cache_dir(&dir)
            .run_streamed(0)
            .expect("cold runs")
    });
    // The warm run goes through `stream` directly so the outcome's disk
    // counters are visible (a `BatchReport` only carries them under
    // `--profile`, which would break byte-comparability).
    let warm_session = session(threads, blocks).cache_dir(&dir);
    let mut warm_records = Vec::new();
    let start = Instant::now();
    let outcome = warm_session
        .stream(0, |r| warm_records.push(r))
        .expect("warm runs");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    let warm = BatchReport::from_records(
        outcome.archs.clone(),
        outcome.predictors.clone(),
        outcome.reference.clone(),
        warm_records,
        outcome.cache,
    );
    let warm_disk = outcome.disk.expect("warm run had a cache dir");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(batch.records.len(), blocks, "volume corpus size");
    let byte_identical = normalized(&baseline) == normalized(&batch)
        && normalized(&stream) == normalized(&batch)
        && normalized(&cold) == normalized(&batch)
        && normalized(&warm) == normalized(&cold);
    let kps = |ms: f64| blocks as f64 / (ms / 1e3).max(1e-9);
    ThreadRow {
        threads,
        baseline_ms,
        baseline_kernels_per_sec: kps(baseline_ms),
        batch_ms,
        batch_kernels_per_sec: kps(batch_ms),
        cold_ms,
        cold_kernels_per_sec: kps(cold_ms),
        warm_ms,
        warm_kernels_per_sec: kps(warm_ms),
        cold_speedup_vs_baseline: baseline_ms / cold_ms.max(1e-9),
        warm_speedup_vs_cold: cold_ms / warm_ms.max(1e-9),
        warm_disk_hits: warm_disk.hits,
        warm_disk_misses: warm_disk.misses,
        byte_identical,
    }
}

/// Run the pipeline benchmark. `limit` sets the volume-corpus size in
/// blocks (smoke runs); `None` is three full passes over the variant
/// grid, so replica blocks (distinct text, no kernel-memo shortcuts)
/// dominate the workload.
pub fn run(limit: Option<usize>) -> PipelineBenchReport {
    let grid = kernels::variants_for(ARCH).len();
    let blocks = limit.unwrap_or(grid * 3).max(1);
    let mut threads = Vec::new();
    let mut byte_identical = true;
    for t in [1usize, 8] {
        let row = run_threads(t, blocks);
        byte_identical &= row.byte_identical;
        threads.push(row);
    }
    PipelineBenchReport {
        schema_version: 1,
        arch: ARCH.chip().to_string(),
        blocks,
        byte_identical,
        peak_rss_kb: peak_rss_kb(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_byte_identical_and_warm_replays() {
        let report = run(Some(6));
        assert!(report.byte_identical, "{report:?}");
        assert_eq!(report.blocks, 6);
        assert_eq!(
            report.threads.iter().map(|r| r.threads).collect::<Vec<_>>(),
            vec![1, 8]
        );
        for row in &report.threads {
            assert!(row.baseline_kernels_per_sec > 0.0);
            assert!(row.warm_kernels_per_sec > 0.0);
            assert_eq!(
                (row.warm_disk_hits, row.warm_disk_misses),
                (6, 0),
                "a warm rerun must replay every block from disk: {row:?}"
            );
        }
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("schema_version")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
    }
}
