//! Reproduction harness: one module per paper table/figure, each producing
//! the same rows/series the paper reports. The `repro` binary pretty-prints
//! them; the Criterion benches under `benches/` time the underlying
//! machinery and emit the same data.

pub mod fig3;
pub mod ibench;
pub mod membench;
pub mod obsbench;
pub mod pipelinebench;
pub mod servebench;
pub mod simbench;
pub mod tables;

pub use fig3::{rpe_corpus, RpeRecord};
pub use ibench::{instruction_latency, instruction_throughput, table3};
pub use membench::MemBenchReport;
pub use obsbench::ObsBenchReport;
pub use pipelinebench::PipelineBenchReport;
pub use servebench::ServeBenchReport;
pub use simbench::SimBenchReport;
