//! Loop-carried dependency (LCD) analysis.
//!
//! A loop-carried dependency is a latency cycle that wraps from one
//! iteration into the next — e.g. an accumulator updated every iteration,
//! or a Gauss-Seidel stencil reading the value stored by the previous
//! iteration. In steady state the loop cannot run faster than the longest
//! such cycle, no matter how many idle ports remain.
//!
//! We enumerate cycles containing exactly one wrap edge: for a wrap edge
//! `u → v` (always with `v ≤ u` in program order) the cycle weight is the
//! longest intra-iteration path from `v` to `u` plus the wrap edge's
//! weight. Multi-wrap cycles spread their latency over several iterations
//! and are never the binding constraint when a single-wrap cycle through
//! the same registers exists; ignoring them keeps the estimate a valid
//! lower bound.

use crate::depgraph::DepGraph;

/// The loop-carried dependency bound in cycles per iteration.
pub fn loop_carried(g: &DepGraph) -> f64 {
    let mut best = 0.0f64;
    for wrap in g.edges.iter().filter(|e| e.wrap) {
        let path = longest_path(g, wrap.to, wrap.from);
        if let Some(p) = path {
            best = best.max(p + wrap.weight);
        }
    }
    best
}

/// Longest intra-iteration path from `src` to `dst` (0.0 when `src == dst`;
/// `None` when `dst` is unreachable from `src`).
fn longest_path(g: &DepGraph, src: usize, dst: usize) -> Option<f64> {
    if src == dst {
        return Some(0.0);
    }
    if src > dst {
        return None;
    }
    const NEG: f64 = f64::NEG_INFINITY;
    let mut dist = vec![NEG; g.n];
    dist[src] = 0.0;
    // Intra edges go forward in program order, so one pass suffices.
    for j in src + 1..=dst {
        for e in g.edges.iter().filter(|e| !e.wrap && e.to == j) {
            if dist[e.from] > NEG {
                let cand = dist[e.from] + e.weight;
                if cand > dist[j] {
                    dist[j] = cand;
                }
            }
        }
    }
    (dist[dst] > NEG).then_some(dist[dst])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DepGraph;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn lcd_x86(asm: &str) -> f64 {
        let m = Machine::golden_cove();
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let d = m.describe_kernel(&k);
        loop_carried(&DepGraph::build(&m, &k, &d))
    }

    #[test]
    fn accumulator_cycle() {
        // FMA accumulator: 4-cycle self cycle.
        let v = lcd_x86(".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n");
        assert!((v - 4.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn two_instruction_cycle() {
        // mul feeds add; add result feeds next iteration's mul:
        // cycle = mul(4) + add(2) = 6.
        let v = lcd_x86(
            ".L1:\n vmulpd %zmm4, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
        );
        assert!((v - 6.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn loop_counter_is_a_small_cycle() {
        // addq self-cycle: 1 cycle/iter.
        let v = lcd_x86(".L1:\n addq $8, %rax\n cmpq %rcx, %rax\n jne .L1\n");
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn independent_streams_have_counter_lcd_only() {
        let v = lcd_x86(
            ".L1:\n vmovupd (%rsi,%rax), %zmm0\n vaddpd %zmm0, %zmm1, %zmm2\n vmovupd %zmm2, (%rdi,%rax)\n addq $64, %rax\n cmpq %rcx, %rax\n jne .L1\n",
        );
        // Only the induction variable cycles: 1 cy.
        assert!((v - 1.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn empty_graph_has_zero_lcd() {
        let g = DepGraph {
            n: 0,
            edges: vec![],
        };
        assert_eq!(loop_carried(&g), 0.0);
    }

    #[test]
    fn divider_chain_on_neoverse() {
        // Serial scalar divides: LCD = div latency 12 on V2.
        let m = Machine::neoverse_v2();
        let k = parse_kernel(
            ".L1:\n fdiv d0, d0, d1\n subs x0, x0, #1\n b.ne .L1\n",
            Isa::AArch64,
        )
        .unwrap();
        let d = m.describe_kernel(&k);
        let v = loop_carried(&DepGraph::build(&m, &k, &d));
        assert!((v - 12.0).abs() < 1e-9, "{v}");
    }
}
