//! The analytical in-core performance model — the paper's contribution,
//! equivalent to the microarchitecture extensions the authors added to the
//! Open Source Architecture Code Analyzer (OSACA).
//!
//! Given a loop kernel and a [`uarch::Machine`], the analyzer produces an
//! *optimistic lower bound* on the cycles per loop iteration:
//!
//! 1. **Port-pressure / throughput analysis** ([`throughput`]): every µ-op's
//!    occupancy is distributed over its eligible ports so that the maximum
//!    port load is minimized; the bound is that maximum load.
//! 2. **Critical-path analysis** ([`critpath`]): the longest
//!    latency-weighted path through one iteration's dependency DAG.
//! 3. **Loop-carried-dependency analysis** ([`lcd`]): the longest
//!    latency-weighted cycle that wraps from one iteration into the next;
//!    this bounds steady-state iteration time from below even when ports
//!    are idle.
//!
//! The block prediction is `max(throughput, LCD, front-end)` — deliberately
//! *not* including the critical path, which only bounds a single iteration
//! in flight (out-of-order execution overlaps iterations).
//!
//! # Example
//!
//! ```
//! use isa::{parse_kernel, Isa};
//! use incore::analyze;
//! use uarch::Machine;
//!
//! let asm = r#"
//! .L2:
//!     vmovupd (%rsi,%rax), %zmm0
//!     vfmadd231pd %zmm1, %zmm2, %zmm0
//!     vmovupd %zmm0, (%rdi,%rax)
//!     addq $64, %rax
//!     cmpq %rcx, %rax
//!     jne .L2
//! "#;
//! let kernel = parse_kernel(asm, Isa::X86).unwrap();
//! let analysis = analyze(&Machine::golden_cove(), &kernel);
//! assert!(analysis.prediction >= 1.0);
//! ```

pub mod critpath;
pub mod depgraph;
pub mod lcd;
pub mod report;
pub mod throughput;

pub use report::Report;
pub use throughput::PortAssignment;

use isa::Kernel;
use uarch::Machine;

/// Analyzer options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Port-assignment strategy for the throughput analysis.
    pub assignment: PortAssignment,
    /// Include the front-end dispatch bound (`total µ-ops / dispatch
    /// width`) in the block prediction.
    pub frontend: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            assignment: PortAssignment::Optimal,
            frontend: true,
        }
    }
}

/// Result of the in-core analysis of one kernel on one machine.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Cycles of work assigned to each port (indexed like
    /// `machine.port_model.ports`).
    pub port_loads: Vec<f64>,
    /// Throughput (port-pressure) bound in cycles/iteration.
    pub tp_bound: f64,
    /// Front-end dispatch bound in cycles/iteration.
    pub frontend_bound: f64,
    /// Critical path through one iteration, in cycles.
    pub cp_latency: f64,
    /// Instruction indices on the critical path, in program order.
    pub cp_nodes: Vec<usize>,
    /// Loop-carried dependency bound in cycles/iteration.
    pub lcd: f64,
    /// The block prediction: `max(tp, lcd[, frontend])`.
    pub prediction: f64,
    /// Per-instruction port-pressure rows (cycles on each port).
    pub per_inst: Vec<InstPressure>,
    /// Number of instructions resolved through the heuristic fallback.
    pub fallbacks: usize,
}

/// What limits the kernel's steady-state throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The busiest execution port(s).
    PortPressure,
    /// A loop-carried dependency chain.
    Dependency,
    /// The dispatch/rename width.
    FrontEnd,
}

impl Analysis {
    /// Classify the binding constraint of the block prediction.
    pub fn bottleneck(&self) -> Bottleneck {
        if self.lcd >= self.tp_bound && self.lcd >= self.frontend_bound {
            Bottleneck::Dependency
        } else if self.tp_bound >= self.frontend_bound {
            Bottleneck::PortPressure
        } else {
            Bottleneck::FrontEnd
        }
    }

    /// Indices of the ports at maximum load (the binding ports).
    pub fn busiest_ports(&self) -> Vec<usize> {
        let max = self.port_loads.iter().copied().fold(0.0f64, f64::max);
        self.port_loads
            .iter()
            .enumerate()
            .filter(|(_, l)| (**l - max).abs() < 1e-9 && max > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Port pressure contributed by a single instruction.
#[derive(Debug, Clone)]
pub struct InstPressure {
    /// Source text of the instruction.
    pub text: String,
    /// Cycles this instruction puts on each port.
    pub loads: Vec<f64>,
    pub latency: u32,
    pub eliminated: bool,
    pub fallback: bool,
}

/// The analytical in-core model as a [`uarch::Predictor`] — the unified
/// entry point batch pipelines and divergence lints dispatch through.
#[derive(Debug, Clone, Copy, Default)]
pub struct InCoreModel {
    pub options: Options,
}

impl InCoreModel {
    pub fn new() -> Self {
        InCoreModel::default()
    }

    /// OSACA's equal-split port heuristic instead of the optimal split.
    pub fn balanced() -> Self {
        InCoreModel {
            options: Options {
                assignment: PortAssignment::Balanced,
                frontend: true,
            },
        }
    }
}

impl uarch::Predictor for InCoreModel {
    fn name(&self) -> &'static str {
        match self.options.assignment {
            PortAssignment::Optimal => "incore",
            PortAssignment::Balanced => "incore-balanced",
        }
    }

    fn predict(&self, machine: &Machine, kernel: &Kernel) -> uarch::Prediction {
        let a = analyze_with(machine, kernel, self.options);
        let bottleneck = match a.bottleneck() {
            Bottleneck::PortPressure => uarch::Bottleneck::PortPressure,
            Bottleneck::Dependency => uarch::Bottleneck::Dependency,
            Bottleneck::FrontEnd => uarch::Bottleneck::FrontEnd,
        };
        uarch::Prediction {
            cycles_per_iter: a.prediction,
            bottleneck,
            uops_per_iter: a.frontend_bound * machine.dispatch_width as f64,
            port_pressure: a.port_loads,
        }
    }
}

/// Analyze a kernel with default options.
pub fn analyze(machine: &Machine, kernel: &Kernel) -> Analysis {
    analyze_with(machine, kernel, Options::default())
}

/// Analyze a kernel with explicit options.
pub fn analyze_with(machine: &Machine, kernel: &Kernel, opts: Options) -> Analysis {
    let descs = machine.describe_kernel(kernel);
    let (port_loads, per_inst) =
        throughput::port_pressure(machine, kernel, &descs, opts.assignment);
    let tp_bound = port_loads.iter().copied().fold(0.0f64, f64::max);

    let total_uops: usize = descs.iter().map(|d| d.uop_count()).sum();
    let frontend_bound = total_uops as f64 / machine.dispatch_width as f64;

    let graph = depgraph::DepGraph::build(machine, kernel, &descs);
    let (cp_latency, cp_nodes) = critpath::critical_path_with_nodes(&graph);
    let lcd = lcd::loop_carried(&graph);

    let mut prediction = tp_bound.max(lcd);
    if opts.frontend {
        prediction = prediction.max(frontend_bound);
    }

    Analysis {
        port_loads,
        tp_bound,
        frontend_bound,
        cp_latency,
        cp_nodes,
        lcd,
        prediction,
        per_inst,
        fallbacks: descs.iter().filter(|d| d.from_fallback).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    /// Paper Table III check: a stream of independent zmm FMAs on Golden
    /// Cove sustains 2/cycle. With 8 accumulators the 4-cycle FMA latency
    /// is fully hidden: 8 FMAs / 2 ports = 4 cy/iter = 2 FMA/cy.
    #[test]
    fn independent_fma_throughput_glc() {
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vfmadd231pd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let k = parse_kernel(&asm, Isa::X86).unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert!((a.tp_bound - 4.0).abs() < 1e-6, "tp={}", a.tp_bound);
        // Each accumulator advances once per iteration → LCD 4, matching.
        assert!((a.lcd - 4.0).abs() < 1e-6, "lcd={}", a.lcd);
        assert!((a.prediction - 4.0).abs() < 1e-6);
    }

    /// A serial FMA chain is bound by the loop-carried dependency:
    /// 4 cycles per iteration (Table III FMA latency).
    #[test]
    fn serial_fma_chain_lcd() {
        let asm = r#"
.L1:
    vfmadd231pd %zmm1, %zmm2, %zmm3
    subq $1, %rax
    jne .L1
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert!((a.lcd - 4.0).abs() < 1e-6, "lcd={}", a.lcd);
        assert!((a.prediction - 4.0).abs() < 1e-6);
    }

    #[test]
    fn neoverse_vector_add_throughput() {
        // 8 independent NEON adds on 4 V-ports → 2 cycles/iter.
        let mut body = String::from(".L1:\n");
        for i in 0..8 {
            body.push_str(&format!("    fadd v{i}.2d, v8.2d, v9.2d\n"));
        }
        body.push_str("    subs x0, x0, #1\n    b.ne .L1\n");
        let k = parse_kernel(&body, Isa::AArch64).unwrap();
        let a = analyze(&Machine::neoverse_v2(), &k);
        assert!((a.tp_bound - 2.0).abs() < 1e-6, "tp={}", a.tp_bound);
    }

    #[test]
    fn frontend_bound_present() {
        let asm = ".L1:\n    addq $1, %rax\n    jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert!(a.frontend_bound > 0.0);
        assert!(a.prediction >= a.frontend_bound);
    }

    #[test]
    fn store_only_loop_bound_by_store_ports_zen4() {
        // Zen 4 has a single store-data port: 2 stores → 2 cycles.
        let asm = r#"
.L1:
    vmovupd %ymm0, (%rdi)
    vmovupd %ymm0, 32(%rdi)
    addq $64, %rdi
    cmpq %rsi, %rdi
    jne .L1
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let a = analyze(&Machine::zen4(), &k);
        assert!((a.tp_bound - 2.0).abs() < 1e-6, "tp={}", a.tp_bound);
    }

    #[test]
    fn pointer_increment_does_not_inflate_lcd() {
        // AArch64 post-index load: the base update is a 1-cycle AGU op,
        // so the loop-carried chain through x0 is 1 cy, not the load-use
        // latency.
        let asm = r#"
.L1:
    ldr q0, [x0], #16
    fadd v1.2d, v1.2d, v0.2d
    cmp x0, x4
    b.ne .L1
"#;
        let k = parse_kernel(asm, Isa::AArch64).unwrap();
        let a = analyze(&Machine::neoverse_v2(), &k);
        // LCD through v1 accumulator: fadd latency 2. x0 chain: 1.
        assert!((a.lcd - 2.0).abs() < 1e-6, "lcd={}", a.lcd);
    }
}

#[cfg(test)]
mod bottleneck_tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    #[test]
    fn dependency_bound_kernel() {
        let k = parse_kernel(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert_eq!(a.bottleneck(), Bottleneck::Dependency);
    }

    #[test]
    fn port_bound_kernel() {
        let mut asm = String::from(".L1:\n");
        for i in 3..11 {
            asm.push_str(&format!("    vdivpd %zmm1, %zmm2, %zmm{i}\n"));
        }
        asm.push_str("    subq $1, %rax\n    jne .L1\n");
        let k = parse_kernel(&asm, Isa::X86).unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert_eq!(a.bottleneck(), Bottleneck::PortPressure);
        // The divider lives on port 0.
        assert_eq!(a.busiest_ports(), vec![0]);
    }

    #[test]
    fn frontend_bound_kernel() {
        // Work spread evenly over port groups so no single group
        // saturates, but the total µ-op count exceeds what 6-wide dispatch
        // can sustain per cycle.
        let asm = "\
.L1:
    vmovupd (%rsi,%rax), %zmm0
    vmovupd 64(%rsi,%rax), %zmm1
    vaddpd %zmm0, %zmm5, %zmm2
    vaddpd %zmm1, %zmm5, %zmm3
    addq $8, %rbx
    addq $8, %rcx
    vmovupd %zmm2, (%rdi,%rax)
    addq $128, %rax
    cmpq %r8, %rax
    jne .L1
";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let a = analyze(&Machine::golden_cove(), &k);
        assert!(
            a.frontend_bound > a.tp_bound,
            "fe={} tp={}",
            a.frontend_bound,
            a.tp_bound
        );
        assert_eq!(a.bottleneck(), Bottleneck::FrontEnd);
    }

    #[test]
    fn report_names_the_bottleneck() {
        let k = parse_kernel(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let m = Machine::golden_cove();
        let a = analyze(&m, &k);
        let text = Report::new(&m, &a).render();
        assert!(text.contains("loop-carried dependency"), "{text}");
    }
}
