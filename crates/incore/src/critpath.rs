//! Critical-path analysis: the longest latency-weighted path through one
//! iteration's dependency DAG (intra-iteration edges only).

use crate::depgraph::DepGraph;

/// Longest path (by accumulated producer latency) through the
/// intra-iteration dependency DAG, in cycles. The path cost counts the
/// latency of every producer on the path plus the latency of the final
/// instruction — i.e. the earliest time the last value of the chain can be
/// ready relative to iteration start.
pub fn critical_path(g: &DepGraph) -> f64 {
    critical_path_with_nodes(g).0
}

/// Critical path plus the instruction indices on it, in program order —
/// what OSACA marks with `X` in its CP column.
pub fn critical_path_with_nodes(g: &DepGraph) -> (f64, Vec<usize>) {
    // Intra-iteration edges always go from lower to higher index (program
    // order), so a simple forward DP suffices.
    let mut dist = vec![0.0f64; g.n];
    let mut pred: Vec<Option<usize>> = vec![None; g.n];
    for j in 0..g.n {
        for e in g.edges.iter().filter(|e| !e.wrap && e.to == j) {
            let cand = dist[e.from] + e.weight;
            if cand > dist[j] {
                dist[j] = cand;
                pred[j] = Some(e.from);
            }
        }
    }
    let Some((end, &best)) = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
    else {
        return (0.0, Vec::new());
    };
    let mut nodes = Vec::new();
    let mut cur = Some(end);
    while let Some(i) = cur {
        nodes.push(i);
        cur = pred[i];
    }
    nodes.reverse();
    (best, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DepGraph;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn cp(asm: &str) -> f64 {
        let m = Machine::golden_cove();
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let d = m.describe_kernel(&k);
        critical_path(&DepGraph::build(&m, &k, &d))
    }

    #[test]
    fn chain_of_two() {
        // mul (4 cy) feeds add: path = 4.
        let v = cp(".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n");
        assert!((v - 4.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn independent_ops_have_short_path() {
        let v = cp(".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm5, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n");
        // Longest intra path: sub(1) → jne via flags.
        assert!(v <= 1.0 + 1e-9, "{v}");
    }

    #[test]
    fn load_feeds_compute() {
        // load (7) → fma: path 7.
        let v = cp(".L1:\n vmovupd (%rax), %zmm0\n vfmadd231pd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n");
        assert!((v - 7.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph {
            n: 0,
            edges: vec![],
        };
        assert_eq!(critical_path(&g), 0.0);
    }
}
