//! Port-pressure (throughput) analysis.
//!
//! Each µ-op's occupancy must be placed on one of its eligible ports; the
//! throughput bound of the block is the *minimal achievable maximum port
//! load*. Two strategies are provided:
//!
//! * [`PortAssignment::Balanced`] — OSACA's heuristic: every µ-op splits its
//!   occupancy equally across all eligible ports. Fast, and exact whenever
//!   eligible sets are nested or disjoint, but it can overestimate pressure
//!   when sets partially overlap.
//! * [`PortAssignment::Optimal`] — the exact fractional optimum. For
//!   splittable work on restricted identical ports, the optimum equals
//!   `max over port subsets S of demand(S) / |S|`, where `demand(S)` sums
//!   the occupancy of µ-ops whose eligible ports all lie in `S` (a Hall-type
//!   condition); only unions of occurring eligible sets need to be checked.
//!   A max-flow pass then recovers a concrete per-port assignment at that
//!   optimum for reporting.

use crate::InstPressure;
use isa::Kernel;
use uarch::{InstrDesc, Machine, PortSet};

/// Strategy for distributing µ-op occupancy over eligible ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PortAssignment {
    /// Equal split across eligible ports (OSACA's heuristic).
    Balanced,
    /// Exact fractional optimum (subset bound + max-flow assignment).
    #[default]
    Optimal,
}

/// Compute per-port loads and per-instruction pressure rows.
pub fn port_pressure(
    machine: &Machine,
    kernel: &Kernel,
    descs: &[InstrDesc],
    strategy: PortAssignment,
) -> (Vec<f64>, Vec<InstPressure>) {
    let np = machine.port_model.num_ports();
    // Flatten µ-ops, remembering their owning instruction.
    let mut uops: Vec<(usize, PortSet, f64)> = Vec::new();
    for (i, d) in descs.iter().enumerate() {
        for u in &d.uops {
            if !u.ports.is_empty() && u.occupancy > 0.0 {
                uops.push((i, u.ports, u.occupancy));
            }
        }
    }

    let assignment: Vec<Vec<(usize, f64)>> = match strategy {
        PortAssignment::Balanced => uops
            .iter()
            .map(|(_, ports, occ)| {
                let k = ports.count() as f64;
                ports.iter().map(|p| (p, occ / k)).collect()
            })
            .collect(),
        PortAssignment::Optimal => optimal_assignment(&uops, np),
    };

    let mut port_loads = vec![0.0f64; np];
    let mut rows: Vec<InstPressure> = kernel
        .instructions
        .iter()
        .zip(descs)
        .map(|(inst, d)| InstPressure {
            text: inst.raw.clone(),
            loads: vec![0.0; np],
            latency: d.latency,
            eliminated: d.uop_count() == 0,
            fallback: d.from_fallback,
        })
        .collect();

    for ((owner, _, _), parts) in uops.iter().zip(&assignment) {
        for &(p, amt) in parts {
            port_loads[p] += amt;
            rows[*owner].loads[p] += amt;
        }
    }
    (port_loads, rows)
}

/// Exact optimum: subset bound, then max-flow to recover an assignment.
fn optimal_assignment(uops: &[(usize, PortSet, f64)], np: usize) -> Vec<Vec<(usize, f64)>> {
    if uops.is_empty() {
        return Vec::new();
    }
    // Distinct eligible sets.
    let mut sets: Vec<PortSet> = Vec::new();
    for (_, p, _) in uops {
        if !sets.contains(p) {
            sets.push(*p);
        }
    }
    // The optimum is attained at a union of eligible sets. Enumerate unions
    // of the distinct sets (2^k for k distinct sets; kernels use a handful).
    let k = sets.len().min(20);
    let mut t_opt = 0.0f64;
    for mask in 1u32..(1 << k) {
        let mut union = PortSet::EMPTY;
        for (idx, s) in sets.iter().take(k).enumerate() {
            if mask & (1 << idx) != 0 {
                union = union.union(*s);
            }
        }
        let demand: f64 = uops
            .iter()
            .filter(|(_, p, _)| p.intersect(union) == *p)
            .map(|(_, _, o)| o)
            .sum();
        let bound = demand / union.count() as f64;
        if bound > t_opt {
            t_opt = bound;
        }
    }

    // Recover a concrete assignment via max-flow at capacity T = t_opt.
    flow_assignment(uops, np, t_opt * (1.0 + 1e-12) + 1e-12)
}

/// Max-flow (Edmonds-Karp on f64 capacities) computing a feasible
/// distribution with per-port capacity `t`.
fn flow_assignment(uops: &[(usize, PortSet, f64)], np: usize, t: f64) -> Vec<Vec<(usize, f64)>> {
    let nu = uops.len();
    // Node ids: 0 = source, 1..=nu = µ-ops, nu+1..=nu+np = ports, last = sink.
    let n_nodes = nu + np + 2;
    let sink = n_nodes - 1;
    #[derive(Clone, Copy)]
    struct E {
        to: usize,
        cap: f64,
        rev: usize,
    }
    let mut adj: Vec<Vec<E>> = vec![Vec::new(); n_nodes];
    let add_edge = |adj: &mut Vec<Vec<E>>, a: usize, b: usize, cap: f64| {
        let ra = adj[b].len();
        let rb = adj[a].len();
        adj[a].push(E {
            to: b,
            cap,
            rev: ra,
        });
        adj[b].push(E {
            to: a,
            cap: 0.0,
            rev: rb,
        });
    };
    for (i, (_, ports, occ)) in uops.iter().enumerate() {
        add_edge(&mut adj, 0, 1 + i, *occ);
        for p in ports.iter() {
            add_edge(&mut adj, 1 + i, 1 + nu + p, f64::INFINITY);
        }
    }
    for p in 0..np {
        add_edge(&mut adj, 1 + nu + p, sink, t);
    }

    // Edmonds-Karp.
    const EPS: f64 = 1e-12;
    loop {
        // BFS for an augmenting path.
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n_nodes];
        let mut q = std::collections::VecDeque::new();
        q.push_back(0usize);
        prev[0] = Some((0, usize::MAX));
        while let Some(v) = q.pop_front() {
            for (ei, e) in adj[v].iter().enumerate() {
                if e.cap > EPS && prev[e.to].is_none() {
                    prev[e.to] = Some((v, ei));
                    q.push_back(e.to);
                }
            }
        }
        if prev[sink].is_none() {
            break;
        }
        // Find bottleneck.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != 0 {
            let (u, ei) = prev[v].unwrap();
            bottleneck = bottleneck.min(adj[u][ei].cap);
            v = u;
        }
        // Apply.
        let mut v = sink;
        while v != 0 {
            let (u, ei) = prev[v].unwrap();
            adj[u][ei].cap -= bottleneck;
            let rev = adj[u][ei].rev;
            adj[v][rev].cap += bottleneck;
            v = u;
        }
    }

    // Read flows on µ-op → port edges from the reverse capacities.
    let mut out = vec![Vec::new(); nu];
    for (i, (_, ports, _)) in uops.iter().enumerate() {
        let node = 1 + i;
        for e in &adj[node] {
            if e.to > nu && e.to < sink {
                let p = e.to - 1 - nu;
                // Flow on forward edge = reverse edge capacity at the port.
                let flow = adj[e.to][e.rev].cap;
                if flow > EPS && ports.contains(p) {
                    out[i].push((p, flow));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::PortSet;

    fn tp(uops: &[(usize, PortSet, f64)], np: usize, strategy: PortAssignment) -> f64 {
        let assignment = match strategy {
            PortAssignment::Balanced => uops
                .iter()
                .map(|(_, ports, occ)| {
                    let k = ports.count() as f64;
                    ports.iter().map(|p| (p, occ / k)).collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
            PortAssignment::Optimal => optimal_assignment(uops, np),
        };
        let mut loads = vec![0.0; np];
        for parts in &assignment {
            for &(p, amt) in parts {
                loads[p] += amt;
            }
        }
        loads.into_iter().fold(0.0, f64::max)
    }

    #[test]
    fn disjoint_sets_trivially_optimal() {
        let uops = vec![
            (0, PortSet::of(&[0, 1]), 2.0),
            (1, PortSet::of(&[2, 3]), 2.0),
        ];
        assert!((tp(&uops, 4, PortAssignment::Optimal) - 1.0).abs() < 1e-9);
        assert!((tp(&uops, 4, PortAssignment::Balanced) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_beats_balanced_on_overlap() {
        // µ-op A can go anywhere {0,1,2}; µ-op B only to {0}. Balanced puts
        // 1/3 of A (= 1.0 cy) on port 0 on top of B → max load 2.0. The
        // optimum spreads the 4.0 total cycles evenly: 4/3 per port.
        let uops = vec![
            (0, PortSet::of(&[0, 1, 2]), 3.0),
            (1, PortSet::of(&[0]), 1.0),
        ];
        let bal = tp(&uops, 3, PortAssignment::Balanced);
        let opt = tp(&uops, 3, PortAssignment::Optimal);
        assert!((bal - 2.0).abs() < 1e-9, "bal={bal}");
        assert!((opt - 4.0 / 3.0).abs() < 1e-6, "opt={opt}");
    }

    #[test]
    fn single_port_saturation() {
        let uops = vec![(0, PortSet::of(&[2]), 5.0)];
        assert!((tp(&uops, 4, PortAssignment::Optimal) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn hall_bound_with_nested_sets() {
        // Three µ-ops: {0}, {0,1}, {0,1}. demand({0,1}) = 3 → bound 1.5.
        let uops = vec![
            (0, PortSet::of(&[0]), 1.0),
            (1, PortSet::of(&[0, 1]), 1.0),
            (2, PortSet::of(&[0, 1]), 1.0),
        ];
        let opt = tp(&uops, 2, PortAssignment::Optimal);
        assert!((opt - 1.5).abs() < 1e-6, "{opt}");
    }

    #[test]
    fn empty_uops() {
        assert_eq!(optimal_assignment(&[], 4).len(), 0);
    }

    #[test]
    fn flow_assignment_conserves_occupancy() {
        let uops = vec![
            (0, PortSet::of(&[0, 1, 2]), 3.0),
            (1, PortSet::of(&[0]), 1.0),
            (2, PortSet::of(&[1, 2]), 2.0),
        ];
        let a = optimal_assignment(&uops, 3);
        for ((_, _, occ), parts) in uops.iter().zip(&a) {
            let sum: f64 = parts.iter().map(|(_, f)| f).sum();
            assert!((sum - occ).abs() < 1e-6, "sum={sum} occ={occ}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use uarch::PortSet;

    proptest! {
        /// The optimal max-load never exceeds the balanced heuristic's, and
        /// both respect the trivial lower bound total/num_ports.
        #[test]
        fn optimal_le_balanced(raw in proptest::collection::vec((1u32..15, 1u32..40), 1..12)) {
            let np = 4usize;
            let uops: Vec<(usize, PortSet, f64)> = raw
                .iter()
                .enumerate()
                .map(|(i, (mask, occ))| {
                    let m = (mask % 15) + 1; // non-empty subset of 4 ports
                    (i, PortSet(m), *occ as f64 / 4.0)
                })
                .collect();
            let total: f64 = uops.iter().map(|(_, _, o)| o).sum();

            let bal = {
                let mut loads = vec![0.0; np];
                for (_, ports, occ) in &uops {
                    let k = ports.count() as f64;
                    for p in ports.iter() { loads[p] += occ / k; }
                }
                loads.into_iter().fold(0.0f64, f64::max)
            };
            let opt = {
                let a = optimal_assignment(&uops, np);
                let mut loads = vec![0.0; np];
                for parts in &a {
                    for &(p, amt) in parts { loads[p] += amt; }
                }
                loads.into_iter().fold(0.0f64, f64::max)
            };
            prop_assert!(opt <= bal + 1e-6, "opt={opt} bal={bal}");
            prop_assert!(opt + 1e-6 >= total / np as f64);
            // Flow conserves all occupancy.
            let a = optimal_assignment(&uops, np);
            let assigned: f64 = a.iter().flat_map(|v| v.iter().map(|(_, f)| f)).sum();
            prop_assert!((assigned - total).abs() < 1e-5, "assigned={assigned} total={total}");
        }
    }
}
