//! OSACA-style text report for an analysis.

use crate::Analysis;
use uarch::Machine;

/// Renderable report combining a machine and an analysis result.
pub struct Report<'a> {
    pub machine: &'a Machine,
    pub analysis: &'a Analysis,
}

impl<'a> Report<'a> {
    pub fn new(machine: &'a Machine, analysis: &'a Analysis) -> Self {
        Report { machine, analysis }
    }

    /// Render the port-pressure table and summary, in the spirit of
    /// OSACA's output.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let pm = &self.machine.port_model;
        let np = pm.num_ports();

        let _ = writeln!(
            out,
            "In-core analysis — {} ({})",
            self.machine.arch.label(),
            self.machine.part
        );
        let _ = writeln!(out, "{}", "-".repeat(70));

        // Header row with port names.
        let _ = write!(out, "{:>3} {:>5} ", "CP", "lat");
        for p in &pm.ports {
            let _ = write!(out, "{:>6}", p.name);
        }
        let _ = writeln!(out, "  instruction");
        for (i, row) in self.analysis.per_inst.iter().enumerate() {
            let cp = if self.analysis.cp_nodes.contains(&i) {
                "X"
            } else {
                ""
            };
            let _ = write!(out, "{cp:>3} {:>5} ", row.latency);
            for p in 0..np {
                if row.loads[p] > 1e-9 {
                    let _ = write!(out, "{:>6.2}", row.loads[p]);
                } else {
                    let _ = write!(out, "{:>6}", "");
                }
            }
            let mark = if row.eliminated {
                " *"
            } else if row.fallback {
                " ?"
            } else {
                ""
            };
            let _ = writeln!(out, "  {}{}", row.text, mark);
        }
        let _ = write!(out, "{:>3} {:>5} ", "", "sum");
        for p in 0..np {
            let _ = write!(out, "{:>6.2}", self.analysis.port_loads[p]);
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(70));
        let a = self.analysis;
        let _ = writeln!(
            out,
            "Throughput bound (port pressure): {:>7.2} cy/iter",
            a.tp_bound
        );
        let _ = writeln!(
            out,
            "Front-end bound:                  {:>7.2} cy/iter",
            a.frontend_bound
        );
        let _ = writeln!(
            out,
            "Loop-carried dependency:          {:>7.2} cy/iter",
            a.lcd
        );
        let _ = writeln!(
            out,
            "Critical path (one iteration):    {:>7.2} cy",
            a.cp_latency
        );
        let _ = writeln!(
            out,
            "Block prediction:                 {:>7.2} cy/iter",
            a.prediction
        );
        let bottleneck = match a.bottleneck() {
            crate::Bottleneck::PortPressure => {
                let ports: Vec<&str> = a
                    .busiest_ports()
                    .into_iter()
                    .map(|p| pm.ports[p].name)
                    .collect();
                format!("port pressure on [{}]", ports.join(", "))
            }
            crate::Bottleneck::Dependency => "loop-carried dependency".to_string(),
            crate::Bottleneck::FrontEnd => "front-end (dispatch width)".to_string(),
        };
        let _ = writeln!(out, "Bottleneck:                       {bottleneck}");
        if a.fallbacks > 0 {
            let _ = writeln!(
                out,
                "warning: {} instruction(s) resolved via heuristic defaults (marked '?')",
                a.fallbacks
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    #[test]
    fn report_renders_all_sections() {
        let asm = r#"
.L2:
    vmovupd (%rsi,%rax), %zmm0
    vaddpd (%rdx,%rax), %zmm0, %zmm1
    vmovupd %zmm1, (%rdi,%rax)
    addq $64, %rax
    cmpq %rcx, %rax
    jne .L2
"#;
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let m = Machine::golden_cove();
        let a = analyze(&m, &k);
        let text = super::Report::new(&m, &a).render();
        assert!(text.contains("Golden Cove"));
        assert!(text.contains("Block prediction"));
        assert!(text.contains("vaddpd"));
        assert!(text.contains("Loop-carried dependency"));
    }

    #[test]
    fn eliminated_marker_shown() {
        let asm = ".L1:\n xorl %eax, %eax\n addq $1, %rbx\n jne .L1\n";
        let k = parse_kernel(asm, Isa::X86).unwrap();
        let m = Machine::golden_cove();
        let a = analyze(&m, &k);
        let text = super::Report::new(&m, &a).render();
        assert!(text.contains("xorl %eax, %eax *"));
    }
}
