//! Register dependency graph over one loop iteration, with wrap-around
//! (inter-iteration) edges for loop-carried dependency analysis.
//!
//! Nodes are the kernel's instructions; a directed edge `i → j` with weight
//! `w` means instruction `j` reads a register that `i` writes, and the value
//! becomes available `w` cycles after `i` starts. Wrap edges connect the
//! last writer of a register in iteration *k* to readers in iteration
//! *k + 1* that see no earlier intra-iteration writer.

use isa::dataflow::dataflow;
use isa::reg::{RegClass, Register};
use isa::Kernel;
use uarch::{InstrDesc, Machine};

/// One dependency edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// Producer latency in cycles.
    pub weight: f64,
    /// Whether this edge crosses the iteration boundary.
    pub wrap: bool,
    /// Canonical identity of the register the dependency flows through.
    pub via: (RegClass, u8),
}

/// Dependency graph of one loop body.
#[derive(Debug, Clone)]
pub struct DepGraph {
    pub n: usize,
    pub edges: Vec<Edge>,
}

impl DepGraph {
    /// Build the graph for a kernel on a machine (latencies come from the
    /// machine's instruction descriptions).
    pub fn build(machine: &Machine, kernel: &Kernel, descs: &[InstrDesc]) -> DepGraph {
        let n = kernel.instructions.len();
        let flows: Vec<_> = kernel.instructions.iter().map(dataflow).collect();
        let mut edges = Vec::new();

        // Latency of the value `inst[i]` produces in register `r`.
        let write_latency = |i: usize, r: Register| -> f64 {
            let inst = &kernel.instructions[i];
            // Address-writeback updates resolve in 1 cycle regardless of
            // the access latency.
            if let Some(base) = inst.writeback_base() {
                if base.aliases(&r) {
                    return 1.0;
                }
            }
            // Eliminated instructions forward with zero latency.
            if descs[i].uop_count() == 0 && descs[i].latency == 0 {
                return 0.0;
            }
            // Flag results of simple integer ops are ready after 1 cycle.
            if r.class == RegClass::Flags {
                return (descs[i].latency.min(1)) as f64;
            }
            descs[i].latency as f64
        };

        // For each register read by instruction j, find the most recent
        // writer: first scanning backwards within the iteration, then (for
        // the wrap edge) the last writer anywhere in the body.
        for (j, flow_j) in flows.iter().enumerate() {
            for &r in &flow_j.reads {
                // Intra-iteration: nearest earlier writer.
                let intra = (0..j)
                    .rev()
                    .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)));
                match intra {
                    Some(i) => {
                        edges.push(Edge {
                            from: i,
                            to: j,
                            weight: write_latency(i, r),
                            wrap: false,
                            via: r.id(),
                        });
                    }
                    None => {
                        // Wrap: last writer in the body (index ≥ j allowed).
                        if let Some(i) = (0..n)
                            .rev()
                            .find(|&i| flows[i].writes.iter().any(|w| w.aliases(&r)))
                        {
                            edges.push(Edge {
                                from: i,
                                to: j,
                                weight: write_latency(i, r),
                                wrap: true,
                                via: r.id(),
                            });
                        }
                    }
                }
            }
        }

        let _ = machine;
        DepGraph { n, edges }
    }

    /// Outgoing intra-iteration edges of node `i`.
    pub fn intra_out(&self, i: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == i && !e.wrap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};
    use uarch::Machine;

    fn graph(asm: &str, isa: Isa, m: &Machine) -> DepGraph {
        let k = parse_kernel(asm, isa).unwrap();
        let d = m.describe_kernel(&k);
        DepGraph::build(m, &k, &d)
    }

    #[test]
    fn simple_chain() {
        let m = Machine::golden_cove();
        let g = graph(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
            &m,
        );
        // mul(0) → add(1) via zmm2, weight = mul latency 4.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && !e.wrap && (e.weight - 4.0).abs() < 1e-9));
    }

    #[test]
    fn wrap_edge_for_accumulator() {
        let m = Machine::golden_cove();
        let g = graph(
            ".L1:\n vfmadd231pd %zmm1, %zmm2, %zmm3\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
            &m,
        );
        // FMA reads zmm3 which it wrote last iteration → wrap self-edge.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 0 && e.wrap && (e.weight - 4.0).abs() < 1e-9));
    }

    #[test]
    fn flags_edge_cmp_to_branch() {
        let m = Machine::golden_cove();
        let g = graph(
            ".L1:\n addq $8, %rax\n cmpq %rcx, %rax\n jne .L1\n",
            Isa::X86,
            &m,
        );
        // cmp(1) → jne(2) via flags, weight 1.
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && !e.wrap && (e.weight - 1.0).abs() < 1e-9));
    }

    #[test]
    fn writeback_base_has_unit_latency() {
        let m = Machine::neoverse_v2();
        let g = graph(
            ".L1:\n ldr q0, [x0], #16\n cmp x0, x4\n b.ne .L1\n",
            Isa::AArch64,
            &m,
        );
        // ldr(0) wrap-edge to itself through x0 with weight 1 (not the load
        // latency 6).
        let self_edge = g
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 0 && e.wrap)
            .unwrap();
        assert!((self_edge.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eliminated_moves_forward_zero_latency() {
        let m = Machine::golden_cove();
        let g = graph(
            ".L1:\n vmovaps %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
            &m,
        );
        let e = g.edges.iter().find(|e| e.from == 0 && e.to == 1).unwrap();
        assert_eq!(e.weight, 0.0);
    }
}
