//! Machine-model lints (`M001`–`M007`): structural validation of
//! [`uarch::Machine`] models and imported JSON machine files, including
//! cross-checks against the paper's Table II and the hierarchy
//! simulator's realized cache geometry.

use crate::{Diagnostic, Severity};
use uarch::ports::PortCap;
use uarch::{Arch, Machine, PortSet};

/// Run every machine lint (`M001`–`M005`, `M007`) over a model.
pub fn lint_machine(machine: &Machine) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    orphan_ports(machine, &mut diags);
    entry_consistency(machine, &mut diags);
    frontend_sanity(machine, &mut diags);
    table2_crosscheck(machine, &mut diags);
    memory_pipes(machine, &mut diags);
    cache_geometry(machine, &mut diags);
    diags
}

/// Lint a JSON machine file: load failures become `M006`, a loaded model
/// goes through [`lint_machine`]. Returns the machine (if it loaded) so
/// callers can go on to use it.
pub fn lint_machine_file(json: &str) -> (Option<Machine>, Vec<Diagnostic>) {
    match Machine::from_json(json) {
        Ok(m) => {
            let diags = lint_machine(&m);
            (Some(m), diags)
        }
        Err(e) => (
            None,
            vec![
                Diagnostic::new("M006", format!("machine file failed to load: {e}"))
                    .with_help("re-export a template with `incore-cli export --arch <machine>`"),
            ],
        ),
    }
}

/// `M001` — ports no instruction can ever issue to. A port is reachable if
/// some database entry's µ-op names it, a memory pipe set contains it, or
/// the fallback recipes (which issue to every `Branch`/`VecAlu`/`IntAlu`
/// capable port) can select it. Anything else is modeled silicon that the
/// analyzers can never load — dead weight, or more likely a typo in a port
/// set.
fn orphan_ports(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let pm = &machine.port_model;
    let mut reachable = PortSet::EMPTY
        .union(machine.load_ports)
        .union(machine.load_ports_wide)
        .union(machine.store_agu_ports)
        .union(machine.store_data_ports)
        .union(pm.with_cap(PortCap::Branch))
        .union(pm.with_cap(PortCap::VecAlu))
        .union(pm.with_cap(PortCap::IntAlu));
    for entry in &machine.table {
        for uop in &entry.uops {
            reachable = reachable.union(uop.ports);
        }
    }
    for (i, port) in pm.ports.iter().enumerate() {
        if !reachable.contains(i) {
            diags.push(
                Diagnostic::new(
                    "M001",
                    format!(
                        "port `{}` (index {i}) is unreachable: no instruction can issue to it",
                        port.name
                    ),
                )
                .with_span(i + 1, format!("port {} caps {:?}", port.name, port.caps))
                .with_help("add it to an entry's port set or give it an ALU/branch capability"),
            );
        }
    }
}

/// `M002` — instruction-table entries with inconsistent data:
/// non-positive reciprocal throughput or µ-op occupancy (`Error`), a stated
/// throughput below what the entry's own port sets can achieve (`Warning`),
/// compute entries with no µ-ops (`Warning`), and zero-latency compute
/// entries (`Info` — stores and eliminated forms legitimately have none).
fn entry_consistency(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    use uarch::InstrClass;
    for (idx, e) in machine.table.iter().enumerate() {
        let name = e.mnemonics.first().copied().unwrap_or("?");
        let label = format!("entry #{idx} `{name}` ({:?})", e.width);
        let span = |d: Diagnostic| d.with_span(idx + 1, label.clone());

        if e.mnemonics.is_empty() {
            diags.push(span(Diagnostic::new(
                "M002",
                "entry matches no mnemonic".to_string(),
            )));
            continue;
        }
        let mem_like =
            matches!(e.class, InstrClass::Load | InstrClass::Store) || e.mem == Some(true);
        // Memory entries may state rthroughput 0: the real value is
        // synthesized from the pipe count when the machine describes the
        // instruction. Anything else must be positive.
        if e.rthroughput < 0.0 || (e.rthroughput == 0.0 && !mem_like) {
            diags.push(span(Diagnostic::new(
                "M002",
                format!("non-positive reciprocal throughput {}", e.rthroughput),
            )));
        }
        for (u, uop) in e.uops.iter().enumerate() {
            if uop.occupancy <= 0.0 {
                diags.push(span(Diagnostic::new(
                    "M002",
                    format!("µ-op #{u} has non-positive occupancy {}", uop.occupancy),
                )));
            }
            if uop.ports.is_empty() {
                diags.push(span(Diagnostic::new(
                    "M002",
                    format!("µ-op #{u} has an empty port set"),
                )));
            }
        }
        if e.uops.is_empty() && !mem_like && e.class != InstrClass::Eliminated {
            diags.push(span(
                Diagnostic::new(
                    "M002",
                    "compute entry has no µ-ops and no synthesized memory recipe",
                )
                .with_severity(Severity::Warning),
            ));
        }
        if e.latency == 0 && !mem_like && e.class != InstrClass::Eliminated && !e.uops.is_empty() {
            diags.push(span(
                Diagnostic::new("M002", "compute entry has zero latency".to_string())
                    .with_severity(Severity::Info),
            ));
        }
        // The stated throughput can never beat the port-pressure lower
        // bound of the entry's own µ-ops: group µ-ops by port set and take
        // the most loaded group.
        if e.rthroughput > 0.0 && !e.uops.is_empty() {
            let mut groups: Vec<(PortSet, f64)> = Vec::new();
            for uop in &e.uops {
                if uop.ports.is_empty() || uop.occupancy <= 0.0 {
                    continue;
                }
                match groups.iter_mut().find(|(p, _)| *p == uop.ports) {
                    Some((_, occ)) => *occ += uop.occupancy,
                    None => groups.push((uop.ports, uop.occupancy)),
                }
            }
            let bound = groups
                .iter()
                .map(|(p, occ)| occ / p.count() as f64)
                .fold(0.0f64, f64::max);
            if e.rthroughput + 1e-9 < bound {
                diags.push(span(
                    Diagnostic::new(
                        "M002",
                        format!(
                            "stated reciprocal throughput {} is unachievable on its \
                             ports (lower bound {bound:.3})",
                            e.rthroughput
                        ),
                    )
                    .with_severity(Severity::Warning),
                ));
            }
        }
    }
}

/// `M003` — front-end and out-of-order resource sanity: zero widths or
/// sizes and a scheduler bigger than the ROB are impossible (`Error`); a
/// retire width below the dispatch width merely throttles steady state
/// (`Warning`).
fn frontend_sanity(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let mut err = |field: &str, msg: String| {
        diags.push(Diagnostic::new("M003", msg).with_span(0, field.to_string()));
    };
    if machine.dispatch_width == 0 {
        err(
            "dispatch_width",
            "dispatch width is zero; nothing can ever issue".into(),
        );
    }
    if machine.retire_width == 0 {
        err(
            "retire_width",
            "retire width is zero; nothing can ever retire".into(),
        );
    }
    if machine.rob_size == 0 {
        err("rob_size", "reorder buffer size is zero".into());
    }
    if machine.sched_size == 0 {
        err("sched_size", "scheduler size is zero".into());
    }
    if machine.sched_size > machine.rob_size {
        err(
            "sched_size",
            format!(
                "scheduler ({} entries) is larger than the ROB ({} entries)",
                machine.sched_size, machine.rob_size
            ),
        );
    }
    if machine.retire_width > 0 && machine.retire_width < machine.dispatch_width {
        diags.push(
            Diagnostic::new(
                "M003",
                format!(
                    "retire width {} is below dispatch width {}; retirement throttles \
                     steady-state throughput",
                    machine.retire_width, machine.dispatch_width
                ),
            )
            .with_severity(Severity::Warning)
            .with_span(0, "retire_width".to_string()),
        );
    }
}

/// Expected Table II values from the paper, per microarchitecture:
/// `(ports, simd bytes, int units, fp/vec units, loads/cy, load bits,
/// stores/cy, store bits)`.
fn table2_expected(arch: Arch) -> (u32, u32, u32, u32, u32, u32, u32, u32) {
    match arch {
        Arch::NeoverseV2 => (17, 16, 6, 4, 3, 128, 2, 128),
        Arch::GoldenCove => (12, 64, 5, 3, 2, 512, 2, 256),
        Arch::Zen4 => (13, 32, 4, 4, 2, 256, 1, 256),
    }
}

/// `M004` — cross-check the model against the paper's Table II for its
/// microarchitecture. Divergence is a `Warning`, not an error: edited
/// machine files legitimately explore different configurations, but the
/// shipped models must match the paper.
fn table2_crosscheck(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let r = machine.table2_row();
    let (ports, simd, int_u, fp_u, lpc, lbits, spc, sbits) = table2_expected(machine.arch);
    let checks: [(&str, u32, u32); 8] = [
        ("execution ports", r.num_ports, ports),
        ("SIMD width (bytes)", r.simd_width_bytes, simd),
        ("integer units", r.int_units, int_u),
        ("FP/vector units", r.fp_vec_units, fp_u),
        ("loads per cycle", r.loads_per_cycle, lpc),
        ("load width (bits)", r.load_width_bits, lbits),
        ("stores per cycle", r.stores_per_cycle, spc),
        ("store width (bits)", r.store_width_bits, sbits),
    ];
    for (what, got, want) in checks {
        if got != want {
            diags.push(
                Diagnostic::new(
                    "M004",
                    format!(
                        "{what} = {got} diverges from the paper's Table II value {want} \
                         for {}",
                        machine.arch.label()
                    ),
                )
                .with_span(0, what.to_string())
                .with_help("intentional for a what-if model; a bug for the shipped models"),
            );
        }
    }
}

/// `M005` — memory-pipe structure: empty load/store port sets or
/// zero-width pipes make every memory access unissuable (`Error`); the
/// wide-load set not being a subset of the load set, or memory-pipe ports
/// lacking the matching capability, indicate a port-set typo (`Warning`).
fn memory_pipes(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    let mut err = |field: &str, msg: String| {
        diags.push(Diagnostic::new("M005", msg).with_span(0, field.to_string()));
    };
    if machine.load_ports.is_empty() {
        err("load_ports", "no port can execute a load".into());
    }
    if machine.load_ports_wide.is_empty() {
        err(
            "load_ports_wide",
            "no port can execute a full-width load".into(),
        );
    }
    if machine.store_agu_ports.is_empty() {
        err(
            "store_agu_ports",
            "no port can generate a store address".into(),
        );
    }
    if machine.store_data_ports.is_empty() {
        err("store_data_ports", "no port can deliver store data".into());
    }
    if machine.load_width_bits == 0 {
        err("load_width_bits", "load pipe width is zero bits".into());
    }
    if machine.store_width_bits == 0 {
        err("store_width_bits", "store pipe width is zero bits".into());
    }
    let wide_extra = machine.load_ports_wide.intersect(machine.load_ports);
    if wide_extra != machine.load_ports_wide {
        diags.push(
            Diagnostic::new(
                "M005",
                "full-width load ports are not a subset of the load ports".to_string(),
            )
            .with_severity(Severity::Warning)
            .with_span(0, "load_ports_wide".to_string())
            .with_help("the wide set restricts the general set; it cannot add ports"),
        );
    }
    let cap_checks = [
        ("load_ports", machine.load_ports, PortCap::Load),
        (
            "store_agu_ports",
            machine.store_agu_ports,
            PortCap::StoreAgu,
        ),
        (
            "store_data_ports",
            machine.store_data_ports,
            PortCap::StoreData,
        ),
    ];
    for (field, set, cap) in cap_checks {
        for i in set.iter() {
            let has = machine
                .port_model
                .ports
                .get(i)
                .is_some_and(|p| p.caps.contains(&cap));
            if !has {
                let name = machine
                    .port_model
                    .ports
                    .get(i)
                    .map(|p| p.name)
                    .unwrap_or("<out of range>");
                diags.push(
                    Diagnostic::new(
                        "M005",
                        format!("{field} names port `{name}` (index {i}) which lacks the {cap:?} capability"),
                    )
                    .with_severity(Severity::Warning)
                    .with_span(0, field.to_string()),
                );
            }
        }
    }
}

/// `M007` — cache geometry the hierarchy simulator cannot represent.
/// [`memhier::Cache`] rounds the set count down to a power of two, so a
/// declared size that is not `sets × assoc × line` with power-of-two sets
/// is silently simulated at a smaller capacity. A broken line size or
/// zero associativity would make the cache unconstructible (`Error`); a
/// distorted private cache is a `Warning`; a distorted shared cache is
/// `Info`, because the simulator slices it per core and real L3s (2.02
/// MiB slices on SPR, 12 MiB CCD pools on Genoa) are routinely
/// non-power-of-two by design.
fn cache_geometry(machine: &Machine, diags: &mut Vec<Diagnostic>) {
    for (idx, c) in machine.caches.iter().enumerate() {
        let label = format!(
            "cache {} ({} KiB, {}-way, {} B lines{})",
            c.name,
            c.size_kib,
            c.assoc,
            c.line_bytes,
            if c.shared { ", shared" } else { "" }
        );
        let span = move |d: Diagnostic| d.with_span(idx + 1, label.clone());
        if c.line_bytes == 0 || !c.line_bytes.is_power_of_two() {
            diags.push(span(
                Diagnostic::new(
                    "M007",
                    format!(
                        "line size {} B is not a power of two; the hierarchy \
                         simulator cannot index this cache",
                        c.line_bytes
                    ),
                )
                .with_severity(Severity::Error),
            ));
            continue;
        }
        if c.assoc == 0 {
            diags.push(span(
                Diagnostic::new("M007", "associativity is zero".to_string())
                    .with_severity(Severity::Error),
            ));
            continue;
        }
        // The simulator models what a core sees: private caches whole,
        // shared caches as a per-core slice.
        let declared = if c.shared {
            c.size_kib * 1024 / machine.cores.max(1) as u64
        } else {
            c.size_kib * 1024
        };
        let g = memhier::realized_geometry(declared, c.assoc as usize, c.line_bytes as u64);
        if g.capacity_bytes() != declared {
            let severity = if c.shared {
                Severity::Info
            } else {
                Severity::Warning
            };
            diags.push(span(
                Diagnostic::new(
                    "M007",
                    format!(
                        "declared {} capacity {declared} B is not representable: the \
                         simulator realizes {} sets x {}-way x {} B = {} B",
                        if c.shared { "per-core slice" } else { "cache" },
                        g.sets,
                        g.assoc,
                        g.line_bytes,
                        g.capacity_bytes()
                    ),
                )
                .with_severity(severity)
                .with_help(
                    "size the cache as sets x assoc x line with power-of-two sets, \
                     or accept the realized capacity",
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch::ports::Port;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn shipped_models_have_no_errors() {
        for m in uarch::all_machines() {
            let diags = lint_machine(&m);
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{}: {errors:?}", m.arch.label());
        }
    }

    #[test]
    fn m001_orphan_port() {
        let mut m = Machine::golden_cove();
        m.port_model.ports.push(Port {
            name: "X9",
            caps: vec![],
        });
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M001" && d.message.contains("X9")),
            "{diags:?}"
        );
    }

    #[test]
    fn m002_zero_throughput_is_an_error() {
        let mut m = Machine::zen4();
        // Pick a compute entry: memory entries may legitimately state 0.
        let idx = m
            .table
            .iter()
            .position(|e| {
                !matches!(e.class, uarch::InstrClass::Load | uarch::InstrClass::Store)
                    && e.mem != Some(true)
            })
            .unwrap();
        m.table[idx].rthroughput = 0.0;
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M002" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn m002_unachievable_throughput_is_a_warning() {
        let mut m = Machine::zen4();
        // Find a compute entry and claim it is faster than its ports allow.
        let idx = m.table.iter().position(|e| !e.uops.is_empty()).unwrap();
        m.table[idx].rthroughput = 1e-6;
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M002" && d.message.contains("unachievable")),
            "{diags:?}"
        );
    }

    #[test]
    fn m003_zero_dispatch_and_inverted_sizes() {
        let mut m = Machine::neoverse_v2();
        m.dispatch_width = 0;
        m.sched_size = m.rob_size + 1;
        let diags = lint_machine(&m);
        let m003: Vec<_> = diags.iter().filter(|d| d.code == "M003").collect();
        assert!(
            m003.iter().any(|d| d.message.contains("dispatch")),
            "{diags:?}"
        );
        assert!(
            m003.iter().any(|d| d.message.contains("scheduler")),
            "{diags:?}"
        );
    }

    #[test]
    fn m004_divergence_from_table2() {
        let mut m = Machine::golden_cove();
        m.int_units += 1;
        let diags = lint_machine(&m);
        let d = diags.iter().find(|d| d.code == "M004").expect("M004");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("integer units"));
    }

    #[test]
    fn m005_empty_load_ports() {
        let mut m = Machine::golden_cove();
        m.load_ports = PortSet::EMPTY;
        m.load_ports_wide = PortSet::EMPTY;
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M005" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn m005_wide_loads_must_be_a_subset() {
        let mut m = Machine::golden_cove();
        // Add a port to the wide set that is not in the general load set.
        let extra = (0..m.port_model.num_ports())
            .find(|i| !m.load_ports.contains(*i))
            .unwrap();
        m.load_ports_wide = m.load_ports_wide.union(PortSet::single(extra));
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M005" && d.message.contains("subset")),
            "{diags:?}"
        );
    }

    #[test]
    fn m007_shared_l3_slices_are_info_only() {
        // Every shipped L3 slice is non-representable (2.02 MiB on SPR,
        // 1.5 MiB on GCS, 12 MiB CCD pools on Genoa) — the finding must be
        // advisory so the shipped models stay clean under --strict.
        for m in uarch::all_machines() {
            let diags = lint_machine(&m);
            let m007: Vec<_> = diags.iter().filter(|d| d.code == "M007").collect();
            assert!(!m007.is_empty(), "{}: expected L3 finding", m.arch.label());
            for d in &m007 {
                assert_eq!(d.severity, Severity::Info, "{d}");
                assert!(d.message.contains("per-core slice"), "{d}");
            }
        }
    }

    #[test]
    fn m007_distorted_private_cache_is_a_warning() {
        let mut m = Machine::golden_cove();
        let idx = m.caches.iter().position(|c| !c.shared).unwrap();
        m.caches[idx].size_kib = 48; // 48 KiB 12-way: 64 sets realize 48 KiB...
        m.caches[idx].assoc = 8; // ...but 8-way needs 96 sets -> rounds to 64
        let diags = lint_machine(&m);
        let d = diags
            .iter()
            .find(|d| d.code == "M007" && d.severity == Severity::Warning)
            .expect("private-cache M007 warning");
        assert!(d.message.contains("not representable"), "{d}");
    }

    #[test]
    fn m007_broken_line_size_is_an_error() {
        let mut m = Machine::zen4();
        m.caches[0].line_bytes = 48;
        let diags = lint_machine(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "M007" && d.severity == Severity::Error),
            "{diags:?}"
        );
        let mut m = Machine::zen4();
        m.caches[0].assoc = 0;
        let diags = lint_machine(&m);
        assert!(
            diags.iter().any(|d| d.code == "M007"
                && d.severity == Severity::Error
                && d.message.contains("associativity")),
            "{diags:?}"
        );
    }

    #[test]
    fn m006_bad_machine_file() {
        let (m, diags) = lint_machine_file("{ this is not json");
        assert!(m.is_none());
        assert!(codes(&diags).contains(&"M006"));
        let (m, diags) = lint_machine_file("{\"arch\": \"pentium\"}");
        assert!(m.is_none());
        assert!(codes(&diags).contains(&"M006"));
    }

    #[test]
    fn m006_roundtrip_through_json_stays_clean() {
        let json = Machine::golden_cove().to_json();
        let (m, diags) = lint_machine_file(&json);
        assert!(m.is_some());
        assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "{diags:?}"
        );
    }
}
