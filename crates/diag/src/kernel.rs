//! Kernel lints (`K001`–`K006`): static analysis over parsed assembly.

use crate::{Diagnostic, Severity};
use isa::dataflow::{dataflow, Dataflow};
use isa::ext::{classify, IsaExt};
use isa::reg::{RegClass, Register};
use isa::{Isa, Kernel};
use uarch::Machine;

/// Lint an assembly listing: marker structure (`K005`), parse failures
/// (`K006`), then — when the listing parses — every kernel lint via
/// [`lint_kernel`]. Returns the parsed kernel (if any) so callers can go on
/// to analyze it.
pub fn lint_assembly(machine: &Machine, asm: &str) -> (Option<Kernel>, Vec<Diagnostic>) {
    let mut diags = marker_lints(asm);
    match isa::parse_kernel(asm, machine.isa) {
        Ok(kernel) => {
            diags.extend(lint_kernel(machine, &kernel));
            (Some(kernel), diags)
        }
        Err(e) => {
            diags.push(
                Diagnostic::new("K006", e.message.clone())
                    .with_span(e.line, e.source_line.clone())
                    .with_help("fix the assembly syntax; see the parser error above"),
            );
            (None, diags)
        }
    }
}

/// `K005` — OSACA/IACA marker structure. The parser silently falls back to
/// loop auto-detection when markers are unpaired or out of order, which
/// almost certainly analyzes the wrong region; make that an error.
fn marker_lints(asm: &str) -> Vec<Diagnostic> {
    let is_begin = |l: &str| l.contains("OSACA-BEGIN") || l.contains("IACA START");
    let is_end = |l: &str| l.contains("OSACA-END") || l.contains("IACA END");
    let begins: Vec<usize> = asm
        .lines()
        .enumerate()
        .filter(|(_, l)| is_begin(l))
        .map(|(i, _)| i + 1)
        .collect();
    let ends: Vec<usize> = asm
        .lines()
        .enumerate()
        .filter(|(_, l)| is_end(l))
        .map(|(i, _)| i + 1)
        .collect();

    let mut diags = Vec::new();
    let line_at = |n: usize| asm.lines().nth(n - 1).unwrap_or("").trim().to_string();
    match (begins.first(), ends.first()) {
        (Some(&b), None) => diags.push(
            Diagnostic::new(
                "K005",
                "analysis BEGIN marker without a matching END marker",
            )
            .with_span(b, line_at(b))
            .with_help("add an OSACA-END / IACA END marker after the kernel"),
        ),
        (None, Some(&e)) => diags.push(
            Diagnostic::new(
                "K005",
                "analysis END marker without a matching BEGIN marker",
            )
            .with_span(e, line_at(e))
            .with_help("add an OSACA-BEGIN / IACA START marker before the kernel"),
        ),
        (Some(&b), Some(&e)) if e < b => diags.push(
            Diagnostic::new(
                "K005",
                format!(
                    "analysis markers are out of order (END on line {e}, BEGIN on line {b}); \
                     the marked region is silently ignored"
                ),
            )
            .with_span(e, line_at(e))
            .with_help("swap the markers so BEGIN precedes END"),
        ),
        _ => {}
    }
    if begins.len() > 1 || ends.len() > 1 {
        diags.push(
            Diagnostic::new(
                "K005",
                format!(
                    "multiple analysis markers found ({} BEGIN, {} END); only the first \
                     pair is used",
                    begins.len(),
                    ends.len()
                ),
            )
            .with_severity(Severity::Warning)
            .with_help("keep exactly one BEGIN/END pair per listing"),
        );
    }
    diags
}

/// Run every kernel lint (`K001`–`K004`) over a parsed kernel.
pub fn lint_kernel(machine: &Machine, kernel: &Kernel) -> Vec<Diagnostic> {
    let flows: Vec<Dataflow> = kernel.instructions.iter().map(dataflow).collect();
    let mut diags = Vec::new();
    read_before_write(kernel, &flows, &mut diags);
    dead_stores(kernel, &flows, &mut diags);
    loop_structure(machine, kernel, &mut diags);
    mixed_simd(kernel, &mut diags);
    diags
}

fn aliases_any(regs: &[Register], r: Register) -> bool {
    regs.iter().any(|x| x.aliases(&r))
}

/// ISA-aware register name for messages. [`Register`]'s own `Display` uses
/// x86 GPR names (the register file is ISA-agnostic internally), which
/// would render AArch64's `x4` as `rsp` in a diagnostic.
fn reg_name(isa: Isa, r: Register) -> String {
    match (isa, r.class) {
        (Isa::AArch64, RegClass::Gpr) => format!("x{}", r.index),
        (Isa::AArch64, RegClass::Vec) => format!("v{}", r.index),
        _ => r.to_string(),
    }
}

/// `K001` — registers read but never written anywhere in the block. For
/// general registers these are the block's live-in values (loop inputs:
/// pointers, bounds, constants) and are reported as `Info`. Flags are
/// special-cased: a conditional branch consuming flags that no instruction
/// in the block sets means the loop condition never changes — a `Warning`.
fn read_before_write(kernel: &Kernel, flows: &[Dataflow], diags: &mut Vec<Diagnostic>) {
    let mut reported: Vec<Register> = Vec::new();
    for (i, flow) in flows.iter().enumerate() {
        for &r in &flow.reads {
            if matches!(r.class, RegClass::Zero | RegClass::Ip) {
                continue;
            }
            if reported.iter().any(|x| x.aliases(&r)) {
                continue;
            }
            let written = flows.iter().any(|f| aliases_any(&f.writes, r));
            if written {
                continue;
            }
            reported.push(r);
            let inst = &kernel.instructions[i];
            let d = if r.class == RegClass::Flags {
                Diagnostic::new(
                    "K001",
                    "flags are consumed but no instruction in the block sets them",
                )
                .with_severity(Severity::Warning)
                .with_span(inst.line, inst.raw.clone())
                .with_help(
                    "the loop condition never changes inside the block; is the \
                     compare/test instruction missing from the region?",
                )
            } else {
                Diagnostic::new(
                    "K001",
                    format!(
                        "register `{}` is read but never written in the block",
                        reg_name(kernel.isa, r)
                    ),
                )
                .with_span(inst.line, inst.raw.clone())
                .with_help("a live-in value (pointer, bound, or constant) — usually fine")
            };
            diags.push(d);
        }
    }
}

/// `K002` — dead stores: a register write that is overwritten before any
/// read. For loop kernels the scan is cyclic (the body repeats), so a value
/// produced late and consumed early next iteration is correctly live; for
/// straight-line blocks the scan is linear and values reaching the end are
/// assumed live-out.
fn dead_stores(kernel: &Kernel, flows: &[Dataflow], diags: &mut Vec<Diagnostic>) {
    let n = flows.len();
    let cyclic = kernel.loop_label.is_some();
    for i in 0..n {
        for &w in &flows[i].writes {
            // Flags are rewritten by nearly every ALU op; the IP/zero/stack
            // registers have their own semantics. None are useful here.
            if matches!(
                w.class,
                RegClass::Flags | RegClass::Zero | RegClass::Ip | RegClass::Sp
            ) {
                continue;
            }
            // Walk forward in program order; for loops, wrap around and end
            // back at the writing instruction itself (an RMW instruction
            // reading its own previous value keeps it live).
            let order: Vec<usize> = if cyclic {
                (i + 1..n).chain(0..=i).collect()
            } else {
                (i + 1..n).collect()
            };
            let mut dead = false;
            for j in order {
                if aliases_any(&flows[j].reads, w) {
                    break; // live
                }
                if aliases_any(&flows[j].writes, w) {
                    dead = j != i || !aliases_any(&flows[i].reads, w);
                    break;
                }
            }
            if dead {
                let inst = &kernel.instructions[i];
                diags.push(
                    Diagnostic::new(
                        "K002",
                        format!(
                            "register `{}` is written here but overwritten before any read",
                            reg_name(kernel.isa, w)
                        ),
                    )
                    .with_span(inst.line, inst.raw.clone())
                    .with_help("the write is dead; remove it or check the register choice"),
                );
            }
        }
    }
}

/// `K003` — loop-carried structure. A detected loop whose dependency graph
/// has *no* wrap (iteration-crossing) edge has no induction variable and no
/// carried value at all: the trip count cannot change, so the analysis
/// region is probably wrong. Reported as `Warning`. When no loop was
/// detected at all the block is analyzed as straight-line code — an `Info`
/// note, since throughput analysis of a non-loop is usually a mistake in
/// this workflow.
fn loop_structure(machine: &Machine, kernel: &Kernel, diags: &mut Vec<Diagnostic>) {
    if kernel.instructions.is_empty() {
        return;
    }
    match &kernel.loop_label {
        None => diags.push(
            Diagnostic::new(
                "K003",
                "no loop detected; the block is analyzed as straight-line code",
            )
            .with_severity(Severity::Info)
            .with_help("add OSACA-BEGIN/OSACA-END markers or a backward branch"),
        ),
        Some(label) => {
            let descs = machine.describe_kernel(kernel);
            let graph = incore::depgraph::DepGraph::build(machine, kernel, &descs);
            if !graph.edges.iter().any(|e| e.wrap) {
                diags.push(
                    Diagnostic::new(
                        "K003",
                        format!(
                            "loop `{label}` has no loop-carried dependency at all — \
                             no induction variable or carried value crosses iterations"
                        ),
                    )
                    .with_help(
                        "the loop condition is constant; check that the whole body \
                         (including the counter update) is inside the analyzed region",
                    ),
                );
            }
        }
    }
}

/// `K004` — mixed SIMD extension domains. Mixing legacy (non-VEX) SSE with
/// AVX/AVX-512 in one block triggers SSE/AVX transition stalls or false
/// dependencies on the upper lanes — a `Warning`. Mixing NEON and SVE on
/// AArch64 is architecturally fine but usually means the compiler only
/// partially vectorized — an `Info` note.
fn mixed_simd(kernel: &Kernel, diags: &mut Vec<Diagnostic>) {
    let exts: Vec<IsaExt> = kernel.instructions.iter().map(classify).collect();
    match kernel.isa {
        Isa::X86 => {
            let sse = exts.iter().position(|e| *e == IsaExt::Sse);
            let avx = exts
                .iter()
                .any(|e| matches!(e, IsaExt::Avx | IsaExt::Avx512));
            if let (Some(at), true) = (sse, avx) {
                let inst = &kernel.instructions[at];
                diags.push(
                    Diagnostic::new(
                        "K004",
                        "legacy SSE instruction in a block that also uses AVX/AVX-512",
                    )
                    .with_span(inst.line, inst.raw.clone())
                    .with_help(
                        "SSE/AVX transitions stall or create false upper-lane \
                         dependencies; recompile the SSE code as VEX (`v`-prefixed)",
                    ),
                );
            }
        }
        Isa::AArch64 => {
            let neon = exts.iter().position(|e| *e == IsaExt::Neon);
            let sve = exts.contains(&IsaExt::Sve);
            if let (Some(at), true) = (neon, sve) {
                let inst = &kernel.instructions[at];
                diags.push(
                    Diagnostic::new("K004", "NEON instruction in a block that also uses SVE")
                        .with_severity(Severity::Info)
                        .with_span(inst.line, inst.raw.clone())
                        .with_help("possibly a partially vectorized loop"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spr() -> Machine {
        Machine::golden_cove()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_kernel_has_no_warnings_or_errors() {
        let asm = ".L1:
            vmovupd (%rsi,%rax), %zmm0
            vfmadd231pd %zmm1, %zmm2, %zmm0
            vmovupd %zmm0, (%rdi,%rax)
            addq $64, %rax
            cmpq %rcx, %rax
            jne .L1
        ";
        let (k, diags) = lint_assembly(&spr(), asm);
        assert!(k.is_some());
        assert!(
            !diags.iter().any(|d| d.severity >= Severity::Warning),
            "unexpected: {diags:?}"
        );
    }

    #[test]
    fn k001_flags_without_setter() {
        let asm = ".L1:\n vmovupd (%rsi), %zmm0\n jne .L1\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        let f = diags
            .iter()
            .find(|d| d.code == "K001" && d.severity == Severity::Warning);
        assert!(f.is_some(), "{diags:?}");
    }

    #[test]
    fn k002_dead_store_across_back_edge_is_live() {
        // %zmm0 is written at the bottom and read at the top of the next
        // iteration — live, not a dead store.
        let asm = ".L1:
            vaddpd %zmm0, %zmm1, %zmm2
            vmovupd %zmm2, (%rdi)
            vmovupd (%rsi), %zmm0
            subq $1, %rax
            jne .L1
        ";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(!codes(&diags).contains(&"K002"), "{diags:?}");
    }

    #[test]
    fn k002_detects_true_dead_store() {
        let asm = ".L1:
            vmovupd (%rsi), %zmm0
            vmovupd (%rdi), %zmm0
            vmovupd %zmm0, (%rdx)
            subq $1, %rax
            jne .L1
        ";
        let (_, diags) = lint_assembly(&spr(), asm);
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "K002").collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn k003_loop_without_carried_dependency() {
        // The backward branch is unconditional and nothing crosses the
        // iteration boundary.
        let asm = ".L1:\n vxorpd %xmm9, %xmm8, %xmm7\n jmp .L1\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "K003" && d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn k003_info_for_straight_line_code() {
        let asm = "vaddpd %zmm0, %zmm1, %zmm2\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "K003" && d.severity == Severity::Info),
            "{diags:?}"
        );
    }

    #[test]
    fn k004_mixed_sse_avx() {
        let asm = ".L1:
            addsd %xmm0, %xmm1
            vaddpd %ymm2, %ymm3, %ymm4
            subq $1, %rax
            jne .L1
        ";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "K004" && d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn k004_pure_avx512_is_clean() {
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(!codes(&diags).contains(&"K004"), "{diags:?}");
    }

    #[test]
    fn k005_unordered_markers() {
        let asm = "# OSACA-END\n.L1:\n addq $1, %rax\n jne .L1\n# OSACA-BEGIN\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "K005" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn k005_well_formed_markers_are_clean() {
        let asm = "# OSACA-BEGIN\n.L1:\n subq $1, %rax\n jne .L1\n# OSACA-END\n";
        let (_, diags) = lint_assembly(&spr(), asm);
        assert!(!codes(&diags).contains(&"K005"), "{diags:?}");
    }

    #[test]
    fn k006_parse_error_with_location() {
        let asm = ".L1:\n movq %bogus, %rax\n jne .L1\n";
        let (k, diags) = lint_assembly(&spr(), asm);
        assert!(k.is_none());
        let e = diags.iter().find(|d| d.code == "K006").expect("K006");
        assert_eq!(e.severity, Severity::Error);
        assert_eq!(e.span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn aarch64_neon_sve_mix_is_info() {
        let asm = ".L1:
            fadd v0.2d, v1.2d, v2.2d
            fmla z3.d, p0/m, z4.d, z5.d
            subs x0, x0, #1
            b.ne .L1
        ";
        let (_, diags) = lint_assembly(&Machine::neoverse_v2(), asm);
        let k4 = diags.iter().find(|d| d.code == "K004").expect("K004");
        assert_eq!(k4.severity, Severity::Info);
    }
}
