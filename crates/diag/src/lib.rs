//! Structured diagnostics & lint subsystem.
//!
//! A reusable static-analysis framework over the three layers of this
//! workspace, in the spirit of `rustc`'s diagnostics and clang-tidy's rule
//! registry:
//!
//! * **Kernel lints** (`K...`) — run over parsed assembly: read-before-write
//!   inputs, dead stores, missing loop-carried structure, mixed SIMD
//!   extension domains, analysis-marker mistakes, and parse failures
//!   surfaced as recoverable diagnostics instead of panics.
//! * **Machine-model lints** (`M...`) — run over [`uarch::Machine`] models
//!   and imported JSON machine files: orphan ports, inconsistent
//!   latency/throughput/port data, front-end sanity, cross-checks against
//!   the paper's Table II, and memory-pipe structure.
//! * **Predictor-divergence lints** (`D...`) — flag kernels where the
//!   in-core model and the MCA-style baseline disagree by more than 2×, or
//!   where the cycle-level simulator disagrees with both.
//!
//! Every finding is a [`Diagnostic`] with a stable rule code, a severity, an
//! optional source [`Span`], a message, and optional help text. The full
//! rule catalog is available through [`rules`]; renderers for human-readable
//! text ([`render_text`]) and CI-friendly JSON ([`render_json`]) are
//! provided, plus an [`exit_code`] policy for command-line use.
//!
//! ```
//! use diag::{lint_assembly, Severity};
//! let machine = uarch::Machine::golden_cove();
//! let asm = ".L1:\n  vaddpd %zmm0, %zmm1, %zmm2\n  subq $1, %rax\n  jne .L1\n";
//! let (kernel, diags) = lint_assembly(&machine, asm);
//! assert!(kernel.is_some());
//! assert!(!diags.iter().any(|d| d.severity == Severity::Error));
//! ```

pub mod divergence;
pub mod kernel;
pub mod machine;

pub use divergence::{
    attribution_diags, divergence_diags, divergence_diags_named, lint_divergence,
    lint_divergence_predictors, DivergenceReport,
};
pub use kernel::{lint_assembly, lint_kernel};
pub use machine::{lint_machine, lint_machine_file};

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings fail a lint run (nonzero exit); `Warning` findings fail
/// only under `--strict`; `Info` findings are advisory and never fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Source location of a finding: a 1-based line number plus the offending
/// source text (an assembly line, or a model element name for machine
/// lints). Machine-level findings that have no meaningful line use 0; the
/// renderers then show only the snippet (the model element's path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub line: usize,
    pub snippet: String,
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `"K002"`. Codes never change meaning; retired
    /// rules are not reused.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Where in the linted artifact the finding is, if localizable.
    pub span: Option<Span>,
    /// Optional advice on how to fix or silence the finding.
    pub help: Option<String>,
}

impl Diagnostic {
    /// New diagnostic with the rule's default severity from the registry.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        let severity = rule(code)
            .map(|r| r.default_severity)
            .unwrap_or(Severity::Error);
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            help: None,
        }
    }

    pub fn with_span(mut self, line: usize, snippet: impl Into<String>) -> Self {
        self.span = Some(Span {
            line,
            snippet: snippet.into(),
        });
        self
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Override the registry's default severity (e.g. a rule that downgrades
    /// to `Info` in a benign variant).
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(s) = &self.span {
            if s.line > 0 {
                write!(f, " line {}", s.line)?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// A registered lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    pub code: &'static str,
    /// Short kebab-case name, e.g. `"dead-store"`.
    pub name: &'static str,
    pub default_severity: Severity,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
}

/// The complete rule catalog. Codes are stable across releases.
pub const RULES: &[Rule] = &[
    Rule {
        code: "K001",
        name: "read-before-write",
        default_severity: Severity::Info,
        summary: "a register is read but never written inside the block (loop input); \
                  warns when a branch consumes flags no instruction sets",
    },
    Rule {
        code: "K002",
        name: "dead-store",
        default_severity: Severity::Warning,
        summary: "a register write is overwritten before any read (cyclically, across \
                  the loop back-edge)",
    },
    Rule {
        code: "K003",
        name: "loop-structure",
        default_severity: Severity::Warning,
        summary: "a detected loop has no loop-carried dependency at all (suspicious \
                  trip-count structure); informs when no loop was detected",
    },
    Rule {
        code: "K004",
        name: "mixed-simd-domains",
        default_severity: Severity::Warning,
        summary: "legacy SSE instructions mix with AVX/AVX-512 in one block (SSE/AVX \
                  transition stalls); informs on mixed NEON/SVE",
    },
    Rule {
        code: "K005",
        name: "marker-mismatch",
        default_severity: Severity::Error,
        summary: "OSACA/IACA analysis markers are unpaired or out of order, so the \
                  marked region would be silently ignored",
    },
    Rule {
        code: "K006",
        name: "parse-error",
        default_severity: Severity::Error,
        summary: "the assembly could not be parsed",
    },
    Rule {
        code: "K007",
        name: "undefined-flag-read",
        default_severity: Severity::Warning,
        summary: "a non-branch instruction consumes condition flags that no \
                  instruction sets on any path, including the loop back-edge",
    },
    Rule {
        code: "K008",
        name: "loop-carried-dead-value",
        default_severity: Severity::Warning,
        summary: "a value computed every iteration never reaches a store, branch, or \
                  loop-carried dependency cycle — dead in steady state (informs on \
                  pure loads, a deliberate microbenchmark idiom)",
    },
    Rule {
        code: "K009",
        name: "unconsumed-comparison",
        default_severity: Severity::Warning,
        summary: "a comparison's flag result is overwritten before any consumer \
                  reads it (cyclically, across the back-edge)",
    },
    Rule {
        code: "K010",
        name: "depgraph-divergence",
        default_severity: Severity::Error,
        summary: "the dataflow framework and incore::depgraph disagree on the \
                  kernel's dependency edges — the linter and the model would \
                  silently model different critical paths",
    },
    Rule {
        code: "M001",
        name: "orphan-port",
        default_severity: Severity::Warning,
        summary: "a port exists that no database entry, memory pipe, or fallback \
                  recipe can ever issue to",
    },
    Rule {
        code: "M002",
        name: "inconsistent-entry",
        default_severity: Severity::Error,
        summary: "an instruction-table entry has inconsistent latency, throughput, \
                  or port data",
    },
    Rule {
        code: "M003",
        name: "frontend-sanity",
        default_severity: Severity::Error,
        summary: "front-end / out-of-order resource sizes are impossible (zero widths, \
                  scheduler larger than the ROB, ...)",
    },
    Rule {
        code: "M004",
        name: "table2-divergence",
        default_severity: Severity::Warning,
        summary: "the model diverges from the paper's Table II for its \
                  microarchitecture",
    },
    Rule {
        code: "M005",
        name: "memory-pipes",
        default_severity: Severity::Error,
        summary: "load/store port sets or pipe widths are structurally broken",
    },
    Rule {
        code: "M006",
        name: "machine-file",
        default_severity: Severity::Error,
        summary: "a JSON machine file failed to load",
    },
    Rule {
        code: "M007",
        name: "cache-geometry",
        default_severity: Severity::Warning,
        summary: "a declared cache size is not representable by the hierarchy \
                  simulator's power-of-two set geometry, so the simulated capacity \
                  silently differs from the declared one",
    },
    Rule {
        code: "M008",
        name: "corpus-coverage",
        default_severity: Severity::Error,
        summary: "an instruction form used by the benchmark corpus is missing from \
                  the machine's database (heuristic timing would be silently used) \
                  or decodes to a µ-op that no issue port can execute",
    },
    Rule {
        code: "M009",
        name: "latency-throughput-consistency",
        default_severity: Severity::Warning,
        summary: "a fully pipelined entry documents a reciprocal throughput larger \
                  than its latency — a single dependency chain would outrun the \
                  documented steady-state rate",
    },
    Rule {
        code: "M010",
        name: "issue-capacity",
        default_severity: Severity::Warning,
        summary: "declared dispatch width is not backed by issue capacity (more \
                  dispatch slots than ports, or a scheduler smaller than one \
                  dispatch group)",
    },
    Rule {
        code: "S001",
        name: "sim-clock-monotonicity",
        default_severity: Severity::Error,
        summary: "the simulator's event clock failed to advance strictly",
    },
    Rule {
        code: "S002",
        name: "sim-port-conservation",
        default_severity: Severity::Error,
        summary: "the simulator granted a port already taken this cycle or busy \
                  beyond it",
    },
    Rule {
        code: "S003",
        name: "sim-early-wakeup",
        default_severity: Severity::Error,
        summary: "the simulator issued a µ-op before all of its operands were ready",
    },
    Rule {
        code: "S004",
        name: "sim-teleport-equivalence",
        default_severity: Severity::Error,
        summary: "the simulator's post-teleport state fingerprint diverged from the \
                  pre-jump fingerprint",
    },
    Rule {
        code: "D001",
        name: "predictor-divergence",
        default_severity: Severity::Warning,
        summary: "the in-core model and the MCA-style baseline diverge by more than \
                  2x on the same kernel",
    },
    Rule {
        code: "D002",
        name: "simulator-divergence",
        default_severity: Severity::Warning,
        summary: "the cycle-level simulator disagrees with both analytical models by \
                  more than 2x",
    },
    Rule {
        code: "D003",
        name: "divergence-without-attribution",
        default_severity: Severity::Warning,
        summary: "a divergent kernel has no dominating bound resource — the predictors \
                  disagree and the attribution report cannot say which port, dependency \
                  chain, or front-end limit is responsible",
    },
];

/// The full rule catalog.
pub fn rules() -> &'static [Rule] {
    RULES
}

/// Look up a rule by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// Count diagnostics at each severity: `(info, warning, error)`.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Info => c.0 += 1,
            Severity::Warning => c.1 += 1,
            Severity::Error => c.2 += 1,
        }
    }
    c
}

/// CI exit-code policy: 1 if any `Error` (or, under `strict`, any
/// `Warning`), else 0. `Info` findings never fail a run.
pub fn exit_code(diags: &[Diagnostic], strict: bool) -> i32 {
    let (_, warnings, errors) = counts(diags);
    if errors > 0 || (strict && warnings > 0) {
        1
    } else {
        0
    }
}

/// Render diagnostics as human-readable text, one finding per block, with a
/// trailing summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
        if let Some(s) = &d.span {
            let _ = writeln!(out, "    | {}", s.snippet);
        }
        if let Some(h) = &d.help {
            let _ = writeln!(out, "    = help: {h}");
        }
    }
    let (info, warning, error) = counts(diags);
    let _ = writeln!(
        out,
        "{} finding(s): {error} error(s), {warning} warning(s), {info} info",
        diags.len()
    );
    out
}

/// Canonical rendering order: rule code, then line, then snippet. Lint
/// passes run in whatever order the driver composes them (and, for the
/// corpus, on several threads), so machine-readable output sorts
/// diagnostics canonically — `--json` diffs and `--baseline` files stay
/// byte-stable across runs and thread counts.
pub fn sorted(diags: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut v = diags.to_vec();
    v.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.code,
                d.span.as_ref().map_or(0, |s| s.line),
                d.span.as_ref().map_or(String::new(), |s| s.snippet.clone()),
            )
        };
        key(a).cmp(&key(b))
    });
    v
}

/// Render diagnostics as a JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "counts": { "info": 0, "warning": 1, "error": 0 },
///   "diagnostics": [
///     { "code": "K002", "name": "dead-store", "severity": "warning",
///       "message": "...", "line": 4, "snippet": "...", "help": "..." }
///   ]
/// }
/// ```
///
/// `line`, `snippet`, and `help` are omitted when absent.
pub fn render_json(diags: &[Diagnostic]) -> String {
    use serde_json::{Map, Number, Value};
    let diags = &sorted(diags)[..];
    let (info, warning, error) = counts(diags);
    let mut counts_obj = Map::new();
    counts_obj.insert("info".into(), Value::Number(Number::PosInt(info as u64)));
    counts_obj.insert(
        "warning".into(),
        Value::Number(Number::PosInt(warning as u64)),
    );
    counts_obj.insert("error".into(), Value::Number(Number::PosInt(error as u64)));

    let items: Vec<Value> = diags
        .iter()
        .map(|d| {
            let mut o = Map::new();
            o.insert("code".into(), Value::String(d.code.into()));
            if let Some(r) = rule(d.code) {
                o.insert("name".into(), Value::String(r.name.into()));
            }
            o.insert("severity".into(), Value::String(d.severity.label().into()));
            o.insert("message".into(), Value::String(d.message.clone()));
            if let Some(s) = &d.span {
                if s.line > 0 {
                    o.insert("line".into(), Value::Number(Number::PosInt(s.line as u64)));
                }
                o.insert("snippet".into(), Value::String(s.snippet.clone()));
            }
            if let Some(h) = &d.help {
                o.insert("help".into(), Value::String(h.clone()));
            }
            Value::Object(o)
        })
        .collect();

    let mut root = Map::new();
    root.insert("version".into(), Value::Number(Number::PosInt(1)));
    root.insert("counts".into(), Value::Object(counts_obj));
    root.insert("diagnostics".into(), Value::Array(items));
    serde_json::to_string_pretty(&Value::Object(root)).expect("diagnostics serialize")
}

/// Render a multi-target lint run (e.g. several machine models, or a
/// machine plus a kernel) as one JSON document:
///
/// ```json
/// {
///   "version": 1,
///   "counts": { "info": 0, "warning": 0, "error": 1 },
///   "targets": [
///     { "name": "machine:golden-cove", "counts": {...}, "diagnostics": [...] }
///   ]
/// }
/// ```
///
/// Per-diagnostic objects are identical to [`render_json`]'s.
pub fn render_json_targets(targets: &[(String, Vec<Diagnostic>)]) -> String {
    use serde_json::{Map, Number, Value};
    let count_obj = |diags: &[Diagnostic]| {
        let (info, warning, error) = counts(diags);
        let mut o = Map::new();
        o.insert("info".into(), Value::Number(Number::PosInt(info as u64)));
        o.insert(
            "warning".into(),
            Value::Number(Number::PosInt(warning as u64)),
        );
        o.insert("error".into(), Value::Number(Number::PosInt(error as u64)));
        Value::Object(o)
    };
    let all: Vec<Diagnostic> = targets
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let items: Vec<Value> = targets
        .iter()
        .map(|(name, diags)| {
            // Reuse the single-list renderer for the diagnostic objects.
            let rendered: Value =
                serde_json::from_str(&render_json(diags)).expect("own output parses");
            let mut o = Map::new();
            o.insert("name".into(), Value::String(name.clone()));
            o.insert("counts".into(), count_obj(diags));
            o.insert(
                "diagnostics".into(),
                rendered
                    .as_object()
                    .unwrap()
                    .get("diagnostics")
                    .unwrap()
                    .clone(),
            );
            Value::Object(o)
        })
        .collect();
    let mut root = Map::new();
    root.insert("version".into(), Value::Number(Number::PosInt(1)));
    root.insert("counts".into(), count_obj(&all));
    root.insert("targets".into(), Value::Array(items));
    serde_json::to_string_pretty(&Value::Object(root)).expect("diagnostics serialize")
}

/// Render a multi-target lint run as a minimal SARIF 2.1.0 document, for
/// upload to code-scanning UIs. One run, one `tool.driver` listing every
/// rule that produced a finding; each finding becomes a `result` whose
/// `artifactLocation.uri` is the target name and whose `region.startLine`
/// is the span line (omitted when the finding has no line). Diagnostics
/// are emitted in [`sorted`] order within each target, so the document is
/// byte-stable for identical findings.
pub fn render_sarif(targets: &[(String, Vec<Diagnostic>)]) -> String {
    use serde_json::{Map, Number, Value};
    let level = |s: Severity| match s {
        Severity::Info => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    };

    let mut used: Vec<&'static str> = targets
        .iter()
        .flat_map(|(_, d)| d.iter().map(|x| x.code))
        .collect();
    used.sort_unstable();
    used.dedup();
    let rules_arr: Vec<Value> = used
        .iter()
        .filter_map(|code| rule(code))
        .map(|r| {
            let mut o = Map::new();
            o.insert("id".into(), Value::String(r.code.into()));
            o.insert("name".into(), Value::String(r.name.into()));
            let mut desc = Map::new();
            desc.insert("text".into(), Value::String(r.summary.into()));
            o.insert("shortDescription".into(), Value::Object(desc));
            Value::Object(o)
        })
        .collect();

    let mut results = Vec::new();
    for (name, diags) in targets {
        for d in sorted(diags) {
            let mut r = Map::new();
            r.insert("ruleId".into(), Value::String(d.code.into()));
            r.insert("level".into(), Value::String(level(d.severity).into()));
            let mut msg = Map::new();
            msg.insert("text".into(), Value::String(d.message.clone()));
            r.insert("message".into(), Value::Object(msg));
            let mut phys = Map::new();
            let mut art = Map::new();
            art.insert("uri".into(), Value::String(name.clone()));
            phys.insert("artifactLocation".into(), Value::Object(art));
            if let Some(s) = &d.span {
                if s.line > 0 {
                    let mut region = Map::new();
                    region.insert(
                        "startLine".into(),
                        Value::Number(Number::PosInt(s.line as u64)),
                    );
                    phys.insert("region".into(), Value::Object(region));
                }
            }
            let mut loc = Map::new();
            loc.insert("physicalLocation".into(), Value::Object(phys));
            r.insert("locations".into(), Value::Array(vec![Value::Object(loc)]));
            results.push(Value::Object(r));
        }
    }

    let mut driver = Map::new();
    driver.insert("name".into(), Value::String("incore-lint".into()));
    driver.insert(
        "informationUri".into(),
        Value::String("https://github.com/example/incore-model".into()),
    );
    driver.insert("rules".into(), Value::Array(rules_arr));
    let mut tool = Map::new();
    tool.insert("driver".into(), Value::Object(driver));
    let mut run = Map::new();
    run.insert("tool".into(), Value::Object(tool));
    run.insert("results".into(), Value::Array(results));
    let mut root = Map::new();
    root.insert(
        "$schema".into(),
        Value::String(
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                .into(),
        ),
    );
    root.insert("version".into(), Value::String("2.1.0".into()));
    root.insert("runs".into(), Value::Array(vec![Value::Object(run)]));
    serde_json::to_string_pretty(&Value::Object(root)).expect("sarif serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = RULES.iter().map(|r| r.code).collect();
        codes.sort_unstable();
        let n = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate rule codes");
        // The published catalog: these codes must never change meaning.
        for code in [
            "K001", "K002", "K003", "K004", "K005", "K006", "K007", "K008", "K009", "K010", "M001",
            "M002", "M003", "M004", "M005", "M006", "M007", "M008", "M009", "M010", "S001", "S002",
            "S003", "S004", "D001", "D002", "D003",
        ] {
            assert!(
                rule(code).is_some(),
                "rule {code} missing from the registry"
            );
        }
    }

    #[test]
    fn exit_code_policy() {
        let info = Diagnostic::new("K001", "x");
        let warn = Diagnostic::new("K002", "x");
        let err = Diagnostic::new("K006", "x");
        assert_eq!(exit_code(&[], false), 0);
        assert_eq!(exit_code(std::slice::from_ref(&info), true), 0);
        assert_eq!(exit_code(std::slice::from_ref(&warn), false), 0);
        assert_eq!(exit_code(&[warn], true), 1);
        assert_eq!(exit_code(&[err], false), 1);
        let _ = info;
    }

    #[test]
    fn text_rendering_shows_span_and_help() {
        let d = Diagnostic::new("K002", "register `%rax` is never read")
            .with_span(4, "movq $1, %rax")
            .with_help("remove the store");
        let t = render_text(&[d]);
        assert!(t.contains("warning[K002] line 4"), "{t}");
        assert!(t.contains("| movq $1, %rax"), "{t}");
        assert!(t.contains("= help: remove the store"), "{t}");
        assert!(
            t.contains("1 finding(s): 0 error(s), 1 warning(s), 0 info"),
            "{t}"
        );
    }

    #[test]
    fn json_diagnostic_order_is_canonical_and_input_order_independent() {
        let a = Diagnostic::new("K002", "later line").with_span(9, "vmovupd %zmm2, (%rdi)");
        let b = Diagnostic::new("K002", "earlier line").with_span(3, "movq $1, %rax");
        let c = Diagnostic::new("K001", "different rule").with_span(9, "addq $8, %rax");
        let d = Diagnostic::new("M003", "no span at all");
        let forward = render_json(&[a.clone(), b.clone(), c.clone(), d.clone()]);
        let reversed = render_json(&[d, a, b, c]);
        assert_eq!(
            forward, reversed,
            "rendering must not depend on input order"
        );
        let v: serde_json::Value = serde_json::from_str(&forward).unwrap();
        let codes: Vec<_> = v
            .as_object()
            .unwrap()
            .get("diagnostics")
            .and_then(|d| d.as_array())
            .unwrap()
            .iter()
            .map(|d| {
                let o = d.as_object().unwrap();
                (
                    o.get("code").and_then(|c| c.as_str()).unwrap().to_string(),
                    o.get("line").and_then(|l| l.as_u64()).unwrap_or(0),
                )
            })
            .collect();
        assert_eq!(
            codes,
            [
                ("K001".to_string(), 9),
                ("K002".to_string(), 3),
                ("K002".to_string(), 9),
                ("M003".to_string(), 0),
            ]
        );
    }

    #[test]
    fn sarif_document_is_well_formed() {
        let targets = vec![
            (
                "corpus:SPR:load / gcc -O3".to_string(),
                vec![Diagnostic::new("K008", "dead load").with_span(2, "vmovupd (%rsi), %zmm0")],
            ),
            (
                "machine:golden-cove".to_string(),
                vec![Diagnostic::new("M008", "form missing").with_span(0, "table: vfmadd")],
            ),
        ];
        let sarif = render_sarif(&targets);
        let v: serde_json::Value = serde_json::from_str(&sarif).expect("valid JSON");
        let root = v.as_object().unwrap();
        let get = |o: &serde_json::Value, k: &str| o.as_object().unwrap().get(k).unwrap().clone();
        assert_eq!(root.get("version").and_then(|x| x.as_str()), Some("2.1.0"));
        let runs = root.get("runs").and_then(|r| r.as_array()).unwrap();
        let run = &runs[0];
        let rules = get(&get(&get(run, "tool"), "driver"), "rules");
        let ids: Vec<String> = rules
            .as_array()
            .unwrap()
            .iter()
            .map(|r| get(r, "id").as_str().unwrap().to_string())
            .collect();
        assert_eq!(ids, ["K008", "M008"]);
        let results_v = get(run, "results");
        let results = results_v.as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(get(&results[0], "ruleId").as_str(), Some("K008"));
        let phys0 = get(
            &get(&results[0], "locations").as_array().unwrap()[0],
            "physicalLocation",
        );
        assert_eq!(
            get(&get(&phys0, "artifactLocation"), "uri").as_str(),
            Some("corpus:SPR:load / gcc -O3")
        );
        assert_eq!(get(&get(&phys0, "region"), "startLine").as_u64(), Some(2));
        // Line-0 (model element) findings carry no region.
        let phys1 = get(
            &get(&results[1], "locations").as_array().unwrap()[0],
            "physicalLocation",
        );
        assert!(phys1.as_object().unwrap().get("region").is_none());
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let d = Diagnostic::new("M003", "dispatch width is zero").with_span(1, "dispatch_width");
        let j = render_json(&[d]);
        let v: serde_json::Value = serde_json::from_str(&j).expect("valid JSON");
        let root = v.as_object().unwrap();
        assert_eq!(root.get("version").and_then(|v| v.as_u64()), Some(1));
        let diags = root.get("diagnostics").and_then(|v| v.as_array()).unwrap();
        assert_eq!(diags.len(), 1);
        let d0 = diags[0].as_object().unwrap();
        assert_eq!(d0.get("code").and_then(|v| v.as_str()), Some("M003"));
        assert_eq!(d0.get("severity").and_then(|v| v.as_str()), Some("error"));
        assert_eq!(
            d0.get("name").and_then(|v| v.as_str()),
            Some("frontend-sanity")
        );
        let counts = root.get("counts").and_then(|v| v.as_object()).unwrap();
        assert_eq!(counts.get("error").and_then(|v| v.as_u64()), Some(1));
    }
}
