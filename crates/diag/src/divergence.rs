//! Predictor-divergence lints (`D001`–`D002`): run the in-core model, the
//! MCA-style baseline, and optionally the cycle-level simulator on the same
//! kernel and flag blocks where they disagree badly. Large divergence means
//! at least one model mishandles the kernel — exactly the cases worth a
//! human look when validating the models against hardware.

use crate::Diagnostic;
use isa::Kernel;
use uarch::Machine;

/// The predictions that fed a divergence lint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceReport {
    /// In-core model block prediction (cycles/iteration).
    pub incore: f64,
    /// MCA-style baseline (cycles/iteration).
    pub mca: f64,
    /// Cycle-level simulator (cycles/iteration), when requested.
    pub sim: Option<f64>,
}

/// Factor by which two predictions disagree (>= 1; infinite when exactly
/// one of them is zero).
fn ratio(a: f64, b: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi <= 1e-9 {
        1.0 // both zero: empty kernel, nothing to compare
    } else if lo <= 1e-9 {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// Divergence threshold: predictions more than 2x apart are flagged.
const THRESHOLD: f64 = 2.0;

/// The rule logic on raw numbers (exposed separately so the thresholds are
/// unit-testable without constructing a pathological kernel).
///
/// * `D001` — in-core and MCA predictions diverge by more than 2x.
/// * `D002` — the simulator disagrees with *both* analytical models by more
///   than 2x (if it disagrees with only one, that model's `D001`-style
///   divergence already covers it).
pub fn divergence_diags(incore_cy: f64, mca_cy: f64, sim_cy: Option<f64>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let r = ratio(incore_cy, mca_cy);
    if r > THRESHOLD {
        diags.push(
            Diagnostic::new(
                "D001",
                format!(
                    "in-core and MCA-style predictions diverge by {r:.1}x \
                     ({incore_cy:.2} vs {mca_cy:.2} cy/iter)"
                ),
            )
            .with_help(
                "at least one model mishandles this kernel; compare the port \
                 pressure and dependency views (`incore-cli analyze --mca`)",
            ),
        );
    }
    if let Some(sim) = sim_cy {
        let ri = ratio(sim, incore_cy);
        let rm = ratio(sim, mca_cy);
        if ri > THRESHOLD && rm > THRESHOLD {
            diags.push(
                Diagnostic::new(
                    "D002",
                    format!(
                        "simulator disagrees with both analytical models by more than \
                         {THRESHOLD}x (sim {sim:.2}, in-core {incore_cy:.2}, MCA \
                         {mca_cy:.2} cy/iter)"
                    ),
                )
                .with_help(
                    "the out-of-order window or memory behavior probably matters here; \
                     inspect the pipeline trace (`incore-cli analyze --sim --trace`)",
                ),
            );
        }
    }
    diags
}

/// Run the predictors on a kernel and lint their agreement. The simulator
/// only runs when `with_sim` is set (it is by far the slowest of the
/// three).
pub fn lint_divergence(
    machine: &Machine,
    kernel: &Kernel,
    with_sim: bool,
) -> (DivergenceReport, Vec<Diagnostic>) {
    let incore_cy = incore::analyze(machine, kernel).prediction;
    let mca_cy = mca::predict(machine, kernel).cycles_per_iter;
    let sim_cy = with_sim.then(|| exec::cycles_per_iteration(machine, kernel));
    let report = DivergenceReport {
        incore: incore_cy,
        mca: mca_cy,
        sim: sim_cy,
    };
    (report, divergence_diags(incore_cy, mca_cy, sim_cy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn agreement_is_clean() {
        assert!(divergence_diags(4.0, 4.5, Some(4.2)).is_empty());
        assert!(divergence_diags(0.0, 0.0, None).is_empty());
        // Exactly 2x is still agreement; the rule is strictly-greater.
        assert!(divergence_diags(2.0, 4.0, None).is_empty());
    }

    #[test]
    fn d001_fires_above_2x() {
        let diags = divergence_diags(10.0, 4.0, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "D001");
        assert_eq!(diags[0].severity, Severity::Warning);
        // Zero against non-zero is infinitely divergent.
        assert_eq!(divergence_diags(0.0, 3.0, None)[0].code, "D001");
    }

    #[test]
    fn d002_requires_disagreement_with_both() {
        // Sim far from both.
        let diags = divergence_diags(4.0, 4.1, Some(20.0));
        assert!(diags.iter().any(|d| d.code == "D002"), "{diags:?}");
        // Sim close to one model: only the models' own divergence fires.
        let diags = divergence_diags(4.0, 10.0, Some(4.2));
        assert!(diags.iter().any(|d| d.code == "D001"));
        assert!(!diags.iter().any(|d| d.code == "D002"), "{diags:?}");
    }

    #[test]
    fn models_agree_on_a_simple_kernel() {
        let machine = Machine::golden_cove();
        let asm = ".L1:
            vmovupd (%rsi,%rax), %zmm0
            vaddpd %zmm1, %zmm0, %zmm2
            vmovupd %zmm2, (%rdi,%rax)
            addq $64, %rax
            cmpq %rcx, %rax
            jne .L1
        ";
        let kernel = isa::parse_kernel(asm, isa::Isa::X86).unwrap();
        let (report, diags) = lint_divergence(&machine, &kernel, true);
        assert!(report.incore > 0.0 && report.mca > 0.0);
        assert!(report.sim.unwrap() > 0.0);
        assert!(diags.is_empty(), "{report:?} {diags:?}");
    }
}
