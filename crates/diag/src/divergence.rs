//! Predictor-divergence lints (`D001`–`D002`): run any set of
//! [`uarch::Predictor`]s on the same kernel and flag blocks where they
//! disagree badly. Large divergence means at least one model mishandles
//! the kernel — exactly the cases worth a human look when validating the
//! models against hardware.
//!
//! The rules consume the unified predictor trait, so the same logic lints
//! the default in-core/MCA pair, a balanced-port in-core variant, or any
//! future backend without new signatures:
//!
//! * `D001` — two *analytical* predictions diverge by more than 2×
//!   (checked pairwise over every analytical predictor).
//! * `D002` — the *reference* (measurement stand-in) disagrees with every
//!   analytical prediction by more than 2×; if it disagrees with only
//!   some of them, those models' pairwise `D001`s already cover it.

use crate::Diagnostic;
use isa::Kernel;
use uarch::{Machine, Prediction, Predictor};

/// The predictions that fed a divergence lint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceReport {
    /// In-core model block prediction (cycles/iteration).
    pub incore: f64,
    /// MCA-style baseline (cycles/iteration).
    pub mca: f64,
    /// Cycle-level simulator (cycles/iteration), when requested.
    pub sim: Option<f64>,
}

/// Factor by which two predictions disagree (>= 1; infinite when exactly
/// one of them is zero).
fn ratio(a: f64, b: f64) -> f64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if hi <= 1e-9 {
        1.0 // both zero: empty kernel, nothing to compare
    } else if lo <= 1e-9 {
        f64::INFINITY
    } else {
        hi / lo
    }
}

/// Divergence threshold: predictions more than 2x apart are flagged.
const THRESHOLD: f64 = 2.0;

/// The rule logic on named prediction values — the core every other entry
/// point (pure numbers, trait objects, the batch engine) reduces to.
pub fn divergence_diags_named(
    analytical: &[(&str, f64)],
    reference: Option<(&str, f64)>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, &(name_a, cy_a)) in analytical.iter().enumerate() {
        for &(name_b, cy_b) in &analytical[i + 1..] {
            let r = ratio(cy_a, cy_b);
            if r > THRESHOLD {
                diags.push(
                    Diagnostic::new(
                        "D001",
                        format!(
                            "{name_a} and {name_b} predictions diverge by {r:.1}x \
                             ({cy_a:.2} vs {cy_b:.2} cy/iter)"
                        ),
                    )
                    .with_help(
                        "at least one model mishandles this kernel; compare the port \
                         pressure and dependency views (`incore-cli analyze --mca`)",
                    ),
                );
            }
        }
    }
    if let Some((ref_name, ref_cy)) = reference {
        let all_diverge = !analytical.is_empty()
            && analytical
                .iter()
                .all(|&(_, cy)| ratio(ref_cy, cy) > THRESHOLD);
        if all_diverge {
            let models = analytical
                .iter()
                .map(|(name, cy)| format!("{name} {cy:.2}"))
                .collect::<Vec<_>>()
                .join(", ");
            diags.push(
                Diagnostic::new(
                    "D002",
                    format!(
                        "{ref_name} disagrees with every analytical model by more than \
                         {THRESHOLD}x ({ref_name} {ref_cy:.2} vs {models} cy/iter)"
                    ),
                )
                .with_help(
                    "the out-of-order window or memory behavior probably matters here; \
                     inspect the pipeline trace (`incore-cli analyze --sim --trace`)",
                ),
            );
        }
    }
    diags
}

/// `D003` — a divergent kernel whose bottleneck-attribution report found
/// no *dominating* resource: the predictors disagree (some `D001`/`D002`
/// fired) and no single port, dependency chain, or front-end limit
/// stands clear of the runner-up bound, so the divergence report carries
/// no explanation. Emitted by `incore-cli explain`; `divergent` is
/// whether any divergence rule fired on the kernel and `dominating` is
/// the attribution winner when one cleared the margin.
pub fn attribution_diags(
    kernel: &str,
    divergent: bool,
    dominating: Option<&str>,
) -> Vec<Diagnostic> {
    if !divergent || dominating.is_some() {
        return Vec::new();
    }
    vec![Diagnostic::new(
        "D003",
        format!(
            "predictors diverge on `{kernel}` but no resource dominates the \
             attribution — the divergence report carries no explanation"
        ),
    )
    .with_help(
        "the binding bounds are within the attribution margin of each other; \
         compare the per-predictor views (`incore-cli explain <kernel> --arch <a>`) \
         and the pipeline trace (`incore-cli analyze --sim --trace`)",
    )]
}

/// The classic fixed-role entry point: in-core vs MCA, with an optional
/// simulator measurement. Kept for callers (and tests) that think in the
/// paper's three-predictor terms.
pub fn divergence_diags(incore_cy: f64, mca_cy: f64, sim_cy: Option<f64>) -> Vec<Diagnostic> {
    divergence_diags_named(
        &[("in-core", incore_cy), ("MCA-style", mca_cy)],
        sim_cy.map(|s| ("simulator", s)),
    )
}

/// Run an arbitrary predictor set through the divergence rules. Returns
/// every prediction (name, value) in input order — reference predictors
/// are split out by [`Predictor::is_reference`] — plus the diagnostics.
pub fn lint_divergence_predictors(
    machine: &Machine,
    kernel: &Kernel,
    predictors: &[&dyn Predictor],
) -> (Vec<(&'static str, Prediction)>, Vec<Diagnostic>) {
    let predictions: Vec<(&'static str, Prediction)> = predictors
        .iter()
        .map(|p| (p.name(), p.predict(machine, kernel)))
        .collect();
    let analytical: Vec<(&str, f64)> = predictions
        .iter()
        .zip(predictors)
        .filter(|(_, p)| !p.is_reference())
        .map(|((name, pred), _)| (*name, pred.cycles_per_iter))
        .collect();
    let reference = predictions
        .iter()
        .zip(predictors)
        .find(|(_, p)| p.is_reference())
        .map(|((name, pred), _)| (*name, pred.cycles_per_iter));
    let diags = divergence_diags_named(&analytical, reference);
    (predictions, diags)
}

/// Run the default predictors on a kernel and lint their agreement. The
/// simulator only runs when `with_sim` is set (it is by far the slowest
/// of the three).
pub fn lint_divergence(
    machine: &Machine,
    kernel: &Kernel,
    with_sim: bool,
) -> (DivergenceReport, Vec<Diagnostic>) {
    let incore_model = incore::InCoreModel::new();
    let mca_model = mca::McaBaseline;
    let simulator = exec::CoreSimulator::default();
    let mut predictors: Vec<&dyn Predictor> = vec![&incore_model, &mca_model];
    if with_sim {
        predictors.push(&simulator);
    }
    let (predictions, diags) = lint_divergence_predictors(machine, kernel, &predictors);
    let by_name = |n: &str| {
        predictions
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, p)| p.cycles_per_iter)
    };
    let report = DivergenceReport {
        incore: by_name("incore").unwrap_or(0.0),
        mca: by_name("mca").unwrap_or(0.0),
        sim: by_name("sim"),
    };
    (report, diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn agreement_is_clean() {
        assert!(divergence_diags(4.0, 4.5, Some(4.2)).is_empty());
        assert!(divergence_diags(0.0, 0.0, None).is_empty());
        // Exactly 2x is still agreement; the rule is strictly-greater.
        assert!(divergence_diags(2.0, 4.0, None).is_empty());
    }

    #[test]
    fn d001_fires_above_2x() {
        let diags = divergence_diags(10.0, 4.0, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "D001");
        assert_eq!(diags[0].severity, Severity::Warning);
        // Zero against non-zero is infinitely divergent.
        assert_eq!(divergence_diags(0.0, 3.0, None)[0].code, "D001");
    }

    #[test]
    fn d002_requires_disagreement_with_both() {
        // Sim far from both.
        let diags = divergence_diags(4.0, 4.1, Some(20.0));
        assert!(diags.iter().any(|d| d.code == "D002"), "{diags:?}");
        // Sim close to one model: only the models' own divergence fires.
        let diags = divergence_diags(4.0, 10.0, Some(4.2));
        assert!(diags.iter().any(|d| d.code == "D001"));
        assert!(!diags.iter().any(|d| d.code == "D002"), "{diags:?}");
    }

    #[test]
    fn pairwise_d001_over_three_analytical_models() {
        // Three models where only one pair diverges: exactly one D001.
        let diags = divergence_diags_named(&[("a", 4.0), ("b", 4.5), ("c", 10.0)], None);
        let d001: Vec<_> = diags.iter().filter(|d| d.code == "D001").collect();
        assert_eq!(d001.len(), 2, "{diags:?}"); // a-c and b-c both > 2x
        assert!(d001[0].message.contains("a and c"));
    }

    #[test]
    fn reference_without_analytical_is_clean() {
        assert!(divergence_diags_named(&[], Some(("sim", 9.0))).is_empty());
    }

    #[test]
    fn trait_dispatch_matches_fixed_roles() {
        let machine = Machine::golden_cove();
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n";
        let kernel = isa::parse_kernel(asm, isa::Isa::X86).unwrap();
        let (report, diags) = lint_divergence(&machine, &kernel, true);
        let incore_model = incore::InCoreModel::new();
        let mca_model = mca::McaBaseline;
        let simulator = exec::CoreSimulator::default();
        let preds: Vec<&dyn Predictor> = vec![&incore_model, &mca_model, &simulator];
        let (predictions, diags2) = lint_divergence_predictors(&machine, &kernel, &preds);
        assert_eq!(predictions.len(), 3);
        assert_eq!(report.incore, predictions[0].1.cycles_per_iter);
        assert_eq!(report.mca, predictions[1].1.cycles_per_iter);
        assert_eq!(report.sim, Some(predictions[2].1.cycles_per_iter));
        assert_eq!(diags, diags2);
    }

    #[test]
    fn models_agree_on_a_simple_kernel() {
        let machine = Machine::golden_cove();
        let asm = ".L1:
            vmovupd (%rsi,%rax), %zmm0
            vaddpd %zmm1, %zmm0, %zmm2
            vmovupd %zmm2, (%rdi,%rax)
            addq $64, %rax
            cmpq %rcx, %rax
            jne .L1
        ";
        let kernel = isa::parse_kernel(asm, isa::Isa::X86).unwrap();
        let (report, diags) = lint_divergence(&machine, &kernel, true);
        assert!(report.incore > 0.0 && report.mca > 0.0);
        assert!(report.sim.unwrap() > 0.0);
        assert!(diags.is_empty(), "{report:?} {diags:?}");
    }
}
