//! Machine-file round-trip: exporting a model to JSON and importing it back
//! must reproduce the same model (checked via a second export, since
//! `Machine` intentionally has no `PartialEq`), and the imported model must
//! lint clean.

use diag::Severity;
use uarch::Machine;

#[test]
fn export_import_roundtrip_preserves_all_three_models() {
    for machine in uarch::all_machines() {
        let json1 = machine.to_json();
        let imported = Machine::from_json(&json1)
            .unwrap_or_else(|e| panic!("{}: reimport failed: {e}", machine.arch.label()));
        assert_eq!(imported.arch, machine.arch);
        let json2 = imported.to_json();
        assert_eq!(
            json1,
            json2,
            "{}: model changed across an export/import cycle",
            machine.arch.label()
        );
    }
}

#[test]
fn imported_shipped_models_lint_clean() {
    for machine in uarch::all_machines() {
        let (imported, diags) = diag::lint_machine_file(&machine.to_json());
        assert!(imported.is_some(), "{}: {diags:?}", machine.arch.label());
        assert!(
            !diags.iter().any(|d| d.severity >= Severity::Error),
            "{}: {diags:?}",
            machine.arch.label()
        );
    }
}
