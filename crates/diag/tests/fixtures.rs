//! One positive and one negative fixture per rule code: every rule in the
//! registry must fire on its seeded-defect fixture and stay silent on its
//! clean twin. This pins both the rule codes and their trigger conditions.

use diag::{divergence_diags, lint_assembly, lint_machine, lint_machine_file, Diagnostic};
use uarch::ports::Port;
use uarch::{Machine, PortSet};

fn kernel_diags(asm: &str) -> Vec<Diagnostic> {
    lint_assembly(&Machine::golden_cove(), asm).1
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

/// A clean x86 triad loop that no kernel rule should fire on (beyond
/// `K001` info notes for its live-in registers).
const CLEAN_X86: &str = ".L1:
    vmovupd (%rsi,%rax), %zmm0
    vfmadd231pd %zmm1, %zmm2, %zmm0
    vmovupd %zmm0, (%rdi,%rax)
    addq $64, %rax
    cmpq %rcx, %rax
    jne .L1
";

struct Fixture {
    code: &'static str,
    positive: fn() -> Vec<Diagnostic>,
    negative: fn() -> Vec<Diagnostic>,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        code: "K001",
        // A conditional branch whose flags nothing sets.
        positive: || kernel_diags(".L1:\n vmovupd (%rsi), %zmm0\n jne .L1\n"),
        negative: || {
            kernel_diags(CLEAN_X86)
                .into_iter()
                .filter(|d| d.severity > diag::Severity::Info)
                .collect()
        },
    },
    Fixture {
        code: "K002",
        positive: || {
            kernel_diags(
                ".L1:\n vmovupd (%rsi), %zmm0\n vmovupd (%rdi), %zmm0\n \
                 vmovupd %zmm0, (%rdx)\n subq $1, %rax\n jne .L1\n",
            )
        },
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "K003",
        // An unconditional self-loop carrying nothing across iterations.
        positive: || kernel_diags(".L1:\n vxorpd %xmm9, %xmm8, %xmm7\n jmp .L1\n"),
        negative: || {
            kernel_diags(CLEAN_X86)
                .into_iter()
                .filter(|d| d.severity > diag::Severity::Info)
                .collect()
        },
    },
    Fixture {
        code: "K004",
        positive: || {
            kernel_diags(
                ".L1:\n addsd %xmm0, %xmm1\n vaddpd %ymm2, %ymm3, %ymm4\n \
                 subq $1, %rax\n jne .L1\n",
            )
        },
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "K005",
        positive: || kernel_diags("# OSACA-END\n.L1:\n subq $1, %rax\n jne .L1\n# OSACA-BEGIN\n"),
        negative: || kernel_diags("# OSACA-BEGIN\n.L1:\n subq $1, %rax\n jne .L1\n# OSACA-END\n"),
    },
    Fixture {
        code: "K006",
        positive: || kernel_diags(".L1:\n movq %bogus, %rax\n jne .L1\n"),
        negative: || kernel_diags(CLEAN_X86),
    },
    Fixture {
        code: "M001",
        positive: || {
            let mut m = Machine::golden_cove();
            m.port_model.ports.push(Port {
                name: "X9",
                caps: vec![],
            });
            lint_machine(&m)
        },
        negative: || lint_machine(&Machine::golden_cove()),
    },
    Fixture {
        code: "M002",
        positive: || {
            let mut m = Machine::zen4();
            let idx = m
                .table
                .iter()
                .position(|e| !e.uops.is_empty())
                .expect("compute entry");
            m.table[idx].rthroughput = -1.0;
            lint_machine(&m)
        },
        negative: || lint_machine(&Machine::zen4()),
    },
    Fixture {
        code: "M003",
        positive: || {
            let mut m = Machine::neoverse_v2();
            m.dispatch_width = 0;
            lint_machine(&m)
        },
        negative: || lint_machine(&Machine::neoverse_v2()),
    },
    Fixture {
        code: "M004",
        positive: || {
            let mut m = Machine::golden_cove();
            m.simd_width_bits = 256;
            lint_machine(&m)
        },
        negative: || lint_machine(&Machine::golden_cove()),
    },
    Fixture {
        code: "M005",
        positive: || {
            let mut m = Machine::golden_cove();
            m.store_data_ports = PortSet::EMPTY;
            lint_machine(&m)
        },
        negative: || lint_machine(&Machine::golden_cove()),
    },
    Fixture {
        code: "M006",
        positive: || lint_machine_file("not a machine file").1,
        negative: || lint_machine_file(&Machine::zen4().to_json()).1,
    },
    Fixture {
        code: "M007",
        positive: || {
            let mut m = Machine::golden_cove();
            // 48 KiB at 8-way/64 B needs 96 sets; the simulator rounds down
            // to 64 and silently realizes 32 KiB.
            let idx = m.caches.iter().position(|c| !c.shared).expect("private");
            m.caches[idx].assoc = 8;
            lint_machine(&m)
        },
        negative: || {
            // Shipped models carry advisory M007 findings on their L3
            // slices, so the clean twin resizes the shared level to an
            // exactly representable per-core slice (2 MiB, 16-way).
            let mut m = Machine::golden_cove();
            let cores = m.cores as u64;
            for c in &mut m.caches {
                if c.shared {
                    c.assoc = 16;
                    c.size_kib = cores * 2048;
                }
            }
            lint_machine(&m)
        },
    },
    Fixture {
        code: "D001",
        positive: || divergence_diags(10.0, 4.0, None),
        negative: || divergence_diags(4.0, 4.5, None),
    },
    Fixture {
        code: "D002",
        positive: || divergence_diags(4.0, 4.1, Some(20.0)),
        negative: || divergence_diags(4.0, 4.1, Some(4.2)),
    },
    Fixture {
        code: "D003",
        // Divergent kernel whose attribution found no dominating bound.
        positive: || diag::attribution_diags("triad", true, None),
        // A clear winner (or no divergence at all) keeps the rule silent.
        negative: || {
            let mut diags = diag::attribution_diags("triad", true, Some("port V0"));
            diags.extend(diag::attribution_diags("triad", false, None));
            diags
        },
    },
];

/// Rules whose implementations live above `diag` in the crate graph and
/// are therefore fixtured elsewhere: the semantic kernel rules and the
/// admission gate in `crates/semck/tests/fixtures.rs`, the simulator
/// sanitizer rules in `crates/exec/tests/sanitizer_seeded.rs`. The lists
/// must stay in sync — semck's fixture suite asserts the same coverage
/// from its side.
const EXTERNAL: &[&str] = &[
    "K007", "K008", "K009", "K010", "M008", "M009", "M010", "S001", "S002", "S003", "S004",
];

#[test]
fn every_rule_has_a_firing_and_a_clean_fixture() {
    // The fixture table must cover the entire registry.
    let covered: Vec<&str> = FIXTURES.iter().map(|f| f.code).collect();
    for rule in diag::rules() {
        assert!(
            covered.contains(&rule.code) || EXTERNAL.contains(&rule.code),
            "no fixture for {}",
            rule.code
        );
    }
    for f in FIXTURES {
        let pos = (f.positive)();
        assert!(
            has(&pos, f.code),
            "{} did not fire on its positive fixture: {pos:?}",
            f.code
        );
        let neg = (f.negative)();
        assert!(
            !has(&neg, f.code),
            "{} fired on its negative fixture: {neg:?}",
            f.code
        );
    }
}

#[test]
fn seeded_error_fixture_fails_a_lint_run() {
    // The acceptance scenario: a seeded defect must produce a nonzero exit.
    let diags = kernel_diags(".L1:\n movq %bogus, %rax\n jne .L1\n");
    assert_eq!(diag::exit_code(&diags, false), 1);
    // ... and the clean twin must not.
    let diags = kernel_diags(CLEAN_X86);
    assert_eq!(diag::exit_code(&diags, false), 0);
}
