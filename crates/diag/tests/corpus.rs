//! Corpus sweep: every generated kernel variant, on its machine, must be
//! lint-clean (no errors or warnings; `Info` notes about live-in registers
//! are expected and allowed).

use diag::Severity;

#[test]
fn all_416_generated_variants_are_lint_clean() {
    let mut total = 0;
    for machine in uarch::all_machines() {
        for v in kernels::variants_for(machine.arch) {
            let asm = kernels::generate(&v, &machine);
            let (kernel, diags) = diag::lint_assembly(&machine, &asm);
            assert!(
                kernel.is_some(),
                "{} {}: failed to parse: {diags:?}",
                machine.arch.label(),
                v.label()
            );
            let bad: Vec<_> = diags
                .iter()
                .filter(|d| d.severity >= Severity::Warning)
                .collect();
            assert!(
                bad.is_empty(),
                "{} {}: {bad:?}\n{asm}",
                machine.arch.label(),
                v.label()
            );
            total += 1;
        }
    }
    // The paper's corpus: 156 SPR + 156 Genoa + 104 GCS variants.
    assert_eq!(total, 416);
}
