//! `incore-cli` entry point. All logic lives in the library for
//! testability; this file only does I/O and exit-code plumbing: `run`
//! propagates every failure as a workspace [`cli::Error`] with `?`, and
//! `main` maps the error kind to the process exit code (2 for usage, 1
//! for everything else).

use cli::{
    parse_args, run_analyze, run_analyze_json, run_explain, run_machines, run_validate, Command,
    Error, ErrorKind, LintTarget, MachineRef, ProfileMode, USAGE,
};

/// Chrome trace output path for `--profile=chrome`.
const CHROME_TRACE_PATH: &str = "trace.chrome.json";

/// Start recording when a `--profile` mode was requested.
fn start_profile(mode: Option<ProfileMode>) {
    if mode.is_some() {
        obs::enable();
    }
}

/// Drain the recorder and emit the profile: text and JSON go to stderr so
/// the report on stdout stays byte-identical; chrome mode writes a trace
/// file for `about:tracing` / Perfetto.
fn emit_profile(mode: Option<ProfileMode>) -> Result<(), Error> {
    let Some(mode) = mode else { return Ok(()) };
    let profile = obs::take();
    obs::disable();
    match mode {
        ProfileMode::Chrome => {
            std::fs::write(CHROME_TRACE_PATH, cli::render_profile(&profile, mode))
                .map_err(|e| Error::io(CHROME_TRACE_PATH, &e))?;
            eprintln!(
                "profile: chrome trace written to {CHROME_TRACE_PATH} \
                 (load in about:tracing or ui.perfetto.dev)"
            );
        }
        mode => eprint!("{}", cli::render_profile(&profile, mode)),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            if e.kind() == ErrorKind::Usage {
                eprintln!("error: {e}\n\n{USAGE}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(e.exit_code());
        }
    }
}

fn read(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::io(path, &e))
}

fn run(args: &[String]) -> Result<i32, Error> {
    match parse_args(args)? {
        Command::Help => print!("{USAGE}"),
        Command::Machines { json } => print!("{}", run_machines(json)),
        Command::Validate(opts) => {
            start_profile(opts.profile);
            let outcome = run_validate(&opts)?;
            print!("{}", outcome.output);
            emit_profile(opts.profile)?;
            if !outcome.gate_failures.is_empty() {
                for gate in &outcome.gate_failures {
                    eprintln!("gate failed: {gate}");
                }
                return Ok(1);
            }
        }
        Command::Lint(opts) => {
            // Resolve the shared machine selection by hand: model refs
            // build registry machines, file refs are read once so their
            // raw JSON can feed the machine-file lints.
            let mut models: Vec<uarch::Machine> = Vec::new();
            let mut files: Vec<(String, String)> = Vec::new();
            for r in &opts.sel.refs {
                match r {
                    MachineRef::Model(id) => models.push(
                        uarch::registry::machine(id).expect("registry id validated at parse"),
                    ),
                    MachineRef::File(p) => files.push((p.clone(), read(p)?)),
                }
            }
            let asm = match opts.path.as_deref() {
                Some(p) => Some(read(p)?),
                None => None,
            };
            // Machine files that import; a failure is reported by the
            // machine-file lint below, not here.
            let imported: Vec<(String, uarch::Machine)> = files
                .iter()
                .filter_map(|(p, j)| uarch::Machine::from_json(j).ok().map(|m| (p.clone(), m)))
                .collect();
            let mut targets: Vec<LintTarget> = Vec::new();
            for (p, j) in &files {
                targets.push(LintTarget::MachineFile { label: p, json: j });
            }
            match (asm.as_deref(), opts.path.as_deref()) {
                (Some(asm), Some(label)) => {
                    // The machine used for kernel lints: an edited machine
                    // file takes precedence over a registry model.
                    match imported.last().map(|(_, m)| m).or(models.last()) {
                        Some(machine) => targets.push(LintTarget::Kernel {
                            label,
                            machine,
                            asm,
                            sim: opts.sim,
                        }),
                        // The machine-file lint above already reports why.
                        None => eprintln!(
                            "note: skipping kernel lints — the machine file did not import"
                        ),
                    }
                }
                _ if files.is_empty() && !opts.admission && !opts.corpus => {
                    if models.is_empty() {
                        models = uarch::all_machines();
                    }
                    targets.extend(models.iter().map(LintTarget::Machine));
                }
                _ => {}
            }
            if opts.admission {
                targets.extend(cli::admission_targets(models.clone(), &imported));
            }
            let precomputed = if opts.corpus {
                let grid: Vec<uarch::Machine> = if models.is_empty() && imported.is_empty() {
                    uarch::all_machines()
                } else {
                    models
                        .iter()
                        .cloned()
                        .chain(imported.iter().map(|(_, m)| m.clone()))
                        .collect()
                };
                engine::lint_corpus_machines(&grid, opts.threads, None)
            } else {
                Vec::new()
            };
            let baseline = match opts.baseline.as_deref() {
                Some(p) => Some(read(p)?),
                None => None,
            };
            let policy = cli::LintPolicy {
                json: opts.json,
                sarif: opts.sarif,
                strict: opts.strict,
                deny: opts.deny,
                allow: opts.allow,
                baseline,
            };
            let outcome = cli::run_lint_with(&targets, precomputed, &policy);
            print!("{}", outcome.output);
            if let Some(p) = opts.write_baseline.as_deref() {
                let mut body = outcome.fingerprints.join("\n");
                if !body.is_empty() {
                    body.push('\n');
                }
                std::fs::write(p, body).map_err(|e| Error::io(p, &e))?;
                eprintln!(
                    "baseline: {} fingerprint(s) written to {p}",
                    outcome.fingerprints.len()
                );
                return Ok(0);
            }
            return Ok(outcome.exit_code);
        }
        Command::Export { sel } => {
            print!("{}", sel.resolve_one()?.to_json());
        }
        Command::Ports { sel } => {
            let m = sel.resolve_one()?;
            print!(
                "{}",
                m.port_model
                    .render(&format!("{} port model ({})", m.name, m.part))
            );
        }
        Command::StoreBench {
            sel,
            nt,
            json,
            threads,
            reference,
            profile,
        } => {
            let machines = sel.resolve_or_trio()?;
            start_profile(profile);
            let out = match threads {
                Some(n) => rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("thread pool builds")
                    .install(|| cli::run_storebench(&machines, nt, json, reference)),
                None => cli::run_storebench(&machines, nt, json, reference),
            };
            print!("{out}");
            emit_profile(profile)?;
        }
        Command::Analyze {
            path,
            sel,
            flags,
            json,
        } => {
            let asm = read(&path)?;
            let m = sel.resolve_one()?;
            start_profile(flags.profile);
            let out = if json {
                run_analyze_json(&m, &path, &asm, flags)?
            } else {
                run_analyze(&m, &asm, flags).map_err(|e| e.with_context(path))?
            };
            print!("{out}");
            emit_profile(flags.profile)?;
        }
        Command::Explain { kernel, sel, sim } => {
            let m = sel.resolve_one()?;
            print!("{}", run_explain(&m, &kernel, sim)?);
        }
        Command::Serve(opts) => {
            // Fail on an unresolvable default selection up front rather
            // than per-request (a per-request selection still resolves
            // lazily on the wire).
            if !opts.sel.is_empty() {
                opts.sel.resolve_one()?;
            }
            cli::serve::run_serve(opts, &mut std::io::stdout())?;
        }
        Command::Top(mut opts) => {
            // Clear-and-redraw only when a human is watching; piped
            // output appends frames like a log.
            use std::io::IsTerminal;
            opts.clear = std::io::stdout().is_terminal();
            cli::top::run_top(&opts, &mut std::io::stdout())?;
        }
    }
    Ok(0)
}
