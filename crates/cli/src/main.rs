//! `incore-cli` entry point. All logic lives in the library for
//! testability; this file only does I/O.

use cli::{machine_for, parse_args, run_analyze, run_lint, Command, LintTarget, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    match cmd {
        Command::Help => print!("{USAGE}"),
        Command::Machines => {
            for m in uarch::all_machines() {
                let r = m.table2_row();
                println!(
                    "{:<6} {:<12} {:<30} {:>2} ports, SIMD {:>2} B, {} int / {} FP units, {}x{}B loads, {}x{}B stores",
                    m.arch.chip(),
                    m.arch.label(),
                    m.part,
                    r.num_ports,
                    r.simd_width_bytes,
                    r.int_units,
                    r.fp_vec_units,
                    r.loads_per_cycle,
                    r.load_width_bits / 8,
                    r.stores_per_cycle,
                    r.store_width_bits / 8,
                );
            }
        }
        Command::Lint {
            path,
            arch,
            machine_file,
            json,
            strict,
            sim,
        } => {
            let read = |p: &str| match std::fs::read_to_string(p) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read `{p}`: {e}");
                    std::process::exit(1);
                }
            };
            let file_json = machine_file.as_deref().map(read);
            let asm = path.as_deref().map(read);
            // The machine used for kernel lints: an edited machine file
            // takes precedence over a built-in model.
            let imported = file_json
                .as_deref()
                .and_then(|j| uarch::Machine::from_json(j).ok());
            let builtin = arch.map(machine_for);
            let all_machines;
            let mut targets: Vec<LintTarget> = Vec::new();
            if let (Some(f), Some(j)) = (machine_file.as_deref(), file_json.as_deref()) {
                targets.push(LintTarget::MachineFile { label: f, json: j });
            }
            match (asm.as_deref(), path.as_deref()) {
                (Some(asm), Some(label)) => {
                    match imported.as_ref().or(builtin.as_ref()) {
                        Some(machine) => targets.push(LintTarget::Kernel {
                            label,
                            machine,
                            asm,
                            sim,
                        }),
                        // The machine-file lint above already reports why.
                        None => eprintln!(
                            "note: skipping kernel lints — the machine file did not import"
                        ),
                    }
                }
                _ if machine_file.is_none() => match builtin.as_ref() {
                    Some(machine) => targets.push(LintTarget::Machine(machine)),
                    None => {
                        all_machines = uarch::all_machines();
                        targets.extend(all_machines.iter().map(LintTarget::Machine));
                    }
                },
                _ => {}
            }
            let (out, code) = run_lint(&targets, json, strict);
            print!("{out}");
            std::process::exit(code);
        }
        Command::Export { arch } => {
            print!("{}", machine_for(arch).to_json());
        }
        Command::Ports { arch } => {
            let m = machine_for(arch);
            print!(
                "{}",
                m.port_model
                    .render(&format!("{} port model ({})", m.arch.label(), m.part))
            );
        }
        Command::StoreBench { arch, nt } => {
            let m = machine_for(arch);
            let kind = if nt {
                memhier::StoreKind::NonTemporal
            } else {
                memhier::StoreKind::Standard
            };
            println!("cores  traffic/stored");
            for n in 1..=m.cores {
                if n == 1 || n % 4 == 0 || n == m.cores {
                    let p = memhier::store_traffic_ratio(&m, n, kind);
                    println!("{n:>5}  {:.3}", p.ratio);
                }
            }
        }
        Command::Analyze {
            path,
            arch,
            machine_file,
            balanced,
            mca,
            sim,
            timeline,
            trace,
        } => {
            let asm = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read `{path}`: {e}");
                    std::process::exit(1);
                }
            };
            let m = match machine_file {
                Some(f) => {
                    let json = match std::fs::read_to_string(&f) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("error: cannot read `{f}`: {e}");
                            std::process::exit(1);
                        }
                    };
                    match uarch::Machine::from_json(&json) {
                        Ok(m) => m,
                        Err(e) => {
                            eprintln!("error: {e}");
                            std::process::exit(1);
                        }
                    }
                }
                None => machine_for(arch),
            };
            match run_analyze(&m, &asm, balanced, mca, sim, timeline, trace) {
                Ok(out) => print!("{out}"),
                Err(e) => {
                    eprintln!("parse error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
