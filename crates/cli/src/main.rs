//! `incore-cli` entry point. All logic lives in the library for
//! testability; this file only does I/O and exit-code plumbing: `run`
//! propagates every failure as a workspace [`cli::Error`] with `?`, and
//! `main` maps the error kind to the process exit code (2 for usage, 1
//! for everything else).

use cli::{
    machine_for, parse_args, run_analyze, run_analyze_json, run_explain, run_validate, Command,
    Error, ErrorKind, LintTarget, ProfileMode, USAGE,
};

/// Chrome trace output path for `--profile=chrome`.
const CHROME_TRACE_PATH: &str = "trace.chrome.json";

/// Start recording when a `--profile` mode was requested.
fn start_profile(mode: Option<ProfileMode>) {
    if mode.is_some() {
        obs::enable();
    }
}

/// Drain the recorder and emit the profile: text and JSON go to stderr so
/// the report on stdout stays byte-identical; chrome mode writes a trace
/// file for `about:tracing` / Perfetto.
fn emit_profile(mode: Option<ProfileMode>) -> Result<(), Error> {
    let Some(mode) = mode else { return Ok(()) };
    let profile = obs::take();
    obs::disable();
    match mode {
        ProfileMode::Chrome => {
            std::fs::write(CHROME_TRACE_PATH, cli::render_profile(&profile, mode))
                .map_err(|e| Error::io(CHROME_TRACE_PATH, &e))?;
            eprintln!(
                "profile: chrome trace written to {CHROME_TRACE_PATH} \
                 (load in about:tracing or ui.perfetto.dev)"
            );
        }
        mode => eprint!("{}", cli::render_profile(&profile, mode)),
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            if e.kind() == ErrorKind::Usage {
                eprintln!("error: {e}\n\n{USAGE}");
            } else {
                eprintln!("error: {e}");
            }
            std::process::exit(e.exit_code());
        }
    }
}

fn read(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| Error::io(path, &e))
}

fn run(args: &[String]) -> Result<i32, Error> {
    match parse_args(args)? {
        Command::Help => print!("{USAGE}"),
        Command::Machines => {
            for m in uarch::all_machines() {
                let r = m.table2_row();
                println!(
                    "{:<6} {:<12} {:<30} {:>2} ports, SIMD {:>2} B, {} int / {} FP units, {}x{}B loads, {}x{}B stores",
                    m.arch.chip(),
                    m.arch.label(),
                    m.part,
                    r.num_ports,
                    r.simd_width_bytes,
                    r.int_units,
                    r.fp_vec_units,
                    r.loads_per_cycle,
                    r.load_width_bits / 8,
                    r.stores_per_cycle,
                    r.store_width_bits / 8,
                );
            }
        }
        Command::Validate(opts) => {
            start_profile(opts.profile);
            let outcome = run_validate(&opts)?;
            print!("{}", outcome.output);
            emit_profile(opts.profile)?;
            if !outcome.gate_failures.is_empty() {
                for gate in &outcome.gate_failures {
                    eprintln!("gate failed: {gate}");
                }
                return Ok(1);
            }
        }
        Command::Lint(opts) => {
            let file_json = match opts.machine_file.as_deref() {
                Some(p) => Some(read(p)?),
                None => None,
            };
            let asm = match opts.path.as_deref() {
                Some(p) => Some(read(p)?),
                None => None,
            };
            // The machine used for kernel lints: an edited machine file
            // takes precedence over a built-in model.
            let imported = file_json
                .as_deref()
                .and_then(|j| uarch::Machine::from_json(j).ok());
            let builtin = opts.arch.map(machine_for);
            let all_machines;
            let mut targets: Vec<LintTarget> = Vec::new();
            if let (Some(f), Some(j)) = (opts.machine_file.as_deref(), file_json.as_deref()) {
                targets.push(LintTarget::MachineFile { label: f, json: j });
            }
            match (asm.as_deref(), opts.path.as_deref()) {
                (Some(asm), Some(label)) => {
                    match imported.as_ref().or(builtin.as_ref()) {
                        Some(machine) => targets.push(LintTarget::Kernel {
                            label,
                            machine,
                            asm,
                            sim: opts.sim,
                        }),
                        // The machine-file lint above already reports why.
                        None => eprintln!(
                            "note: skipping kernel lints — the machine file did not import"
                        ),
                    }
                }
                _ if opts.machine_file.is_none() && !opts.admission && !opts.corpus => {
                    match builtin.as_ref() {
                        Some(machine) => targets.push(LintTarget::Machine(machine)),
                        None => {
                            all_machines = uarch::all_machines();
                            targets.extend(all_machines.iter().map(LintTarget::Machine));
                        }
                    }
                }
                _ => {}
            }
            if opts.admission {
                let file = opts
                    .machine_file
                    .as_deref()
                    .zip(imported.as_ref())
                    .map(|(p, m)| (p, m));
                targets.extend(cli::admission_targets(opts.arch, file));
            }
            let precomputed = if opts.corpus {
                let archs: Vec<uarch::Arch> = opts.arch.into_iter().collect();
                engine::lint_corpus(&archs, opts.threads, None)
            } else {
                Vec::new()
            };
            let baseline = match opts.baseline.as_deref() {
                Some(p) => Some(read(p)?),
                None => None,
            };
            let policy = cli::LintPolicy {
                json: opts.json,
                sarif: opts.sarif,
                strict: opts.strict,
                deny: opts.deny,
                allow: opts.allow,
                baseline,
            };
            let outcome = cli::run_lint_with(&targets, precomputed, &policy);
            print!("{}", outcome.output);
            if let Some(p) = opts.write_baseline.as_deref() {
                let mut body = outcome.fingerprints.join("\n");
                if !body.is_empty() {
                    body.push('\n');
                }
                std::fs::write(p, body).map_err(|e| Error::io(p, &e))?;
                eprintln!(
                    "baseline: {} fingerprint(s) written to {p}",
                    outcome.fingerprints.len()
                );
                return Ok(0);
            }
            return Ok(outcome.exit_code);
        }
        Command::Export { arch } => {
            print!("{}", machine_for(arch).to_json());
        }
        Command::Ports { arch } => {
            let m = machine_for(arch);
            print!(
                "{}",
                m.port_model
                    .render(&format!("{} port model ({})", m.arch.label(), m.part))
            );
        }
        Command::StoreBench {
            archs,
            nt,
            json,
            threads,
            reference,
            profile,
        } => {
            start_profile(profile);
            let out = match threads {
                Some(n) => rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("thread pool builds")
                    .install(|| cli::run_storebench(&archs, nt, json, reference)),
                None => cli::run_storebench(&archs, nt, json, reference),
            };
            print!("{out}");
            emit_profile(profile)?;
        }
        Command::Analyze {
            path,
            arch,
            machine_file,
            flags,
            json,
        } => {
            let asm = read(&path)?;
            let m = match machine_file {
                Some(f) => uarch::Machine::from_json(&read(&f)?)
                    .map_err(|e| Error::from(e).with_context(f))?,
                None => machine_for(arch),
            };
            start_profile(flags.profile);
            let out = if json {
                run_analyze_json(&m, &path, &asm, flags)?
            } else {
                run_analyze(&m, &asm, flags).map_err(|e| e.with_context(path))?
            };
            print!("{out}");
            emit_profile(flags.profile)?;
        }
        Command::Explain {
            kernel,
            arch,
            machine_file,
            sim,
        } => {
            let m = match machine_file {
                Some(f) => uarch::Machine::from_json(&read(&f)?)
                    .map_err(|e| Error::from(e).with_context(f))?,
                None => machine_for(arch),
            };
            print!("{}", run_explain(&m, &kernel, sim)?);
        }
    }
    Ok(0)
}
