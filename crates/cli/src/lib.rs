//! `incore-cli` — command-line front end in the spirit of OSACA:
//! analyze an assembly kernel on any of the three machine models, compare
//! against the LLVM-MCA-style baseline and the cycle-level simulator,
//! validate the predictors over the full corpus, and inspect the machines
//! themselves.
//!
//! ```text
//! incore-cli analyze <file.s> --arch <gcs|spr|genoa> [--balanced] [--mca] [--sim] [--timeline] [--trace] [--json]
//! incore-cli validate [--arch <machine>]... [--threads N] [--limit N] [--json] [--threshold X] [--max-divergent N] [--stream] [--cache-dir D] [--volume N]
//! incore-cli explain <kernel> --arch <gcs|spr|genoa>
//! incore-cli lint [file.s] [--arch <gcs|spr|genoa>] [--machine-file <m.json>] [--json] [--strict] [--sim]
//! incore-cli machines
//! incore-cli ports --arch <gcs|spr|genoa>
//! incore-cli storebench --arch <gcs|spr|genoa> [--nt]
//! ```
//!
//! `analyze`, `validate`, and `storebench` additionally take
//! `--profile[=text|json|chrome]`, which turns on the `obs` recorder for
//! the run and emits the drained profile on stderr (or, for `chrome`, as
//! a trace file loadable in `about:tracing` / Perfetto) — the report on
//! stdout stays byte-identical to an unprofiled run.
//!
//! All error paths use the workspace [`engine::Error`] type, so `main` can
//! propagate with `?` and derive the process exit code from the error kind.

pub use engine::{Error, ErrorKind};

pub mod proto;
pub mod serve;
pub mod top;

/// Simulator configuration overrides shared by `analyze` and `validate`
/// (`--iterations`, `--warmup`, `--no-early-exit`). `None`/`false` means
/// "keep the [`exec::SimConfig`] default".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimOverrides {
    pub iterations: Option<usize>,
    pub warmup: Option<usize>,
    pub no_early_exit: bool,
}

impl SimOverrides {
    /// Apply the overrides on top of a base configuration.
    pub fn apply(self, mut cfg: exec::SimConfig) -> exec::SimConfig {
        if let Some(iterations) = self.iterations {
            cfg.iterations = iterations;
        }
        if let Some(warmup) = self.warmup {
            cfg.warmup = warmup;
        }
        if self.no_early_exit {
            cfg.early_exit = false;
        }
        cfg
    }

    /// The resulting configuration over the defaults.
    pub fn config(self) -> exec::SimConfig {
        self.apply(exec::SimConfig::default())
    }
}

/// How `--profile` renders the drained [`obs::Profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// Per-stage span tree plus counter/histogram tables (the default).
    Text,
    /// The stable `obs` JSON (`{"counters":…,"histograms":…,"spans":…}`).
    Json,
    /// Chrome trace event format for `about:tracing` / Perfetto.
    Chrome,
}

/// Parse a `--profile` / `--profile=<mode>` flag occurrence.
pub fn parse_profile_mode(flag: &str) -> Result<ProfileMode, Error> {
    let rest = flag.strip_prefix("--profile").unwrap_or(flag);
    match rest.strip_prefix('=') {
        None | Some("text") => Ok(ProfileMode::Text),
        Some("json") => Ok(ProfileMode::Json),
        Some("chrome") => Ok(ProfileMode::Chrome),
        Some(other) => Err(Error::usage(format!(
            "unknown profile mode `{other}`; use text, json, or chrome"
        ))),
    }
}

/// Render a drained profile in the requested mode (what main sends to
/// stderr, or writes to the chrome trace file).
pub fn render_profile(profile: &obs::Profile, mode: ProfileMode) -> String {
    match mode {
        ProfileMode::Text => profile.render_text(),
        ProfileMode::Json => {
            let mut s = profile.to_json();
            s.push('\n');
            s
        }
        ProfileMode::Chrome => profile.to_chrome_trace(),
    }
}

/// Options for `incore-cli validate` — the full-corpus validation gate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValidateOpts {
    /// Machines to cover; empty = the paper's trio.
    pub sel: MachineSel,
    /// Worker threads; 0 = all available cores.
    pub threads: usize,
    /// Evaluate only the first N blocks (smoke runs).
    pub limit: Option<usize>,
    /// Emit the JSON [`engine::BatchReport`] instead of the text summary.
    pub json: bool,
    /// Fail (exit 1) when the in-core model's mean |RPE| exceeds this.
    pub threshold: Option<f64>,
    /// Fail (exit 1) when more than N records fire D002 (reference
    /// disagrees with every analytical model).
    pub max_divergent: Option<usize>,
    /// Reference-simulator configuration overrides.
    pub sim: SimOverrides,
    /// Record and emit an `obs` profile of the run (`--profile[=mode]`);
    /// also attaches the per-predictor `obs` summary to the JSON report.
    pub profile: Option<ProfileMode>,
    /// Evaluate through the bounded-memory streaming pipeline
    /// (`Session::run_streamed`) instead of the batch collector.
    pub stream: bool,
    /// Persist evaluated records under this directory and replay them on
    /// identical reruns (`--cache-dir`).
    pub cache_dir: Option<String>,
    /// Use a generated volume corpus of N blocks per machine instead of
    /// the standard validation grid (`--volume`).
    pub volume: Option<usize>,
}

/// What `analyze` should run and render, beyond the basic in-core model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AnalyzeFlags {
    /// Use OSACA's equal-split port heuristic instead of the optimum.
    pub balanced: bool,
    /// Also run the LLVM-MCA-style baseline.
    pub mca: bool,
    /// Also run the cycle-level core simulator.
    pub sim: bool,
    /// Print the MCA timeline view (text mode only).
    pub timeline: bool,
    /// Print the simulator's pipeline trace (text mode only).
    pub trace: bool,
    /// Simulator configuration overrides.
    pub sim_cfg: SimOverrides,
    /// Record and emit an `obs` profile of the run (`--profile[=mode]`).
    pub profile: Option<ProfileMode>,
}

/// One machine named on the command line — either a registry model
/// (`--arch` family alias or `--model` registry id, both resolved to the
/// stable registry id at parse time) or a JSON machine file path.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineRef {
    /// A registry id (`neoverse-v2`, `zen2-rome`, …), already validated.
    Model(String),
    /// A `--machine-file` path, read and imported at resolution time.
    File(String),
}

/// The machine selection shared by every subcommand: the `--arch`,
/// `--model`, and `--machine-file` occurrences in command-line order.
/// What an empty selection means (paper trio, all registry models, or a
/// usage error) is the subcommand's choice, made at resolution time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineSel {
    pub refs: Vec<MachineRef>,
}

impl MachineSel {
    /// Convenience constructor for a single registry model.
    pub fn model(id: &str) -> MachineSel {
        MachineSel {
            refs: vec![MachineRef::Model(id.to_string())],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Build every selected machine, in selection order. Registry ids were
    /// validated at parse time; machine files are read and imported here
    /// (I/O errors and import failures carry the path as context).
    pub fn resolve(&self) -> Result<Vec<uarch::Machine>, Error> {
        self.refs.iter().map(resolve_ref).collect()
    }

    /// [`MachineSel::resolve`], defaulting an empty selection to the
    /// paper's trio — the historical grid of `validate`, `storebench`,
    /// and the machine lints.
    pub fn resolve_or_trio(&self) -> Result<Vec<uarch::Machine>, Error> {
        if self.is_empty() {
            return Ok(uarch::all_machines());
        }
        self.resolve()
    }

    /// The single reference a one-machine resolution would use: a machine
    /// file wins over a registry model — the historical `--machine-file`
    /// override — and within a kind the last occurrence wins. The `serve`
    /// submit path uses this to key its caches without building the
    /// machine.
    pub fn chosen(&self) -> Result<&MachineRef, Error> {
        let last_file = self
            .refs
            .iter()
            .rev()
            .find(|r| matches!(r, MachineRef::File(_)));
        last_file
            .or_else(|| self.refs.last())
            .ok_or_else(|| Error::usage("--arch, --model, or --machine-file is required"))
    }

    /// Resolve to exactly one machine for the single-machine subcommands
    /// (`analyze`, `explain`, `export`, `ports`).
    pub fn resolve_one(&self) -> Result<uarch::Machine, Error> {
        resolve_ref(self.chosen()?)
    }
}

fn resolve_ref(r: &MachineRef) -> Result<uarch::Machine, Error> {
    match r {
        MachineRef::Model(id) => uarch::registry::machine(id)
            .ok_or_else(|| Error::usage(format!("unknown registry id `{id}`"))),
        MachineRef::File(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| Error::io(path, &e))?;
            uarch::Machine::from_json(&json).map_err(|e| Error::from(e).with_context(path.as_str()))
        }
    }
}

/// Options for `incore-cli lint` — the static-analysis driver.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintOpts {
    /// Assembly file to lint (kernel rules + predictor divergence).
    pub path: Option<String>,
    /// Machines to lint, or to lint the kernel against. A machine file
    /// takes precedence over a registry model when resolving the kernel's
    /// machine.
    pub sel: MachineSel,
    pub json: bool,
    /// Emit a SARIF 2.1.0 report instead of text/JSON.
    pub sarif: bool,
    pub strict: bool,
    pub sim: bool,
    /// Run the machine-model admission gate (rules M008–M010) over the
    /// selected machines (or all three built-ins).
    pub admission: bool,
    /// Lint every generated corpus kernel of the selected machines.
    pub corpus: bool,
    /// Rule codes promoted to error severity.
    pub deny: Vec<String>,
    /// Rule codes demoted to info severity (never fail the run).
    pub allow: Vec<String>,
    /// Baseline file: findings whose fingerprints it lists are suppressed.
    pub baseline: Option<String>,
    /// Write the current findings' fingerprints to this baseline file.
    pub write_baseline: Option<String>,
    /// Worker threads for `--corpus`; 0 = all cores (output identical).
    pub threads: usize,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Analyze {
        path: String,
        /// Machine selection; exactly one machine is resolved.
        sel: MachineSel,
        flags: AnalyzeFlags,
        /// Emit a one-record [`engine::BatchReport`] instead of text.
        json: bool,
    },
    /// Validate the predictors over the kernel corpus (Fig. 3 pipeline).
    Validate(ValidateOpts),
    /// List the machine registry (id, lineage, key parameters).
    Machines {
        json: bool,
    },
    /// Run the static diagnostics over a kernel, a machine file, the
    /// built-in machine models, or the whole corpus.
    Lint(LintOpts),
    /// Export a machine model as a JSON machine file.
    Export {
        sel: MachineSel,
    },
    Ports {
        sel: MachineSel,
    },
    StoreBench {
        /// Machines to sweep; empty = the paper's trio.
        sel: MachineSel,
        nt: bool,
        /// Emit the versioned JSON [`memhier::storebench::StoreSweepReport`].
        json: bool,
        /// Rayon pool size for the sweep; `None` = the default pool.
        threads: Option<usize>,
        /// Use the per-access reference pipeline instead of the streaming
        /// fast path (results are bit-identical; this exists to check that).
        reference: bool,
        /// Record and emit an `obs` profile of the sweep.
        profile: Option<ProfileMode>,
    },
    /// Run the long-lived analysis server (newline-delimited JSON over
    /// TCP; see [`proto`] and [`serve`]).
    Serve(serve::ServeOpts),
    /// Poll a running server and render a live terminal dashboard
    /// (see [`top`]).
    Top(top::TopOpts),
    /// Render the bottleneck-attribution report for one corpus kernel:
    /// which port, dependency chain, or front-end limit bounds it, per
    /// predictor, and why the predictors disagree when they do.
    Explain {
        /// Corpus kernel name (e.g. `triad`, `jacobi3d27`).
        kernel: String,
        /// Machine selection; exactly one machine is resolved.
        sel: MachineSel,
        /// Reference-simulator configuration overrides.
        sim: SimOverrides,
    },
    Help,
}

/// Resolve a machine name (`gcs`/`grace`, `spr`/`sapphirerapids`,
/// `genoa`/`zen4`, plus the µarch names) to its family tag. Retained for
/// library callers that want the coarse family; the CLI itself resolves
/// names through [`resolve_model_id`], which also accepts registry ids.
pub fn parse_arch(name: &str) -> Result<uarch::Arch, Error> {
    match resolve_model_id(name)? {
        "neoverse-v2" => Ok(uarch::Arch::NeoverseV2),
        "golden-cove" => Ok(uarch::Arch::GoldenCove),
        "zen4" => Ok(uarch::Arch::Zen4),
        other => Err(Error::usage(format!(
            "`{other}` is a registry model, not one of the three machine families"
        ))),
    }
}

/// Resolve a machine name to its stable registry id: the family aliases
/// the CLI has always taken (`gcs`/`grace`, `spr`/`sapphire-rapids`,
/// `genoa`/`zen-4`, the µarch names) plus every id in
/// [`uarch::registry`]. This is the single name-resolution path behind
/// `--arch` and `--model` on every subcommand, so an unknown name fails
/// with the same message everywhere.
pub fn resolve_model_id(name: &str) -> Result<&'static str, Error> {
    let lower = name.to_ascii_lowercase();
    let id = match lower.as_str() {
        "gcs" | "grace" | "neoversev2" | "v2" => "neoverse-v2",
        "spr" | "sapphire-rapids" | "sapphirerapids" | "goldencove" => "golden-cove",
        "genoa" | "zen-4" => "zen4",
        other => other,
    };
    match uarch::registry::find(id) {
        Some(entry) => Ok(entry.id),
        None => Err(Error::usage(format!(
            "unknown machine `{name}`; use gcs, spr, genoa, or a registry id \
             (see `incore-cli machines`)"
        ))),
    }
}

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, Error> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "machines" => {
            let mut json = false;
            for a in it {
                match a.as_str() {
                    "--json" => json = true,
                    other => return Err(Error::usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Machines { json })
        }
        "export" => {
            let sel = required_sel(&mut it)?;
            Ok(Command::Export { sel })
        }
        "ports" => {
            let sel = required_sel(&mut it)?;
            Ok(Command::Ports { sel })
        }
        "storebench" => {
            let mut sel = MachineSel::default();
            let (mut nt, mut json, mut reference) = (false, false, false);
            let mut threads = None;
            let mut profile = None;
            while let Some(a) = it.next() {
                if machine_flag(&mut sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--nt" => nt = true,
                    "--json" => json = true,
                    "--threads" => threads = Some(next_value(&mut it, "--threads")?),
                    "--reference" => reference = true,
                    f if is_profile_flag(f) => profile = Some(parse_profile_mode(f)?),
                    other => return Err(Error::usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::StoreBench {
                sel,
                nt,
                json,
                threads,
                reference,
                profile,
            })
        }
        "serve" => {
            let mut opts = serve::ServeOpts::default();
            while let Some(a) = it.next() {
                if machine_flag(&mut opts.sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--addr" => opts.addr = next_value(&mut it, "--addr")?,
                    "--threads" => opts.threads = next_value(&mut it, "--threads")?,
                    "--queue" => opts.queue = next_value(&mut it, "--queue")?,
                    "--cache" => opts.cache = next_value(&mut it, "--cache")?,
                    "--max-request-bytes" => {
                        opts.max_request_bytes = next_value(&mut it, "--max-request-bytes")?
                    }
                    "--throttle-ms" => opts.throttle_ms = next_value(&mut it, "--throttle-ms")?,
                    "--cache-dir" => opts.cache_dir = Some(next_value(&mut it, "--cache-dir")?),
                    "--slow-ms" => opts.slow_ms = next_value(&mut it, "--slow-ms")?,
                    "--trace" => opts.trace = Some(next_value(&mut it, "--trace")?),
                    other => return Err(Error::usage(format!("unknown flag `{other}`"))),
                }
            }
            if opts.queue == 0 {
                return Err(Error::usage("--queue must be at least 1"));
            }
            Ok(Command::Serve(opts))
        }
        "top" => {
            let mut opts = top::TopOpts::default();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--interval-ms" => opts.interval_ms = next_value(&mut it, "--interval-ms")?,
                    "--count" => opts.count = next_value(&mut it, "--count")?,
                    flag if flag.starts_with("--") => {
                        return Err(Error::usage(format!("unknown flag `{flag}`")))
                    }
                    addr if opts.addr.is_empty() => opts.addr = addr.to_string(),
                    extra => return Err(Error::usage(format!("unexpected argument `{extra}`"))),
                }
            }
            if opts.addr.is_empty() {
                return Err(Error::usage(
                    "top needs the server address (host:port, as printed by serve)",
                ));
            }
            if opts.interval_ms == 0 {
                return Err(Error::usage("--interval-ms must be at least 1"));
            }
            Ok(Command::Top(opts))
        }
        "explain" => {
            let mut kernel = None;
            let mut sel = MachineSel::default();
            let mut sim = SimOverrides::default();
            while let Some(a) = it.next() {
                if machine_flag(&mut sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--iterations" => sim.iterations = Some(next_value(&mut it, "--iterations")?),
                    "--warmup" => sim.warmup = Some(next_value(&mut it, "--warmup")?),
                    "--no-early-exit" => sim.no_early_exit = true,
                    flag if flag.starts_with("--") => {
                        return Err(Error::usage(format!("unknown flag `{flag}`")))
                    }
                    k if kernel.is_none() => kernel = Some(k.to_string()),
                    extra => return Err(Error::usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let kernel = kernel.ok_or_else(|| Error::usage("missing kernel name"))?;
            if sel.is_empty() {
                return Err(Error::usage("--arch (or --model) is required"));
            }
            Ok(Command::Explain { kernel, sel, sim })
        }
        "validate" => {
            let mut opts = ValidateOpts::default();
            while let Some(a) = it.next() {
                if machine_flag(&mut opts.sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--threads" => opts.threads = next_value(&mut it, "--threads")?,
                    "--limit" => opts.limit = Some(next_value(&mut it, "--limit")?),
                    "--json" => opts.json = true,
                    "--threshold" => opts.threshold = Some(next_value(&mut it, "--threshold")?),
                    "--max-divergent" => {
                        opts.max_divergent = Some(next_value(&mut it, "--max-divergent")?)
                    }
                    "--iterations" => {
                        opts.sim.iterations = Some(next_value(&mut it, "--iterations")?)
                    }
                    "--warmup" => opts.sim.warmup = Some(next_value(&mut it, "--warmup")?),
                    "--no-early-exit" => opts.sim.no_early_exit = true,
                    "--stream" => opts.stream = true,
                    "--cache-dir" => opts.cache_dir = Some(next_value(&mut it, "--cache-dir")?),
                    "--volume" => opts.volume = Some(next_value(&mut it, "--volume")?),
                    f if is_profile_flag(f) => opts.profile = Some(parse_profile_mode(f)?),
                    other => return Err(Error::usage(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Validate(opts))
        }
        "lint" => {
            let mut opts = LintOpts::default();
            while let Some(a) = it.next() {
                if machine_flag(&mut opts.sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--json" => opts.json = true,
                    "--sarif" => opts.sarif = true,
                    "--strict" => opts.strict = true,
                    "--sim" => opts.sim = true,
                    "--admission" => opts.admission = true,
                    "--corpus" => opts.corpus = true,
                    "--deny" => opts.deny.push(next_value(&mut it, "--deny")?),
                    "--allow" => opts.allow.push(next_value(&mut it, "--allow")?),
                    "--baseline" => opts.baseline = Some(next_value(&mut it, "--baseline")?),
                    "--write-baseline" => {
                        opts.write_baseline = Some(next_value(&mut it, "--write-baseline")?)
                    }
                    "--threads" => opts.threads = next_value(&mut it, "--threads")?,
                    flag if flag.starts_with("--") => {
                        return Err(Error::usage(format!("unknown flag `{flag}`")))
                    }
                    p if opts.path.is_none() => opts.path = Some(p.to_string()),
                    extra => return Err(Error::usage(format!("unexpected argument `{extra}`"))),
                }
            }
            if opts.path.is_some() && opts.sel.is_empty() {
                return Err(Error::usage(
                    "--arch, --model, or --machine-file is required when linting a kernel",
                ));
            }
            if opts.json && opts.sarif {
                return Err(Error::usage("--json and --sarif are mutually exclusive"));
            }
            Ok(Command::Lint(opts))
        }
        "analyze" => {
            let mut path = None;
            let mut sel = MachineSel::default();
            let mut flags = AnalyzeFlags::default();
            let mut json = false;
            while let Some(a) = it.next() {
                if machine_flag(&mut sel, a.as_str(), &mut it)? {
                    continue;
                }
                match a.as_str() {
                    "--balanced" => flags.balanced = true,
                    "--mca" => flags.mca = true,
                    "--sim" => flags.sim = true,
                    "--timeline" => flags.timeline = true,
                    "--trace" => flags.trace = true,
                    "--json" => json = true,
                    "--iterations" => {
                        flags.sim_cfg.iterations = Some(next_value(&mut it, "--iterations")?)
                    }
                    "--warmup" => flags.sim_cfg.warmup = Some(next_value(&mut it, "--warmup")?),
                    "--no-early-exit" => flags.sim_cfg.no_early_exit = true,
                    f if is_profile_flag(f) => flags.profile = Some(parse_profile_mode(f)?),
                    flag if flag.starts_with("--") => {
                        return Err(Error::usage(format!("unknown flag `{flag}`")))
                    }
                    p if path.is_none() => path = Some(p.to_string()),
                    extra => return Err(Error::usage(format!("unexpected argument `{extra}`"))),
                }
            }
            let path = path.ok_or_else(|| Error::usage("missing input file"))?;
            if sel.is_empty() {
                return Err(Error::usage("--arch (or --model) is required"));
            }
            Ok(Command::Analyze {
                path,
                sel,
                flags,
                json,
            })
        }
        other => Err(Error::usage(format!(
            "unknown command `{other}`; try `help`"
        ))),
    }
}

fn is_profile_flag(flag: &str) -> bool {
    flag == "--profile" || flag.starts_with("--profile=")
}

/// The shared machine-selection parser: consume one `--arch`, `--model`,
/// or `--machine-file` occurrence into `sel`. Returns `Ok(false)` when the
/// flag is not a machine flag (so the subcommand's own loop handles it),
/// which is what lets every subcommand accept the same three flags with
/// the same validation and the same error messages.
fn machine_flag<'a>(
    sel: &mut MachineSel,
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<bool, Error> {
    match flag {
        "--arch" | "--model" => {
            let v = it
                .next()
                .ok_or_else(|| Error::usage(format!("{flag} needs a value")))?;
            let id = resolve_model_id(v)?;
            sel.refs.push(MachineRef::Model(id.to_string()));
            Ok(true)
        }
        "--machine-file" => {
            let v = it
                .next()
                .ok_or_else(|| Error::usage("--machine-file needs a path"))?;
            sel.refs.push(MachineRef::File(v.to_string()));
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn next_value<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, Error> {
    let v = it
        .next()
        .ok_or_else(|| Error::usage(format!("{flag} needs a value")))?;
    v.parse()
        .map_err(|_| Error::usage(format!("invalid value `{v}` for {flag}")))
}

/// Argument tail for the single-machine subcommands that take nothing but
/// a machine selection (`export`, `ports`).
fn required_sel<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<MachineSel, Error> {
    let mut sel = MachineSel::default();
    while let Some(a) = it.next() {
        if machine_flag(&mut sel, a.as_str(), it)? {
            continue;
        }
        return Err(Error::usage(format!("unknown flag `{a}`")));
    }
    if sel.is_empty() {
        return Err(Error::usage("--arch (or --model) is required"));
    }
    Ok(sel)
}

/// The help text.
pub const USAGE: &str = "\
incore-cli — in-core performance modeling of Grace, Sapphire Rapids, and Genoa

Every subcommand selects machines the same way:
      --arch <machine>     a family alias (gcs, spr, genoa, or the µarch names)
      --model <id>         a machine-registry id (see `incore-cli machines`)
      --machine-file <file.json>  an edited/exported JSON machine file

USAGE:
  incore-cli analyze <file.s> --arch <machine> [flags]
      --balanced   use OSACA's equal-split port heuristic instead of the optimum
      --mca        also run the LLVM-MCA-style baseline
      --sim        also run the cycle-level core simulator
      --timeline   print the MCA timeline view
      --trace      print the simulator's pipeline trace
      --json       emit a one-record JSON report (same schema as validate)
      --iterations <n>     simulator measured iterations (default 200)
      --warmup <n>         simulator warm-up iterations (default 50)
      --no-early-exit      simulate every iteration (no steady-state extrapolation)
      --profile[=mode]     obs profile on stderr (text|json) or trace.chrome.json (chrome)
  incore-cli validate [flags]         validate the predictors over the kernel corpus
      --arch/--model/--machine-file   restrict the grid (repeatable; default: the
                           paper's three machines)
      --threads <n>        worker threads (0 = all cores); results are identical
      --limit <n>          only the first n corpus blocks (smoke runs)
      --json               emit the JSON BatchReport instead of the text summary
      --threshold <x>      exit 1 if the in-core model's mean |RPE| exceeds x
      --max-divergent <n>  exit 1 if more than n records fire D002
      --iterations / --warmup / --no-early-exit   as for analyze (reference simulator)
      --profile[=mode]     obs profile (also adds the per-predictor obs block to --json)
      --stream             bounded-memory streaming pipeline (same report, flat RSS)
      --cache-dir <dir>    persist evaluated records; identical reruns replay from disk
      --volume <n>         generated volume corpus of n blocks per machine (the first
                           grid-sized prefix reproduces the standard corpus)
  incore-cli explain <kernel> --arch <machine>   bottleneck-attribution report for a
      corpus kernel: the binding port/dependency/front-end bound per predictor and
      why the predictors disagree (divergence rules D001/D002, attribution rule D003)
      --iterations / --warmup / --no-early-exit   as for analyze (reference simulator)
  incore-cli lint [file.s] [flags]    run the static diagnostics (rule codes K*, M*, D*, S*)
      --arch/--model       machine for kernel lints / machines to lint (repeatable)
      --machine-file <file.json>  lint an edited machine file (also used for kernel lints)
      --sim        include the cycle-level simulator in the divergence check
      --admission  run the machine-model admission gate (M008-M010): the machine's
                   tables must cover every instruction form its corpus decodes to;
                   with no selection, every registry model is gated
      --corpus     lint every generated corpus kernel (K001-K010), in parallel
      --threads <n>        worker threads for --corpus (output identical at any count)
      --deny <CODE>        promote a rule to error severity (repeatable)
      --allow <CODE>       demote a rule to info severity (repeatable; wins over --deny)
      --baseline <file>    suppress findings recorded in a baseline file
      --write-baseline <file>  record current findings as the baseline, exit 0
      --json       emit a machine-readable JSON report
      --sarif      emit a SARIF 2.1.0 report (for code-scanning upload)
      --strict     treat warnings as errors (nonzero exit)
      with no file and no selection, the paper's three models are linted
  incore-cli serve [flags]            long-running analysis server: newline-delimited
      JSON requests over TCP, answered from a sharded worker pool with request
      coalescing, a bounded LRU response cache, and explicit overload backpressure
      --addr <host:port>   bind address (default 127.0.0.1:0; the port is printed)
      --threads <n>        worker shards (0 = all cores)
      --queue <n>          per-shard queue bound; a full shard answers `overloaded`
      --cache <n>          response/kernel/machine LRU capacity (entries)
      --max-request-bytes <n>  reject request frames larger than this
      --throttle-ms <n>    artificial per-job delay (load testing)
      --cache-dir <dir>    persist responses on disk (content-addressed, bounded
                           by --cache entries, replayed across restarts)
      --arch/--model/--machine-file   default machine for requests that name none
      --slow-ms <n>        journal a warn event for requests slower than this
      --trace <file>       record per-request span trees to a Chrome trace file
      wire protocol: {\"type\":\"analyze\",\"id\":1,\"asm\":\"...\",\"arch\":\"spr\"} in,
      {\"id\":1,\"ok\":true,\"report\":<analyze --json report>} out; also `ping`,
      `metrics` (versioned counters/latency JSON), `events` (journal drain),
      and `shutdown` (graceful drain); an HTTP GET on the same port answers
      a Prometheus text scrape
  incore-cli top <host:port> [flags]  live dashboard over a running serve
      instance: totals, 10s/1m/5m rolling rates, service-time quantiles,
      cache/queue state, and the event-journal tail, re-rendered per tick
      --interval-ms <n>    poll period (default 1000)
      --count <n>          render n frames then exit (default 0 = until drain)
  incore-cli machines [--json]        list the machine registry: id, lineage
      (base model + composition deltas), and key parameters
  incore-cli export --arch <machine>  dump a machine model as an editable JSON file
  incore-cli ports --arch <machine>   render the port model (Fig. 1)
  incore-cli storebench [flags]       store-only traffic-ratio sweep (Fig. 4)
      --arch/--model/--machine-file   restrict the sweep (repeatable; default: the
                           paper's three machines)
      --nt                 non-temporal stores instead of standard write-allocate
      --json               emit the versioned JSON StoreSweepReport
      --threads <n>        rayon pool size; output is identical at every count
      --reference          per-access reference pipeline (bit-identical, slower)
      --profile[=mode]     obs profile of the sweep (text|json|chrome)
";

/// Render `incore-cli storebench`: the Fig. 4 store-only sweep over one
/// or more machines, as the original text table or the versioned JSON
/// [`memhier::storebench::StoreSweepReport`]. With `reference` the sweep
/// runs the per-access oracle pipeline instead of the streaming fast
/// path — output is bit-identical either way.
pub fn run_storebench(
    machines: &[uarch::Machine],
    nt: bool,
    json: bool,
    reference: bool,
) -> String {
    use std::fmt::Write;
    let kind = if nt {
        memhier::StoreKind::NonTemporal
    } else {
        memhier::StoreKind::Standard
    };
    let scfg = if reference {
        memhier::StreamConfig::reference()
    } else {
        memhier::StreamConfig::default()
    };
    let counts: Vec<Vec<u32>> = machines
        .iter()
        .map(|m| {
            (1..=m.cores)
                .filter(|&n| n == 1 || n % 4 == 0 || n == m.cores)
                .collect()
        })
        .collect();
    let report = memhier::storebench::sweep_report(machines, &counts, kind, scfg);
    if json {
        return report.to_json();
    }
    let mut s = String::new();
    for (i, m) in report.machines.iter().enumerate() {
        if report.machines.len() > 1 {
            if i > 0 {
                s.push('\n');
            }
            let _ = writeln!(s, "{} ({})", m.chip, m.arch);
        }
        let _ = writeln!(s, "cores  traffic/stored");
        for p in &m.points {
            let _ = writeln!(s, "{:>5}  {:.3}", p.cores, p.ratio);
        }
    }
    s
}

/// Machine model for an arch tag.
pub fn machine_for(arch: uarch::Arch) -> uarch::Machine {
    match arch {
        uarch::Arch::NeoverseV2 => uarch::Machine::neoverse_v2(),
        uarch::Arch::GoldenCove => uarch::Machine::golden_cove(),
        uarch::Arch::Zen4 => uarch::Machine::zen4(),
    }
}

/// Schema version of the `machines --json` registry listing.
pub const MACHINES_SCHEMA_VERSION: u32 = 1;

/// Render `incore-cli machines [--json]`: the machine registry in its
/// deterministic order — id, name/chip, lineage (base model plus the
/// composition deltas applied on top), and the key parameters. The JSON
/// form is the byte-stable listing the golden snapshot fixture and the CI
/// artifact pin.
pub fn run_machines(json: bool) -> String {
    use std::fmt::Write;
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut s = String::new();
    if json {
        s.push_str(&format!(
            "{{\"schema_version\":{MACHINES_SCHEMA_VERSION},\"models\":["
        ));
        for (i, entry) in uarch::registry::entries().iter().enumerate() {
            let b = (entry.build)();
            let m = b.clone().build();
            if i > 0 {
                s.push(',');
            }
            let deltas: Vec<String> = b
                .deltas()
                .iter()
                .map(|d| format!("\"{}\"", esc(d)))
                .collect();
            let _ = write!(
                s,
                "{{\"id\":\"{}\",\"name\":\"{}\",\"chip\":\"{}\",\"part\":\"{}\",\
                 \"base\":\"{}\",\"deltas\":[{}],\"summary\":\"{}\",\
                 \"ports\":{},\"dispatch_width\":{},\"rob_size\":{},\"sched_size\":{},\
                 \"cores\":{},\"numa_domains\":{},\"simd_width_bits\":{},\
                 \"max_isa_vec_bits\":{},\"base_freq_ghz\":{},\"max_freq_ghz\":{},\
                 \"mem_type\":\"{}\",\"theor_bw_gbs\":{}}}",
                esc(m.id),
                esc(m.name),
                esc(m.chip),
                esc(m.part),
                esc(b.base()),
                deltas.join(","),
                esc(entry.summary),
                m.port_model.num_ports(),
                m.dispatch_width,
                m.rob_size,
                m.sched_size,
                m.cores,
                m.numa_domains,
                m.simd_width_bits,
                m.max_isa_vec_bits,
                m.base_freq_ghz,
                m.max_freq_ghz,
                esc(m.memory.mem_type),
                m.memory.theor_bw_gbs,
            );
        }
        s.push_str("]}\n");
        return s;
    }
    for entry in uarch::registry::entries() {
        let b = (entry.build)();
        let m = b.clone().build();
        let _ = writeln!(
            s,
            "{:<20} {} [{}] — {}",
            m.id, m.name, m.chip, entry.summary
        );
        let _ = writeln!(
            s,
            "    {} ports, ROB {}, sched {}, {}-wide dispatch, SIMD {} b (ISA max {} b), \
             {} cores @ {} GHz, {} {} GB/s",
            m.port_model.num_ports(),
            m.rob_size,
            m.sched_size,
            m.dispatch_width,
            m.simd_width_bits,
            m.max_isa_vec_bits,
            m.cores,
            m.base_freq_ghz,
            m.memory.mem_type,
            m.memory.theor_bw_gbs,
        );
        if b.deltas().is_empty() {
            let _ = writeln!(s, "    base model (paper family)");
        } else {
            let _ = writeln!(s, "    base: {} + {}", b.base(), b.deltas().join("; "));
        }
    }
    s
}

/// Execute a parsed command against assembly text already read from disk
/// (separated from `main` for testability). Returns the rendered output.
pub fn run_analyze(
    machine: &uarch::Machine,
    asm: &str,
    flags: AnalyzeFlags,
) -> Result<String, Error> {
    use std::fmt::Write;
    let kernel = isa::parse_kernel(asm, machine.isa)?;
    let opts = incore::Options {
        assignment: if flags.balanced {
            incore::PortAssignment::Balanced
        } else {
            incore::PortAssignment::Optimal
        },
        frontend: true,
    };
    let analysis = incore::analyze_with(machine, &kernel, opts);
    let mut out = incore::Report::new(machine, &analysis).render();
    if flags.sim {
        let sim = exec::simulate(machine, &kernel, flags.sim_cfg.config()).cycles_per_iter;
        let _ = writeln!(
            out,
            "simulator:                        {sim:>7.2} cy/iter (RPE {:+.1}%)",
            (sim - analysis.prediction) / sim.max(1e-12) * 100.0
        );
    }
    if flags.mca {
        let m = mca::predict(machine, &kernel).cycles_per_iter;
        let _ = writeln!(out, "LLVM-MCA-style baseline:          {m:>7.2} cy/iter");
    }
    if flags.timeline {
        let _ = writeln!(out, "\n{}", mca::timeline::render(machine, &kernel, 2));
    }
    if flags.trace {
        let _ = writeln!(out, "\n{}", exec::trace::render(machine, &kernel, 2));
    }
    Ok(out)
}

/// Evaluate one parsed kernel through the same [`engine::evaluate_block`]
/// path as `validate` and wrap it in a one-record
/// [`engine::BatchReport`] with **zeroed timings** — fully deterministic
/// for a given (machine, label, kernel, flags), which is what lets the
/// server coalesce identical requests and replay cached responses
/// byte-for-byte. The measured timings are returned alongside for
/// callers that want to stamp them in ([`run_analyze_json`]).
pub fn analyze_report(
    machine: &uarch::Machine,
    label: &str,
    kernel: &isa::Kernel,
    flags: AnalyzeFlags,
) -> (engine::BatchReport, engine::BlockTimings) {
    let model: Box<dyn uarch::Predictor> = if flags.balanced {
        Box::new(incore::InCoreModel::balanced())
    } else {
        Box::new(incore::InCoreModel::new())
    };
    let mut analytical: Vec<Box<dyn uarch::Predictor>> = vec![model];
    if flags.mca {
        analytical.push(Box::new(mca::McaBaseline));
    }
    let sim = exec::CoreSimulator {
        config: flags.sim_cfg.config(),
    };
    let reference: Option<&dyn uarch::Predictor> = if flags.sim { Some(&sim) } else { None };
    let refs: Vec<&dyn uarch::Predictor> = analytical.iter().map(|b| b.as_ref()).collect();
    let (record, block_timings) = engine::evaluate_block_timed(
        machine,
        kernel,
        engine::BlockLabels {
            kernel: label,
            compiler: "",
            opt: "",
        },
        &refs,
        reference,
    );
    let report = engine::BatchReport::from_records(
        vec![machine.name.to_string()],
        refs.iter().map(|p| p.name().to_string()).collect(),
        reference.map(|r| r.name().to_string()),
        vec![record],
        engine::CacheStats::default(),
    );
    (report, block_timings)
}

/// The deterministic one-record JSON report for an assembly string: what
/// a served `analyze` response embeds, and `analyze --json` minus the
/// wall-clock timing stamp. Newline-terminated.
pub fn analyze_report_json(
    machine: &uarch::Machine,
    label: &str,
    asm: &str,
    flags: AnalyzeFlags,
) -> Result<String, Error> {
    let kernel =
        isa::parse_kernel(asm, machine.isa).map_err(|e| Error::from(e).with_context(label))?;
    let (report, _) = analyze_report(machine, label, &kernel, flags);
    let mut out = report.to_json();
    out.push('\n');
    Ok(out)
}

/// `analyze --json`: the [`analyze_report`] record with the run's
/// measured timings stamped in, so scripted consumers see a single
/// schema whichever subcommand produced it.
pub fn run_analyze_json(
    machine: &uarch::Machine,
    label: &str,
    asm: &str,
    flags: AnalyzeFlags,
) -> Result<String, Error> {
    let wall_start = std::time::Instant::now();
    let kernel =
        isa::parse_kernel(asm, machine.isa).map_err(|e| Error::from(e).with_context(label))?;
    let (mut report, block_timings) = analyze_report(machine, label, &kernel, flags);
    report.timings = engine::RunTimings {
        wall_ms: wall_start.elapsed().as_nanos() as f64 / 1e6,
        parse_ms: 0.0,
        reference_ms: block_timings.reference_ns as f64 / 1e6,
        predictors_ms: block_timings.predictors_ns as f64 / 1e6,
        cache_ms: 0.0,
    };
    let mut out = report.to_json();
    out.push('\n');
    Ok(out)
}

/// Result of `incore-cli validate`: the rendered report plus any gate
/// failures (printed to stderr; each makes the exit code nonzero).
pub struct ValidateOutcome {
    pub output: String,
    pub gate_failures: Vec<Error>,
}

/// Run the corpus validation pipeline and apply the CI gates.
pub fn run_validate(opts: &ValidateOpts) -> Result<ValidateOutcome, Error> {
    let mut session = engine::Session::new()
        .threads(opts.threads)
        .sim_config(opts.sim.config())
        .profile(opts.profile.is_some());
    if !opts.sel.is_empty() {
        session = session.machines(opts.sel.resolve()?);
    }
    if let Some(limit) = opts.limit {
        session = session.limit(limit);
    }
    if let Some(volume) = opts.volume {
        session = session.volume(volume);
    }
    if let Some(dir) = &opts.cache_dir {
        session = session.cache_dir(dir);
    }
    let report = if opts.stream {
        session.run_streamed(0)?
    } else {
        session.run()?
    };
    let mut gate_failures = Vec::new();
    if let Some(limit) = opts.threshold {
        let mean = report.summary("incore").map(|s| s.mean_abs).unwrap_or(0.0);
        if mean > limit {
            gate_failures.push(Error::threshold("mean |RPE| (incore)", mean, limit));
        }
    }
    if let Some(max) = opts.max_divergent {
        if report.d002_records > max {
            gate_failures.push(Error::threshold(
                "records with D002 divergence",
                report.d002_records as f64,
                max as f64,
            ));
        }
    }
    let output = if opts.json {
        let mut s = report.to_json();
        s.push('\n');
        s
    } else {
        report.render_text()
    };
    Ok(ValidateOutcome {
        output,
        gate_failures,
    })
}

/// The attribution margin: the top in-core bound must clear the
/// runner-up by this factor to count as the *dominating* resource. Inside
/// the margin the bounds are effectively tied, the report says so, and a
/// divergent kernel additionally fires `D003`
/// (divergence-without-attribution).
pub const ATTRIBUTION_MARGIN: f64 = 1.05;

/// `incore-cli explain <kernel> --arch <a>` — the bottleneck-attribution
/// report for one corpus kernel: run all three predictors on the kernel's
/// first corpus variant, rank the in-core bounds (port pressure,
/// loop-carried dependency, front-end dispatch), name the binding
/// resource, and explain disagreement through the `diag` divergence rules
/// (`D001`/`D002`) plus the attribution rule `D003` when the predictors
/// diverge and no bound dominates.
pub fn run_explain(
    machine: &uarch::Machine,
    kernel_name: &str,
    sim_cfg: SimOverrides,
) -> Result<String, Error> {
    use std::fmt::Write;
    let variants = kernels::variants_for(machine.arch);
    // Corpus kernel names are display names ("STREAM triad", "Jacobi 3D
    // 27pt"); match case-insensitively ignoring spaces/punctuation, and
    // accept a unique substring ("jacobi3d27", "schoenauer").
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect::<String>()
    };
    let want = norm(kernel_name);
    let exact = variants.iter().find(|v| norm(v.kernel.name()) == want);
    let variant = match exact {
        Some(v) => v,
        None => {
            let subs: Vec<&kernels::Variant> = variants
                .iter()
                .filter(|v| !want.is_empty() && norm(v.kernel.name()).contains(&want))
                .collect();
            let mut sub_names: Vec<&str> = subs.iter().map(|v| v.kernel.name()).collect();
            sub_names.dedup();
            match sub_names.len() {
                1 => subs[0],
                0 => {
                    let mut names: Vec<&str> = variants.iter().map(|v| v.kernel.name()).collect();
                    names.dedup();
                    return Err(Error::usage(format!(
                        "unknown kernel `{kernel_name}` for {}; corpus kernels: {}",
                        machine.name,
                        names.join(", ")
                    )));
                }
                _ => {
                    return Err(Error::usage(format!(
                        "ambiguous kernel `{kernel_name}`; matches: {}",
                        sub_names.join(", ")
                    )))
                }
            }
        }
    };
    let kernel = kernels::generate_kernel(variant, machine);
    let analysis = incore::analyze_with(machine, &kernel, incore::Options::default());
    let mca_pred = mca::predict(machine, &kernel);
    let sim_pred = exec::simulate(machine, &kernel, sim_cfg.config());
    let (mca_cy, sim_cy) = (mca_pred.cycles_per_iter, sim_pred.cycles_per_iter);

    // Rank the in-core bounds; the winner is the bounding resource, and it
    // dominates when it clears the runner-up by the attribution margin.
    let binding_ports = analysis
        .busiest_ports()
        .iter()
        .map(|&i| machine.port_model.ports[i].name)
        .collect::<Vec<_>>()
        .join("/");
    let bounds = [
        ("port pressure", analysis.tp_bound),
        ("loop-carried dependency", analysis.lcd),
        ("front-end dispatch", analysis.frontend_bound),
    ];
    let mut ranked = bounds;
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let ((win_name, win), (run_name, run)) = (ranked[0], ranked[1]);
    let resource = if win_name == "port pressure" && !binding_ports.is_empty() {
        format!("port pressure on {binding_ports}")
    } else {
        win_name.to_string()
    };
    let dominating = win > run * ATTRIBUTION_MARGIN;

    let mut diags = diag::divergence_diags_named(
        &[("incore", analysis.prediction), ("mca", mca_cy)],
        Some(("sim", sim_cy)),
    );
    let divergent = !diags.is_empty();
    diags.extend(diag::attribution_diags(
        variant.kernel.name(),
        divergent,
        dominating.then_some(resource.as_str()),
    ));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explain {} on {} ({})",
        variant.kernel.name(),
        machine.chip,
        machine.name
    );
    let _ = writeln!(out, "variant: {}", variant.label());
    let _ = writeln!(out);
    let _ = writeln!(out, "predictions (cy/iter):");
    let pct = |p: f64| {
        if sim_cy > 1e-9 {
            format!("  ({:+.1}% vs sim)", (p - sim_cy) / sim_cy * 100.0)
        } else {
            String::new()
        }
    };
    let _ = writeln!(
        out,
        "  incore {:>8.2}  bottleneck: {}{}",
        analysis.prediction,
        match analysis.bottleneck() {
            incore::Bottleneck::PortPressure => "port-pressure",
            incore::Bottleneck::Dependency => "dependency",
            incore::Bottleneck::FrontEnd => "front-end",
        },
        pct(analysis.prediction)
    );
    let _ = writeln!(
        out,
        "  mca    {:>8.2}  {} µops/iter{}",
        mca_cy,
        mca_pred.uops,
        pct(mca_cy)
    );
    let _ = writeln!(
        out,
        "  sim    {:>8.2}  {:.2} µops/cy  (reference)",
        sim_cy, sim_pred.uops_per_cycle
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "in-core bounds (cy/iter):");
    for (name, v) in &bounds {
        let mark = if *name == win_name {
            "  <- binding"
        } else {
            ""
        };
        let _ = writeln!(out, "  {name:<24} {v:>8.2}{mark}");
    }
    if !binding_ports.is_empty() {
        let _ = writeln!(
            out,
            "  binding ports: {binding_ports} ({:.2} cy each)",
            analysis.port_loads.iter().copied().fold(0.0f64, f64::max)
        );
    }
    let _ = writeln!(out);
    if dominating {
        let over = if run > 1e-9 {
            format!(
                "{:.0}% over runner-up {run_name}",
                (win / run - 1.0) * 100.0
            )
        } else {
            format!("runner-up {run_name} is zero")
        };
        let _ = writeln!(out, "bound by: {resource} (dominating; {over})");
    } else {
        let _ = writeln!(
            out,
            "bound by: {resource} (narrow; {run_name} at {run:.2} cy is within the \
             {:.0}% attribution margin — no dominating resource)",
            (ATTRIBUTION_MARGIN - 1.0) * 100.0
        );
    }
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "predictors agree (no divergence rule fired); the attribution above \
             explains all three."
        );
    } else {
        let _ = writeln!(out);
        out.push_str(&diag::render_text(&diags));
    }
    Ok(out)
}

/// One unit of work for `incore-cli lint` (separated from `main` so the
/// whole subcommand is testable without touching the filesystem).
pub enum LintTarget<'a> {
    /// A machine model already in memory (built-in models).
    Machine(&'a uarch::Machine),
    /// The raw JSON text of a user-supplied machine file.
    MachineFile { label: &'a str, json: &'a str },
    /// Assembly text to run the kernel rules and the predictor-divergence
    /// check against, on the given machine.
    Kernel {
        label: &'a str,
        machine: &'a uarch::Machine,
        asm: &'a str,
        sim: bool,
    },
    /// The machine-model admission gate (rules M008–M010): cross-check a
    /// machine's tables against the ISA coverage its corpus demands. The
    /// model is boxed so this owning variant stays close in size to the
    /// borrowing ones.
    Admission {
        label: String,
        machine: Box<uarch::Machine>,
    },
}

impl LintTarget<'_> {
    fn name(&self) -> String {
        match self {
            LintTarget::Machine(m) => format!("machine:{}", m.name),
            LintTarget::MachineFile { label, .. } => format!("machine-file:{label}"),
            LintTarget::Kernel { label, .. } => format!("kernel:{label}"),
            LintTarget::Admission { label, .. } => format!("admission:{label}"),
        }
    }

    fn lint(&self) -> Vec<diag::Diagnostic> {
        match self {
            LintTarget::Machine(m) => diag::lint_machine(m),
            LintTarget::MachineFile { json, .. } => diag::lint_machine_file(json).1,
            LintTarget::Kernel {
                machine, asm, sim, ..
            } => {
                let (kernel, mut diags) = diag::lint_assembly(machine, asm);
                if let Some(k) = kernel {
                    diags.extend(semck::lint_kernel_sem(machine, &k));
                    diags.extend(diag::lint_divergence(machine, &k, *sim).1);
                }
                diags
            }
            LintTarget::Admission { machine, .. } => semck::lint_admission(machine),
        }
    }
}

/// How a lint run renders and gates its findings — the policy half of
/// [`LintOpts`] (everything except target selection and file paths, which
/// `main` resolves into [`LintTarget`]s and file contents).
#[derive(Debug, Clone, Default)]
pub struct LintPolicy {
    pub json: bool,
    /// SARIF 2.1.0 output (wins over `json`-style rendering).
    pub sarif: bool,
    pub strict: bool,
    /// Rule codes promoted to error severity.
    pub deny: Vec<String>,
    /// Rule codes demoted to info severity (never fail the run).
    pub allow: Vec<String>,
    /// Baseline file *content*: one fingerprint per line; matching
    /// findings are suppressed before rendering and gating.
    pub baseline: Option<String>,
}

/// Result of a lint run: the rendered report, the process exit code, and
/// the sorted fingerprints of every finding (what `--write-baseline`
/// serializes).
pub struct LintOutcome {
    pub output: String,
    pub exit_code: i32,
    pub fingerprints: Vec<String>,
}

/// Stable identity of one finding for baseline matching. Deliberately
/// excludes severity and message text so `--deny`/`--allow` and message
/// rewording don't invalidate a recorded baseline.
fn fingerprint(target: &str, d: &diag::Diagnostic) -> String {
    let (line, snippet) = d
        .span
        .as_ref()
        .map(|s| (s.line, s.snippet.as_str()))
        .unwrap_or((0, ""));
    format!("{target}|{}|{line}|{snippet}", d.code)
}

/// Run the lint rules over every target (plus any precomputed results,
/// e.g. a parallel corpus sweep), apply the severity overrides and the
/// baseline filter, and render the combined report.
pub fn run_lint_with(
    targets: &[LintTarget],
    precomputed: Vec<(String, Vec<diag::Diagnostic>)>,
    policy: &LintPolicy,
) -> LintOutcome {
    use std::fmt::Write;
    let mut results: Vec<(String, Vec<diag::Diagnostic>)> =
        targets.iter().map(|t| (t.name(), t.lint())).collect();
    results.extend(precomputed);
    // Severity overrides: --deny promotes, --allow demotes (and wins when
    // a code appears in both, so a blanket deny can carry exceptions).
    for (_, diags) in &mut results {
        for d in diags {
            if policy.deny.iter().any(|c| c == d.code) {
                d.severity = diag::Severity::Error;
            }
            if policy.allow.iter().any(|c| c == d.code) {
                d.severity = diag::Severity::Info;
            }
        }
    }
    let mut fingerprints: Vec<String> = results
        .iter()
        .flat_map(|(name, diags)| diags.iter().map(|d| fingerprint(name, d)))
        .collect();
    fingerprints.sort();
    fingerprints.dedup();
    if let Some(baseline) = &policy.baseline {
        let known: std::collections::BTreeSet<&str> = baseline
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        for (name, diags) in &mut results {
            diags.retain(|d| !known.contains(fingerprint(name, d).as_str()));
        }
    }
    let all: Vec<diag::Diagnostic> = results
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let output = if policy.sarif {
        diag::render_sarif(&results)
    } else if policy.json {
        let mut s = diag::render_json_targets(&results);
        s.push('\n');
        s
    } else {
        let mut s = String::new();
        for (name, diags) in &results {
            let _ = writeln!(s, "== {name} ==");
            s.push_str(&diag::render_text(diags));
        }
        s
    };
    LintOutcome {
        output,
        exit_code: diag::exit_code(&all, policy.strict),
        fingerprints,
    }
}

/// Run the lint rules over every target and render the combined report.
/// Returns the report and the process exit code (0 clean, 1 findings under
/// the [`diag::exit_code`] policy). Thin wrapper over [`run_lint_with`]
/// with the default policy.
pub fn run_lint(targets: &[LintTarget], json: bool, strict: bool) -> (String, i32) {
    let outcome = run_lint_with(
        targets,
        Vec::new(),
        &LintPolicy {
            json,
            strict,
            ..LintPolicy::default()
        },
    );
    (outcome.output, outcome.exit_code)
}

/// Resolve the lint options into the admission-gate targets: the selected
/// registry models (labelled by registry id), plus any imported machine
/// file (labelled by path). With no selection and no import, *every*
/// registry model goes through the gate — that is the CI invocation, so a
/// new registry entry is admission-checked the moment it is registered.
pub fn admission_targets<'a>(
    selected: Vec<uarch::Machine>,
    imported: &[(String, uarch::Machine)],
) -> Vec<LintTarget<'a>> {
    let mut targets = Vec::new();
    let models = if selected.is_empty() && imported.is_empty() {
        uarch::registry::machines()
    } else {
        selected
    };
    for m in models {
        let label = m.id.to_string();
        targets.push(LintTarget::Admission {
            label,
            machine: Box::new(m),
        });
    }
    for (label, m) in imported {
        targets.push(LintTarget::Admission {
            label: label.clone(),
            machine: Box::new(m.clone()),
        });
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_analyze_full() {
        let c = parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--mca", "--sim"])).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                path: "k.s".into(),
                sel: MachineSel::model("golden-cove"),
                flags: AnalyzeFlags {
                    mca: true,
                    sim: true,
                    ..AnalyzeFlags::default()
                },
                json: false,
            }
        );
        // --model takes a registry id and lands in the same selection.
        let c = parse_args(&sv(&["analyze", "k.s", "--model", "zen2-rome"])).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                path: "k.s".into(),
                sel: MachineSel::model("zen2-rome"),
                flags: AnalyzeFlags::default(),
                json: false,
            }
        );
    }

    #[test]
    fn every_subcommand_shares_the_machine_parser_and_its_error() {
        // The same unknown name fails identically behind --arch and
        // --model on every subcommand that selects machines.
        let mut msgs = std::collections::BTreeSet::new();
        for args in [
            sv(&["analyze", "k.s", "--arch", "m1"]),
            sv(&["analyze", "k.s", "--model", "m1"]),
            sv(&["validate", "--arch", "m1"]),
            sv(&["lint", "--model", "m1"]),
            sv(&["storebench", "--arch", "m1"]),
            sv(&["explain", "triad", "--model", "m1"]),
            sv(&["export", "--arch", "m1"]),
            sv(&["ports", "--model", "m1"]),
            sv(&["serve", "--arch", "m1"]),
        ] {
            let e = parse_args(&args).unwrap_err();
            assert_eq!(e.kind(), ErrorKind::Usage, "{args:?}");
            msgs.insert(e.to_string());
        }
        assert_eq!(msgs.len(), 1, "one consistent message: {msgs:?}");
        let msg = msgs.iter().next().unwrap();
        assert!(msg.contains("unknown machine `m1`"), "{msg}");
        assert!(msg.contains("incore-cli machines"), "{msg}");
        // Registry ids resolve everywhere a family alias does.
        for args in [
            sv(&["validate", "--model", "cascade-lake"]),
            sv(&["storebench", "--arch", "golden-cove-rob1024"]),
            sv(&["export", "--model", "zen2-rome"]),
        ] {
            assert!(parse_args(&args).is_ok(), "{args:?}");
        }
    }

    #[test]
    fn parse_serve_options() {
        let c = parse_args(&sv(&[
            "serve",
            "--addr",
            "0.0.0.0:7878",
            "--threads",
            "4",
            "--queue",
            "8",
            "--cache",
            "32",
            "--max-request-bytes",
            "4096",
            "--throttle-ms",
            "5",
            "--cache-dir",
            "/tmp/incore-serve-cache",
            "--slow-ms",
            "250",
            "--trace",
            "serve.trace.json",
            "--arch",
            "spr",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve(serve::ServeOpts {
                addr: "0.0.0.0:7878".into(),
                threads: 4,
                queue: 8,
                cache: 32,
                max_request_bytes: 4096,
                throttle_ms: 5,
                sel: MachineSel::model("golden-cove"),
                cache_dir: Some("/tmp/incore-serve-cache".into()),
                slow_ms: 250,
                trace: Some("serve.trace.json".into()),
            })
        );
        // Defaults: ephemeral local port, bounded queue/cache, no default
        // machine (requests must name one).
        match parse_args(&sv(&["serve"])).unwrap() {
            Command::Serve(opts) => {
                assert_eq!(opts, serve::ServeOpts::default());
                assert!(opts.sel.is_empty());
            }
            other => panic!("{other:?}"),
        }
        let e = parse_args(&sv(&["serve", "--queue", "0"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        let e = parse_args(&sv(&["serve", "--port"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
    }

    #[test]
    fn parse_top_options() {
        assert_eq!(
            parse_args(&sv(&[
                "top",
                "127.0.0.1:7070",
                "--interval-ms",
                "250",
                "--count",
                "3",
            ]))
            .unwrap(),
            Command::Top(top::TopOpts {
                addr: "127.0.0.1:7070".into(),
                interval_ms: 250,
                count: 3,
                clear: false,
            })
        );
        // The address is required; zero-period polling is rejected.
        let e = parse_args(&sv(&["top"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        let e = parse_args(&sv(&["top", "a:1", "--interval-ms", "0"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        let e = parse_args(&sv(&["top", "a:1", "b:2"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
    }

    #[test]
    fn analyze_report_json_is_run_analyze_json_minus_timings() {
        let machine = uarch::Machine::golden_cove();
        let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
        let flags = AnalyzeFlags {
            mca: true,
            ..AnalyzeFlags::default()
        };
        let det = analyze_report_json(&machine, "k.s", asm, flags).unwrap();
        assert_eq!(
            det,
            analyze_report_json(&machine, "k.s", asm, flags).unwrap(),
            "the served path must be bit-stable"
        );
        // The timed variant differs only in the timings stamp.
        let timed = run_analyze_json(&machine, "k.s", asm, flags).unwrap();
        let strip = |s: &str| -> String {
            let start = s.find("\"timings\":").expect("report carries timings");
            let rest = &s[start..];
            let end = start + rest.find('}').expect("timings object closes") + 1;
            format!("{}{}", &s[..start], &s[end..])
        };
        assert_eq!(strip(&det), strip(&timed));
        assert_ne!(det, timed, "run_analyze_json stamps real wall time");
    }

    #[test]
    fn parse_analyze_sim_overrides() {
        let c = parse_args(&sv(&[
            "analyze",
            "k.s",
            "--arch",
            "genoa",
            "--sim",
            "--iterations",
            "64",
            "--warmup",
            "8",
            "--no-early-exit",
        ]))
        .unwrap();
        match c {
            Command::Analyze { flags, .. } => {
                assert_eq!(
                    flags.sim_cfg,
                    SimOverrides {
                        iterations: Some(64),
                        warmup: Some(8),
                        no_early_exit: true,
                    }
                );
                let cfg = flags.sim_cfg.config();
                assert_eq!(cfg.iterations, 64);
                assert_eq!(cfg.warmup, 8);
                assert!(!cfg.early_exit);
                assert!(cfg.quirks, "overrides must not disturb other defaults");
            }
            other => panic!("{other:?}"),
        }
        let e = parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--iterations"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
    }

    #[test]
    fn parse_arch_aliases() {
        assert_eq!(parse_arch("grace").unwrap(), uarch::Arch::NeoverseV2);
        assert_eq!(parse_arch("GCS").unwrap(), uarch::Arch::NeoverseV2);
        assert_eq!(parse_arch("zen4").unwrap(), uarch::Arch::Zen4);
        assert_eq!(parse_arch("golden-cove").unwrap(), uarch::Arch::GoldenCove);
        assert!(parse_arch("m1").is_err());
    }

    #[test]
    fn missing_arch_is_an_error() {
        assert!(parse_args(&sv(&["analyze", "k.s"])).is_err());
        assert!(parse_args(&sv(&["ports"])).is_err());
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        let e = parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--wat"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("--wat"));
    }

    #[test]
    fn other_commands() {
        assert_eq!(
            parse_args(&sv(&["machines"])).unwrap(),
            Command::Machines { json: false }
        );
        assert_eq!(
            parse_args(&sv(&["machines", "--json"])).unwrap(),
            Command::Machines { json: true }
        );
        assert!(parse_args(&sv(&["machines", "--wat"])).is_err());
        assert_eq!(parse_args(&sv(&[])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&sv(&["storebench", "--arch", "genoa", "--nt"])).unwrap(),
            Command::StoreBench {
                sel: MachineSel::model("zen4"),
                nt: true,
                json: false,
                threads: None,
                reference: false,
                profile: None,
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "storebench",
                "--arch",
                "spr",
                "--arch",
                "gcs",
                "--json",
                "--threads",
                "2",
                "--reference",
            ]))
            .unwrap(),
            Command::StoreBench {
                sel: MachineSel {
                    refs: vec![
                        MachineRef::Model("golden-cove".into()),
                        MachineRef::Model("neoverse-v2".into()),
                    ],
                },
                nt: false,
                json: true,
                threads: Some(2),
                reference: true,
                profile: None,
            }
        );
        assert!(parse_args(&sv(&["storebench", "--threads", "many"])).is_err());
        assert_eq!(
            parse_args(&sv(&["ports", "--arch", "gcs"])).unwrap(),
            Command::Ports {
                sel: MachineSel::model("neoverse-v2"),
            }
        );
    }

    #[test]
    fn parse_validate_variants() {
        assert_eq!(
            parse_args(&sv(&["validate"])).unwrap(),
            Command::Validate(ValidateOpts::default())
        );
        assert_eq!(
            parse_args(&sv(&[
                "validate",
                "--arch",
                "spr",
                "--arch",
                "genoa",
                "--threads",
                "4",
                "--limit",
                "32",
                "--json",
                "--threshold",
                "0.25",
                "--max-divergent",
                "10",
            ]))
            .unwrap(),
            Command::Validate(ValidateOpts {
                sel: MachineSel {
                    refs: vec![
                        MachineRef::Model("golden-cove".into()),
                        MachineRef::Model("zen4".into()),
                    ],
                },
                threads: 4,
                limit: Some(32),
                json: true,
                threshold: Some(0.25),
                max_divergent: Some(10),
                ..ValidateOpts::default()
            })
        );
        assert_eq!(
            parse_args(&sv(&[
                "validate",
                "--stream",
                "--cache-dir",
                "/tmp/incore-cache",
                "--volume",
                "2000",
            ]))
            .unwrap(),
            Command::Validate(ValidateOpts {
                stream: true,
                cache_dir: Some("/tmp/incore-cache".into()),
                volume: Some(2000),
                ..ValidateOpts::default()
            })
        );
        assert!(parse_args(&sv(&["validate", "--volume", "many"])).is_err());
        assert!(parse_args(&sv(&["validate", "--cache-dir"])).is_err());
        assert_eq!(
            parse_args(&sv(&[
                "validate",
                "--iterations",
                "100",
                "--warmup",
                "20",
                "--no-early-exit",
            ]))
            .unwrap(),
            Command::Validate(ValidateOpts {
                sim: SimOverrides {
                    iterations: Some(100),
                    warmup: Some(20),
                    no_early_exit: true,
                },
                ..ValidateOpts::default()
            })
        );
        let e = parse_args(&sv(&["validate", "--threads", "lots"])).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        assert!(parse_args(&sv(&["validate", "--wat"])).is_err());
    }

    #[test]
    fn run_analyze_produces_report_with_extras() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n";
        let flags = AnalyzeFlags {
            mca: true,
            sim: true,
            timeline: true,
            trace: true,
            ..AnalyzeFlags::default()
        };
        let out = run_analyze(&m, asm, flags).unwrap();
        assert!(out.contains("Block prediction"));
        assert!(out.contains("simulator:"));
        assert!(out.contains("LLVM-MCA-style baseline:"));
        assert!(out.contains("MCA timeline"));
        assert!(out.contains("pipeline trace"));
        // Simulator overrides flow through to the simulated result: a short
        // no-early-exit run must agree with the default extrapolated run.
        let short = AnalyzeFlags {
            sim: true,
            sim_cfg: SimOverrides {
                iterations: Some(200),
                warmup: Some(50),
                no_early_exit: true,
            },
            ..AnalyzeFlags::default()
        };
        let out2 = run_analyze(&m, asm, short).unwrap();
        let line = |s: &str| {
            s.lines()
                .find(|l| l.contains("simulator:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(line(&out), line(&out2));
    }

    #[test]
    fn analyze_json_shares_the_batch_schema() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n";
        let flags = AnalyzeFlags {
            mca: true,
            sim: true,
            ..AnalyzeFlags::default()
        };
        let out = run_analyze_json(&m, "k.s", asm, flags).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(
            o.get("schema_version").unwrap().as_u64().unwrap(),
            engine::SCHEMA_VERSION as u64
        );
        let records = o.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 1);
        let rec = records[0].as_object().unwrap();
        assert_eq!(rec.get("kernel").unwrap().as_str().unwrap(), "k.s");
        assert!(rec.get("measured").unwrap().as_f64().unwrap() > 0.0);
        let preds = rec.get("predictions").unwrap().as_array().unwrap();
        assert_eq!(preds.len(), 2);
        assert_eq!(
            preds[0]
                .as_object()
                .unwrap()
                .get("predictor")
                .unwrap()
                .as_str()
                .unwrap(),
            "incore"
        );
        // The timings block is present and wall-clock is nonzero.
        let t = o.get("timings").unwrap().as_object().unwrap();
        assert!(t.get("wall_ms").unwrap().as_f64().unwrap() > 0.0);
        // Parse failures carry the input label as context.
        let e =
            run_analyze_json(&m, "k.s", "movq %bogus, %rax", AnalyzeFlags::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Parse);
        assert!(e.to_string().contains("k.s"));
    }

    #[test]
    fn validate_smoke_run_and_gates() {
        let clean = run_validate(&ValidateOpts {
            sel: MachineSel::model("golden-cove"),
            threads: 2,
            limit: Some(8),
            json: false,
            threshold: Some(10.0),
            max_divergent: Some(1000),
            ..ValidateOpts::default()
        })
        .unwrap();
        assert!(clean.gate_failures.is_empty());
        assert!(clean.output.contains("validation over 8 test blocks"));
        // An absurdly tight threshold must trip the gate.
        let tripped = run_validate(&ValidateOpts {
            sel: MachineSel::model("golden-cove"),
            threads: 1,
            limit: Some(8),
            json: true,
            threshold: Some(1e-9),
            max_divergent: None,
            ..ValidateOpts::default()
        })
        .unwrap();
        assert_eq!(tripped.gate_failures.len(), 1);
        assert_eq!(tripped.gate_failures[0].kind(), ErrorKind::Threshold);
        let v: serde_json::Value = serde_json::from_str(&tripped.output).unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("records")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            8
        );
    }

    #[test]
    fn storebench_text_format_is_stable() {
        // The single-machine text table is the original `--arch` output:
        // no per-machine header, same filter, same row format.
        let out = run_storebench(&[machine_for(uarch::Arch::GoldenCove)], false, false, false);
        let mut lines = out.lines();
        assert_eq!(lines.next(), Some("cores  traffic/stored"));
        let first = lines.next().unwrap();
        assert!(first.starts_with("    1  "), "{first}");
        assert!(
            !out.contains("SPR ("),
            "single machine must not get a header"
        );
        // The reference pipeline renders byte-identical text.
        let reference = run_storebench(&[machine_for(uarch::Arch::GoldenCove)], false, false, true);
        assert_eq!(out, reference);
        // All machines: one headed block per machine.
        let all = run_storebench(&uarch::all_machines(), false, false, false);
        for chip in ["GCS", "SPR", "Genoa"] {
            assert!(all.contains(&format!("{chip} (")), "{all}");
        }
    }

    #[test]
    fn storebench_json_is_versioned_and_thread_invariant() {
        let out = run_storebench(&uarch::all_machines(), true, true, false);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("schema_version").unwrap().as_u64().unwrap(), 1);
        assert_eq!(o.get("kind").unwrap().as_str().unwrap(), "nt");
        // NT sweeps cover only the machines the paper shows NT data for —
        // the report still lists all requested machines.
        assert_eq!(o.get("machines").unwrap().as_array().unwrap().len(), 3);
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds")
            .install(|| run_storebench(&uarch::all_machines(), true, true, false));
        assert_eq!(out, one, "storebench --json must not depend on threads");
    }

    #[test]
    fn parse_export_and_machine_file() {
        assert_eq!(
            parse_args(&sv(&["export", "--arch", "spr"])).unwrap(),
            Command::Export {
                sel: MachineSel::model("golden-cove"),
            }
        );
        let c = parse_args(&sv(&[
            "analyze",
            "k.s",
            "--arch",
            "spr",
            "--machine-file",
            "m.json",
        ]))
        .unwrap();
        match c {
            Command::Analyze { sel, .. } => {
                assert_eq!(
                    sel.refs,
                    vec![
                        MachineRef::Model("golden-cove".into()),
                        MachineRef::File("m.json".into()),
                    ]
                );
                // A machine file wins over a registry model, so the
                // historical `--machine-file` override still holds; the
                // missing file surfaces as an I/O error at resolution.
                assert_eq!(sel.resolve_one().unwrap_err().kind(), ErrorKind::Io);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn machine_sel_resolution_rules() {
        // Model-only: the last occurrence wins for single-machine use.
        let sel = MachineSel {
            refs: vec![
                MachineRef::Model("neoverse-v2".into()),
                MachineRef::Model("zen2-rome".into()),
            ],
        };
        assert_eq!(sel.resolve_one().unwrap().id, "zen2-rome");
        // Multi-machine resolution preserves selection order.
        let ids: Vec<&str> = sel.resolve().unwrap().iter().map(|m| m.id).collect();
        assert_eq!(ids, ["neoverse-v2", "zen2-rome"]);
        // Empty selections default to the paper's trio where allowed…
        let trio = MachineSel::default().resolve_or_trio().unwrap();
        assert_eq!(trio.len(), 3);
        assert_eq!(trio[0].id, "neoverse-v2");
        // …and are a usage error where one machine is required.
        assert_eq!(
            MachineSel::default().resolve_one().unwrap_err().kind(),
            ErrorKind::Usage
        );
    }

    #[test]
    fn run_analyze_rejects_bad_asm() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let e = run_analyze(&m, "movq %bogus, %rax", AnalyzeFlags::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Parse);
    }

    #[test]
    fn parse_lint_variants() {
        assert_eq!(
            parse_args(&sv(&["lint"])).unwrap(),
            Command::Lint(LintOpts::default())
        );
        assert_eq!(
            parse_args(&sv(&[
                "lint", "k.s", "--arch", "spr", "--json", "--strict", "--sim"
            ]))
            .unwrap(),
            Command::Lint(LintOpts {
                path: Some("k.s".into()),
                sel: MachineSel::model("golden-cove"),
                json: true,
                strict: true,
                sim: true,
                ..LintOpts::default()
            })
        );
        assert_eq!(
            parse_args(&sv(&["lint", "k.s", "--machine-file", "m.json"])).unwrap(),
            Command::Lint(LintOpts {
                path: Some("k.s".into()),
                sel: MachineSel {
                    refs: vec![MachineRef::File("m.json".into())],
                },
                ..LintOpts::default()
            })
        );
        assert_eq!(
            parse_args(&sv(&[
                "lint",
                "--admission",
                "--corpus",
                "--threads",
                "3",
                "--deny",
                "K004",
                "--deny",
                "M007",
                "--allow",
                "K001",
                "--baseline",
                "base.txt",
                "--write-baseline",
                "new.txt",
                "--sarif",
            ]))
            .unwrap(),
            Command::Lint(LintOpts {
                admission: true,
                corpus: true,
                threads: 3,
                deny: vec!["K004".into(), "M007".into()],
                allow: vec!["K001".into()],
                baseline: Some("base.txt".into()),
                write_baseline: Some("new.txt".into()),
                sarif: true,
                ..LintOpts::default()
            })
        );
        // A kernel needs a machine to lint against.
        assert!(parse_args(&sv(&["lint", "k.s"])).is_err());
        assert!(parse_args(&sv(&["lint", "--wat"])).is_err());
        // The two machine-readable formats are mutually exclusive.
        assert!(parse_args(&sv(&["lint", "--json", "--sarif"])).is_err());
        assert!(parse_args(&sv(&["lint", "--deny"])).is_err());
    }

    #[test]
    fn admission_gate_passes_every_registry_model_and_rejects_gutted_machine() {
        // With no selection, every registry model — the paper trio and
        // the derived entries — clears the admission gate.
        let targets = admission_targets(Vec::new(), &[]);
        assert_eq!(targets.len(), uarch::registry::entries().len());
        let (out, code) = run_lint(&targets, false, false);
        assert_eq!(code, 0, "{out}");
        for id in uarch::registry::ids() {
            assert!(out.contains(&format!("== admission:{id} ==")), "{out}");
        }
        // A machine file whose tables lost an opcode class its corpus
        // needs (the FMA entries) is rejected with an M008 error.
        let mut m = machine_for(uarch::Arch::GoldenCove);
        m.table
            .retain(|e| !e.mnemonics.iter().any(|mn| mn.starts_with("vfmadd")));
        let targets = admission_targets(Vec::new(), &[("gutted.json".to_string(), m)]);
        assert_eq!(targets.len(), 1);
        let (out, code) = run_lint(&targets, false, false);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("M008"), "{out}");
        assert!(out.contains("== admission:gutted.json =="), "{out}");
        // A selection restricts the gate to the named machines, labelled
        // by registry id.
        let targets = admission_targets(vec![machine_for(uarch::Arch::Zen4)], &[]);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].name(), "admission:zen4");
    }

    #[test]
    fn fixture_machine_file_is_rejected_by_the_admission_gate() {
        // The checked-in acceptance fixture: Golden Cove with its FMA
        // entries stripped. It must import cleanly (the structural rules
        // can't see the gap) yet fail `lint --admission`.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/machines/golden_cove_no_fma.json"
        );
        let json = std::fs::read_to_string(path).expect("fixture exists");
        let m = uarch::Machine::from_json(&json).expect("fixture imports");
        let (out, code) = run_lint(
            &[LintTarget::MachineFile {
                label: "golden_cove_no_fma.json",
                json: &json,
            }],
            false,
            false,
        );
        assert_eq!(code, 0, "structural lint must not catch the gap: {out}");
        let targets = admission_targets(Vec::new(), &[("golden_cove_no_fma.json".to_string(), m)]);
        let (out, code) = run_lint(&targets, false, false);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("M008"), "{out}");
        assert!(out.contains("vfmadd"), "{out}");
    }

    #[test]
    fn deny_and_allow_override_severities() {
        // Mixed SSE/AVX fires K004 as a warning: relaxed runs pass.
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n addps %xmm0, %xmm1\n vaddpd %ymm2, %ymm3, %ymm4\n \
                   vmovupd %ymm4, (%rdi)\n movups %xmm1, 32(%rdi)\n \
                   subq $1, %rax\n jne .L1\n";
        let mk = || LintTarget::Kernel {
            label: "mixed.s",
            machine: &m,
            asm,
            sim: false,
        };
        // --deny K004 promotes the warning to a failing error.
        let denied = run_lint_with(
            &[mk()],
            Vec::new(),
            &LintPolicy {
                deny: vec!["K004".into()],
                ..LintPolicy::default()
            },
        );
        assert_eq!(denied.exit_code, 1, "{}", denied.output);
        // --allow K004 keeps even a --strict run green (no other warnings
        // in this kernel), and wins when the code is denied too.
        let allowed = run_lint_with(
            &[mk()],
            Vec::new(),
            &LintPolicy {
                strict: true,
                deny: vec!["K004".into()],
                allow: vec!["K004".into(), "K001".into()],
                ..LintPolicy::default()
            },
        );
        assert_eq!(allowed.exit_code, 0, "{}", allowed.output);
    }

    #[test]
    fn baseline_suppresses_recorded_findings() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n addps %xmm0, %xmm1\n vaddpd %ymm2, %ymm3, %ymm4\n \
                   vmovupd %ymm4, (%rdi)\n movups %xmm1, 32(%rdi)\n \
                   subq $1, %rax\n jne .L1\n";
        let mk = || LintTarget::Kernel {
            label: "mixed.s",
            machine: &m,
            asm,
            sim: false,
        };
        let first = run_lint_with(&[mk()], Vec::new(), &LintPolicy::default());
        assert!(!first.fingerprints.is_empty());
        assert!(first.output.contains("K004"), "{}", first.output);
        // Feeding the recorded fingerprints back silences every finding,
        // even under --strict with the rule denied.
        let second = run_lint_with(
            &[mk()],
            Vec::new(),
            &LintPolicy {
                strict: true,
                deny: vec!["K004".into()],
                baseline: Some(first.fingerprints.join("\n")),
                ..LintPolicy::default()
            },
        );
        assert_eq!(second.exit_code, 0, "{}", second.output);
        assert!(!second.output.contains("K004"), "{}", second.output);
        // The fingerprints themselves are unaffected by the filter, so
        // re-writing a baseline from a baselined run loses nothing.
        assert_eq!(first.fingerprints, second.fingerprints);
    }

    #[test]
    fn sarif_output_is_parseable_and_names_targets() {
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let outcome = run_lint_with(
            &targets,
            Vec::new(),
            &LintPolicy {
                sarif: true,
                ..LintPolicy::default()
            },
        );
        let v: serde_json::Value = serde_json::from_str(&outcome.output).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("version").unwrap().as_str().unwrap(), "2.1.0");
        let runs = o.get("runs").unwrap().as_array().unwrap();
        let run = runs[0].as_object().unwrap();
        let results = run.get("results").unwrap().as_array().unwrap();
        // The shipped models carry advisory M007 findings, so the report
        // is non-empty and every result points at a machine target.
        assert!(!results.is_empty());
        for r in results {
            let uri = r
                .as_object()
                .unwrap()
                .get("locations")
                .unwrap()
                .as_array()
                .unwrap()[0]
                .as_object()
                .unwrap()
                .get("physicalLocation")
                .unwrap()
                .as_object()
                .unwrap()
                .get("artifactLocation")
                .unwrap()
                .as_object()
                .unwrap()
                .get("uri")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            assert!(uri.starts_with("machine:"), "{uri}");
        }
    }

    #[test]
    fn corpus_lint_slice_flows_through_the_driver() {
        // A corpus slice rides in as precomputed results and renders under
        // its corpus:{chip}:{variant} target names.
        let slice = engine::lint_corpus(&[uarch::Arch::Zen4], 2, Some(6));
        let outcome = run_lint_with(&[], slice.clone(), &LintPolicy::default());
        assert_eq!(outcome.exit_code, 0, "{}", outcome.output);
        assert!(
            outcome.output.contains("== corpus:Genoa:"),
            "{}",
            outcome.output
        );
        // Byte-identical to a single-threaded sweep, rendered or raw.
        let one = engine::lint_corpus(&[uarch::Arch::Zen4], 1, Some(6));
        assert_eq!(slice, one);
    }

    #[test]
    fn lint_all_builtin_machines_is_clean() {
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let (out, code) = run_lint(&targets, false, true);
        assert_eq!(code, 0, "{out}");
        for m in &machines {
            assert!(
                out.contains(&format!("== machine:{} ==", m.arch.label())),
                "{out}"
            );
        }
    }

    #[test]
    fn lint_surfaces_cache_geometry_rule() {
        // The shipped L3 slices are non-representable by design: M007 fires
        // as an advisory and must not fail even --strict runs.
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let (out, code) = run_lint(&targets, false, true);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("M007"), "{out}");
        // A machine file with a distorted private cache gets the warning,
        // and --strict turns it into a failing run.
        let mut m = machine_for(uarch::Arch::GoldenCove);
        let idx = m.caches.iter().position(|c| !c.shared).unwrap();
        m.caches[idx].assoc = 8;
        let edited = m.to_json();
        let t = LintTarget::MachineFile {
            label: "edited.json",
            json: &edited,
        };
        let (out, relaxed) = run_lint(&[t], false, false);
        assert!(out.contains("M007"), "{out}");
        assert!(out.contains("not representable"), "{out}");
        assert_eq!(relaxed, 0, "{out}");
        let t = LintTarget::MachineFile {
            label: "edited.json",
            json: &edited,
        };
        let (_, strict) = run_lint(&[t], false, true);
        assert_eq!(strict, 1);
    }

    #[test]
    fn lint_sample_kernels_from_each_isa_are_clean() {
        let x86 = ".L1:\n vfmadd231pd (%rdi), %zmm1, %zmm2\n addq $64, %rdi\n \
                   subq $1, %rax\n jne .L1\n";
        let a64 = ".L1:\n ldr q0, [x1], #16\n fmla v2.2d, v0.2d, v1.2d\n \
                   subs x2, x2, #1\n b.ne .L1\n";
        for (machine, asm) in [
            (machine_for(uarch::Arch::GoldenCove), x86),
            (machine_for(uarch::Arch::Zen4), x86),
            (machine_for(uarch::Arch::NeoverseV2), a64),
        ] {
            let t = LintTarget::Kernel {
                label: "sample.s",
                machine: &machine,
                asm,
                sim: true,
            };
            let (out, code) = run_lint(&[t], false, false);
            assert_eq!(code, 0, "{}: {out}", machine.arch.label());
        }
    }

    #[test]
    fn lint_seeded_error_fixture_fails() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let t = LintTarget::Kernel {
            label: "bad.s",
            machine: &m,
            asm: "movq %bogus, %rax\n",
            sim: false,
        };
        let (out, code) = run_lint(&[t], false, false);
        assert_eq!(code, 1);
        assert!(out.contains("K006"), "{out}");
    }

    #[test]
    fn lint_strict_promotes_warnings_to_failures() {
        // Mixed SSE and AVX in one kernel fires K004 (a warning).
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n addps %xmm0, %xmm1\n vaddpd %ymm2, %ymm3, %ymm4\n \
                   vmovupd %ymm4, (%rdi)\n movups %xmm1, 32(%rdi)\n \
                   subq $1, %rax\n jne .L1\n";
        let mk = |sim| LintTarget::Kernel {
            label: "mixed.s",
            machine: &m,
            asm,
            sim,
        };
        let (out, relaxed) = run_lint(&[mk(false)], false, false);
        assert!(out.contains("K004"), "{out}");
        assert_eq!(relaxed, 0, "{out}");
        let (_, strict) = run_lint(&[mk(false)], false, true);
        assert_eq!(strict, 1);
    }

    #[test]
    fn lint_machine_file_target_reports_bad_json() {
        let good = machine_for(uarch::Arch::Zen4).to_json();
        let (out, code) = run_lint(
            &[LintTarget::MachineFile {
                label: "m.json",
                json: &good,
            }],
            false,
            false,
        );
        assert_eq!(code, 0, "{out}");
        let (out, code) = run_lint(
            &[LintTarget::MachineFile {
                label: "m.json",
                json: "{ nope",
            }],
            false,
            false,
        );
        assert_eq!(code, 1);
        assert!(out.contains("M006"), "{out}");
    }

    #[test]
    fn parse_profile_modes() {
        assert_eq!(parse_profile_mode("--profile").unwrap(), ProfileMode::Text);
        assert_eq!(
            parse_profile_mode("--profile=text").unwrap(),
            ProfileMode::Text
        );
        assert_eq!(
            parse_profile_mode("--profile=json").unwrap(),
            ProfileMode::Json
        );
        assert_eq!(
            parse_profile_mode("--profile=chrome").unwrap(),
            ProfileMode::Chrome
        );
        assert_eq!(
            parse_profile_mode("--profile=flame").unwrap_err().kind(),
            ErrorKind::Usage
        );
        // The flag lands on all three profiled subcommands.
        match parse_args(&sv(&["validate", "--profile=chrome"])).unwrap() {
            Command::Validate(o) => assert_eq!(o.profile, Some(ProfileMode::Chrome)),
            other => panic!("{other:?}"),
        }
        match parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--profile"])).unwrap() {
            Command::Analyze { flags, .. } => assert_eq!(flags.profile, Some(ProfileMode::Text)),
            other => panic!("{other:?}"),
        }
        match parse_args(&sv(&["storebench", "--profile=json"])).unwrap() {
            Command::StoreBench { profile, .. } => assert_eq!(profile, Some(ProfileMode::Json)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&sv(&["validate", "--profile=flame"])).is_err());
    }

    #[test]
    fn parse_explain() {
        assert_eq!(
            parse_args(&sv(&["explain", "triad", "--arch", "gcs"])).unwrap(),
            Command::Explain {
                kernel: "triad".into(),
                sel: MachineSel::model("neoverse-v2"),
                sim: SimOverrides::default(),
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "explain",
                "copy",
                "--arch",
                "genoa",
                "--machine-file",
                "m.json",
                "--iterations",
                "64",
            ]))
            .unwrap(),
            Command::Explain {
                kernel: "copy".into(),
                sel: MachineSel {
                    refs: vec![
                        MachineRef::Model("zen4".into()),
                        MachineRef::File("m.json".into()),
                    ],
                },
                sim: SimOverrides {
                    iterations: Some(64),
                    ..SimOverrides::default()
                },
            }
        );
        // Kernel and arch are both required; unknown flags are usage errors.
        assert!(parse_args(&sv(&["explain", "--arch", "spr"])).is_err());
        assert!(parse_args(&sv(&["explain", "triad"])).is_err());
        assert!(parse_args(&sv(&["explain", "triad", "--arch", "spr", "--wat"])).is_err());
    }

    #[test]
    fn explain_names_a_bounding_resource_on_every_machine() {
        for machine in uarch::all_machines() {
            let out = run_explain(&machine, "streamtriad", SimOverrides::default()).unwrap();
            assert!(
                out.contains("bound by: "),
                "{}: {out}",
                machine.arch.label()
            );
            assert!(out.contains("in-core bounds (cy/iter):"), "{out}");
            assert!(out.contains("  incore"), "{out}");
            assert!(out.contains("(reference)"), "{out}");
            // Either the predictors agree or every divergence is explained
            // (a D003 finding marks the unexplained case explicitly).
            assert!(
                out.contains("predictors agree") || out.contains("D0"),
                "{out}"
            );
        }
        // Names match case-insensitively ignoring spaces and punctuation,
        // and unique substrings resolve ("schoenauer" → Schoenauer triad).
        let m = machine_for(uarch::Arch::GoldenCove);
        let upper = run_explain(&m, "STREAM triad", SimOverrides::default()).unwrap();
        let lower = run_explain(&m, "streamtriad", SimOverrides::default()).unwrap();
        assert_eq!(upper, lower);
        let sub = run_explain(&m, "schoenauer", SimOverrides::default()).unwrap();
        assert!(sub.contains("Schoenauer triad"), "{sub}");
        // Ambiguous substrings list the candidates.
        let e = run_explain(&m, "triad", SimOverrides::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        assert!(e.to_string().contains("Schoenauer triad"), "{e}");
        // Unknown kernels list what the corpus does contain.
        let e = run_explain(&m, "nope", SimOverrides::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Usage);
        assert!(e.to_string().contains("STREAM triad"), "{e}");
    }

    #[test]
    fn render_profile_modes_and_chrome_trace_shape() {
        // Built by hand so the test never touches the global recorder.
        let mut profile = obs::Profile::default();
        profile.counters.insert("sim.calls".into(), 3);
        profile.spans.push(obs::SpanRecord {
            name: "sim:triad".into(),
            tid: 1,
            depth: 0,
            start_us: 10,
            dur_us: 250,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        });
        let text = render_profile(&profile, ProfileMode::Text);
        assert!(text.contains("sim.calls"), "{text}");
        assert!(text.contains("sim:triad"), "{text}");
        let json = render_profile(&profile, ProfileMode::Json);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let o = v.as_object().unwrap();
        let counters = o.get("counters").unwrap().as_object().unwrap();
        assert_eq!(counters.get("sim.calls").unwrap().as_u64().unwrap(), 3);
        let spans = o.get("spans").unwrap().as_array().unwrap();
        let span0 = spans[0].as_object().unwrap();
        assert_eq!(span0.get("name").unwrap().as_str().unwrap(), "sim:triad");
        // The chrome rendering must be valid Chrome trace event format:
        // a traceEvents array whose events carry name/ph/ts/pid/tid, with
        // a dur on every complete ("X") event.
        let chrome = render_profile(&profile, ProfileMode::Chrome);
        let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let events = v
            .as_object()
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            let o = e.as_object().unwrap();
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(o.contains_key(key), "missing {key}: {e:?}");
            }
            if o.get("ph").unwrap().as_str().unwrap() == "X" {
                assert!(o.get("dur").unwrap().as_u64().unwrap() > 0, "{e:?}");
            }
        }
    }

    #[test]
    fn validate_profile_attaches_obs_block_to_json() {
        let profiled = run_validate(&ValidateOpts {
            sel: MachineSel::model("golden-cove"),
            threads: 1,
            limit: Some(4),
            json: true,
            profile: Some(ProfileMode::Text),
            ..ValidateOpts::default()
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&profiled.output).unwrap();
        let obs = v
            .as_object()
            .unwrap()
            .get("obs")
            .expect("obs block present")
            .as_object()
            .unwrap();
        assert_eq!(
            obs.get("schema_minor").unwrap().as_u64().unwrap(),
            engine::SCHEMA_MINOR as u64
        );
        assert!(!obs
            .get("predictors")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        // Without --profile the block is absent entirely.
        let plain = run_validate(&ValidateOpts {
            sel: MachineSel::model("golden-cove"),
            threads: 1,
            limit: Some(4),
            json: true,
            ..ValidateOpts::default()
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&plain.output).unwrap();
        assert!(v.as_object().unwrap().get("obs").is_none());
    }

    #[test]
    fn machines_text_listing_shows_ids_and_lineage() {
        let text = run_machines(false);
        for id in uarch::registry::ids() {
            assert!(text.contains(id), "missing {id}: {text}");
        }
        // Family entries are marked as bases; derived entries carry their
        // lineage — base id plus the recorded deltas, in order.
        assert!(text.contains("base model (paper family)"), "{text}");
        assert!(text.contains("base: zen4 + "), "{text}");
        assert!(text.contains("base: golden-cove + "), "{text}");
        assert!(text.contains("rob 512 → 1024"), "{text}");
    }

    #[test]
    fn machines_json_matches_the_golden_snapshot() {
        let json = run_machines(true);
        assert_eq!(json, run_machines(true), "listing must be deterministic");
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(
            o.get("schema_version").unwrap().as_u64().unwrap(),
            MACHINES_SCHEMA_VERSION as u64
        );
        let models = o.get("models").unwrap().as_array().unwrap();
        assert_eq!(models.len(), uarch::registry::entries().len());
        for (model, entry) in models.iter().zip(uarch::registry::entries()) {
            let m = model.as_object().unwrap();
            assert_eq!(m.get("id").unwrap().as_str().unwrap(), entry.id);
            let base = m.get("base").unwrap().as_str().unwrap();
            let deltas = m.get("deltas").unwrap().as_array().unwrap();
            if base == entry.id {
                assert!(deltas.is_empty(), "{}: family entry with deltas", entry.id);
            } else {
                assert!(
                    !deltas.is_empty(),
                    "{}: derived entry without lineage",
                    entry.id
                );
            }
            for key in ["ports", "rob_size", "cores", "max_isa_vec_bits"] {
                assert!(m.get(key).unwrap().as_u64().unwrap() > 0, "{key}");
            }
        }
        // The byte-stable contract: the listing equals the checked-in
        // golden snapshot (regenerate with UPDATE_FIXTURES=1).
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/machines/registry_listing.json"
        );
        if std::env::var_os("UPDATE_FIXTURES").is_some() {
            std::fs::write(path, &json).expect("fixture written");
        }
        let golden = std::fs::read_to_string(path)
            .expect("golden snapshot exists; regenerate with UPDATE_FIXTURES=1");
        assert_eq!(
            json, golden,
            "machines --json drifted from the golden snapshot; \
             regenerate with UPDATE_FIXTURES=1"
        );
    }

    #[test]
    fn lint_json_output_is_parseable() {
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let (out, code) = run_lint(&targets, true, false);
        assert_eq!(code, 0);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let o = v.as_object().unwrap();
        assert!(o.contains_key("version"));
        assert!(o.contains_key("counts"));
        assert_eq!(o.get("targets").unwrap().as_array().unwrap().len(), 3);
    }
}
