//! `incore-cli` — command-line front end in the spirit of OSACA:
//! analyze an assembly kernel on any of the three machine models, compare
//! against the LLVM-MCA-style baseline and the cycle-level simulator, and
//! inspect the machines themselves.
//!
//! ```text
//! incore-cli analyze <file.s> --arch <gcs|spr|genoa> [--balanced] [--mca] [--sim] [--timeline] [--trace]
//! incore-cli lint [file.s] [--arch <gcs|spr|genoa>] [--machine-file <m.json>] [--json] [--strict] [--sim]
//! incore-cli machines
//! incore-cli ports --arch <gcs|spr|genoa>
//! incore-cli storebench --arch <gcs|spr|genoa> [--nt]
//! ```

use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Analyze {
        path: String,
        arch: uarch::Arch,
        /// Optional JSON machine file overriding the built-in model.
        machine_file: Option<String>,
        balanced: bool,
        mca: bool,
        sim: bool,
        timeline: bool,
        trace: bool,
    },
    Machines,
    /// Run the `diag` lint rules over a kernel, a machine file, or the
    /// built-in machine models.
    Lint {
        /// Assembly file to lint (kernel rules + predictor divergence).
        path: Option<String>,
        /// Machine to lint, or to lint the kernel against.
        arch: Option<uarch::Arch>,
        /// JSON machine file to lint (takes precedence over `arch` when
        /// resolving the kernel's machine).
        machine_file: Option<String>,
        json: bool,
        strict: bool,
        sim: bool,
    },
    /// Export a built-in machine model as a JSON machine file.
    Export {
        arch: uarch::Arch,
    },
    Ports {
        arch: uarch::Arch,
    },
    StoreBench {
        arch: uarch::Arch,
        nt: bool,
    },
    Help,
}

/// Command-line parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Resolve a machine name (`gcs`/`grace`, `spr`/`sapphirerapids`,
/// `genoa`/`zen4`, plus the µarch names) to its model.
pub fn parse_arch(name: &str) -> Result<uarch::Arch, UsageError> {
    match name.to_ascii_lowercase().as_str() {
        "gcs" | "grace" | "neoverse-v2" | "neoversev2" | "v2" => Ok(uarch::Arch::NeoverseV2),
        "spr" | "sapphire-rapids" | "sapphirerapids" | "golden-cove" | "goldencove" => {
            Ok(uarch::Arch::GoldenCove)
        }
        "genoa" | "zen4" | "zen-4" => Ok(uarch::Arch::Zen4),
        other => Err(UsageError(format!(
            "unknown machine `{other}`; use gcs, spr, or genoa"
        ))),
    }
}

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "machines" => Ok(Command::Machines),
        "export" => {
            let arch = required_arch(&mut it)?;
            Ok(Command::Export { arch })
        }
        "ports" => {
            let arch = required_arch(&mut it)?;
            Ok(Command::Ports { arch })
        }
        "storebench" => {
            let mut arch = None;
            let mut nt = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--arch" => arch = Some(next_arch(&mut it)?),
                    "--nt" => nt = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let arch = arch.ok_or_else(|| UsageError("--arch is required".into()))?;
            Ok(Command::StoreBench { arch, nt })
        }
        "lint" => {
            let mut path = None;
            let mut arch = None;
            let mut machine_file = None;
            let (mut json, mut strict, mut sim) = (false, false, false);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--arch" => arch = Some(next_arch(&mut it)?),
                    "--machine-file" => {
                        machine_file = Some(
                            it.next()
                                .ok_or_else(|| UsageError("--machine-file needs a path".into()))?
                                .to_string(),
                        )
                    }
                    "--json" => json = true,
                    "--strict" => strict = true,
                    "--sim" => sim = true,
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown flag `{flag}`")))
                    }
                    p if path.is_none() => path = Some(p.to_string()),
                    extra => return Err(UsageError(format!("unexpected argument `{extra}`"))),
                }
            }
            if path.is_some() && arch.is_none() && machine_file.is_none() {
                return Err(UsageError(
                    "--arch (or --machine-file) is required when linting a kernel".into(),
                ));
            }
            Ok(Command::Lint {
                path,
                arch,
                machine_file,
                json,
                strict,
                sim,
            })
        }
        "analyze" => {
            let mut path = None;
            let mut arch = None;
            let mut machine_file = None;
            let (mut balanced, mut mca, mut sim, mut timeline, mut trace) =
                (false, false, false, false, false);
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--arch" => arch = Some(next_arch(&mut it)?),
                    "--machine-file" => {
                        machine_file = Some(
                            it.next()
                                .ok_or_else(|| UsageError("--machine-file needs a path".into()))?
                                .to_string(),
                        )
                    }
                    "--balanced" => balanced = true,
                    "--mca" => mca = true,
                    "--sim" => sim = true,
                    "--timeline" => timeline = true,
                    "--trace" => trace = true,
                    flag if flag.starts_with("--") => {
                        return Err(UsageError(format!("unknown flag `{flag}`")))
                    }
                    p if path.is_none() => path = Some(p.to_string()),
                    extra => return Err(UsageError(format!("unexpected argument `{extra}`"))),
                }
            }
            let path = path.ok_or_else(|| UsageError("missing input file".into()))?;
            let arch = arch.ok_or_else(|| UsageError("--arch is required".into()))?;
            Ok(Command::Analyze {
                path,
                arch,
                machine_file,
                balanced,
                mca,
                sim,
                timeline,
                trace,
            })
        }
        other => Err(UsageError(format!("unknown command `{other}`; try `help`"))),
    }
}

fn next_arch<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<uarch::Arch, UsageError> {
    let v = it
        .next()
        .ok_or_else(|| UsageError("--arch needs a value".into()))?;
    parse_arch(v)
}

fn required_arch<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<uarch::Arch, UsageError> {
    let mut arch = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => arch = Some(next_arch(it)?),
            other => return Err(UsageError(format!("unknown flag `{other}`"))),
        }
    }
    arch.ok_or_else(|| UsageError("--arch is required".into()))
}

/// The help text.
pub const USAGE: &str = "\
incore-cli — in-core performance modeling of Grace, Sapphire Rapids, and Genoa

USAGE:
  incore-cli analyze <file.s> --arch <gcs|spr|genoa> [flags]
      --balanced   use OSACA's equal-split port heuristic instead of the optimum
      --mca        also run the LLVM-MCA-style baseline
      --sim        also run the cycle-level core simulator
      --timeline   print the MCA timeline view
      --trace      print the simulator's pipeline trace
      --machine-file <file.json>  load an edited machine model instead of the built-in
  incore-cli lint [file.s] [flags]    run the static diagnostics (rule codes K*, M*, D*)
      --arch <machine>     machine for kernel lints / single machine to lint
      --machine-file <file.json>  lint an edited machine file (also used for kernel lints)
      --sim        include the cycle-level simulator in the divergence check
      --json       emit a machine-readable JSON report
      --strict     treat warnings as errors (nonzero exit)
      with no file and no --arch, all three built-in models are linted
  incore-cli machines                 list the three machine models (Table II)
  incore-cli export --arch <machine>  dump a machine model as an editable JSON file
  incore-cli ports --arch <machine>   render the port model (Fig. 1)
  incore-cli storebench --arch <machine> [--nt]
                                      store-only traffic-ratio sweep (Fig. 4)
";

/// Machine model for an arch tag.
pub fn machine_for(arch: uarch::Arch) -> uarch::Machine {
    match arch {
        uarch::Arch::NeoverseV2 => uarch::Machine::neoverse_v2(),
        uarch::Arch::GoldenCove => uarch::Machine::golden_cove(),
        uarch::Arch::Zen4 => uarch::Machine::zen4(),
    }
}

/// Execute a parsed command against assembly text already read from disk
/// (separated from `main` for testability). Returns the rendered output.
pub fn run_analyze(
    machine: &uarch::Machine,
    asm: &str,
    balanced: bool,
    with_mca: bool,
    with_sim: bool,
    timeline: bool,
    trace: bool,
) -> Result<String, isa::ParseError> {
    use std::fmt::Write;
    let kernel = isa::parse_kernel(asm, machine.isa)?;
    let opts = incore::Options {
        assignment: if balanced {
            incore::PortAssignment::Balanced
        } else {
            incore::PortAssignment::Optimal
        },
        frontend: true,
    };
    let analysis = incore::analyze_with(machine, &kernel, opts);
    let mut out = incore::Report::new(machine, &analysis).render();
    if with_sim {
        let sim = exec::cycles_per_iteration(machine, &kernel);
        let _ = writeln!(
            out,
            "simulator:                        {sim:>7.2} cy/iter (RPE {:+.1}%)",
            (sim - analysis.prediction) / sim.max(1e-12) * 100.0
        );
    }
    if with_mca {
        let m = mca::predict(machine, &kernel).cycles_per_iter;
        let _ = writeln!(out, "LLVM-MCA-style baseline:          {m:>7.2} cy/iter");
    }
    if timeline {
        let _ = writeln!(out, "\n{}", mca::timeline::render(machine, &kernel, 2));
    }
    if trace {
        let _ = writeln!(out, "\n{}", exec::trace::render(machine, &kernel, 2));
    }
    Ok(out)
}

/// One unit of work for `incore-cli lint` (separated from `main` so the
/// whole subcommand is testable without touching the filesystem).
pub enum LintTarget<'a> {
    /// A machine model already in memory (built-in models).
    Machine(&'a uarch::Machine),
    /// The raw JSON text of a user-supplied machine file.
    MachineFile { label: &'a str, json: &'a str },
    /// Assembly text to run the kernel rules and the predictor-divergence
    /// check against, on the given machine.
    Kernel {
        label: &'a str,
        machine: &'a uarch::Machine,
        asm: &'a str,
        sim: bool,
    },
}

impl LintTarget<'_> {
    fn name(&self) -> String {
        match self {
            LintTarget::Machine(m) => format!("machine:{}", m.arch.label()),
            LintTarget::MachineFile { label, .. } => format!("machine-file:{label}"),
            LintTarget::Kernel { label, .. } => format!("kernel:{label}"),
        }
    }

    fn lint(&self) -> Vec<diag::Diagnostic> {
        match self {
            LintTarget::Machine(m) => diag::lint_machine(m),
            LintTarget::MachineFile { json, .. } => diag::lint_machine_file(json).1,
            LintTarget::Kernel {
                machine, asm, sim, ..
            } => {
                let (kernel, mut diags) = diag::lint_assembly(machine, asm);
                if let Some(k) = kernel {
                    diags.extend(diag::lint_divergence(machine, &k, *sim).1);
                }
                diags
            }
        }
    }
}

/// Run the lint rules over every target and render the combined report.
/// Returns the report and the process exit code (0 clean, 1 findings under
/// the [`diag::exit_code`] policy).
pub fn run_lint(targets: &[LintTarget], json: bool, strict: bool) -> (String, i32) {
    use std::fmt::Write;
    let results: Vec<(String, Vec<diag::Diagnostic>)> =
        targets.iter().map(|t| (t.name(), t.lint())).collect();
    let all: Vec<diag::Diagnostic> = results
        .iter()
        .flat_map(|(_, d)| d.iter().cloned())
        .collect();
    let out = if json {
        let mut s = diag::render_json_targets(&results);
        s.push('\n');
        s
    } else {
        let mut s = String::new();
        for (name, diags) in &results {
            let _ = writeln!(s, "== {name} ==");
            s.push_str(&diag::render_text(diags));
        }
        s
    };
    (out, diag::exit_code(&all, strict))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_analyze_full() {
        let c = parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--mca", "--sim"])).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                path: "k.s".into(),
                arch: uarch::Arch::GoldenCove,
                machine_file: None,
                balanced: false,
                mca: true,
                sim: true,
                timeline: false,
                trace: false,
            }
        );
    }

    #[test]
    fn parse_arch_aliases() {
        assert_eq!(parse_arch("grace").unwrap(), uarch::Arch::NeoverseV2);
        assert_eq!(parse_arch("GCS").unwrap(), uarch::Arch::NeoverseV2);
        assert_eq!(parse_arch("zen4").unwrap(), uarch::Arch::Zen4);
        assert_eq!(parse_arch("golden-cove").unwrap(), uarch::Arch::GoldenCove);
        assert!(parse_arch("m1").is_err());
    }

    #[test]
    fn missing_arch_is_an_error() {
        assert!(parse_args(&sv(&["analyze", "k.s"])).is_err());
        assert!(parse_args(&sv(&["ports"])).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let e = parse_args(&sv(&["analyze", "k.s", "--arch", "spr", "--wat"])).unwrap_err();
        assert!(e.0.contains("--wat"));
    }

    #[test]
    fn other_commands() {
        assert_eq!(parse_args(&sv(&["machines"])).unwrap(), Command::Machines);
        assert_eq!(parse_args(&sv(&[])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&sv(&["storebench", "--arch", "genoa", "--nt"])).unwrap(),
            Command::StoreBench {
                arch: uarch::Arch::Zen4,
                nt: true
            }
        );
        assert_eq!(
            parse_args(&sv(&["ports", "--arch", "gcs"])).unwrap(),
            Command::Ports {
                arch: uarch::Arch::NeoverseV2
            }
        );
    }

    #[test]
    fn run_analyze_produces_report_with_extras() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n vaddpd %zmm0, %zmm1, %zmm2\n subq $1, %rax\n jne .L1\n";
        let out = run_analyze(&m, asm, false, true, true, true, true).unwrap();
        assert!(out.contains("Block prediction"));
        assert!(out.contains("simulator:"));
        assert!(out.contains("LLVM-MCA-style baseline:"));
        assert!(out.contains("MCA timeline"));
        assert!(out.contains("pipeline trace"));
    }

    #[test]
    fn parse_export_and_machine_file() {
        assert_eq!(
            parse_args(&sv(&["export", "--arch", "spr"])).unwrap(),
            Command::Export {
                arch: uarch::Arch::GoldenCove
            }
        );
        let c = parse_args(&sv(&[
            "analyze",
            "k.s",
            "--arch",
            "spr",
            "--machine-file",
            "m.json",
        ]))
        .unwrap();
        match c {
            Command::Analyze { machine_file, .. } => {
                assert_eq!(machine_file.as_deref(), Some("m.json"))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_analyze_rejects_bad_asm() {
        let m = machine_for(uarch::Arch::GoldenCove);
        assert!(run_analyze(&m, "movq %bogus, %rax", false, false, false, false, false).is_err());
    }

    #[test]
    fn parse_lint_variants() {
        assert_eq!(
            parse_args(&sv(&["lint"])).unwrap(),
            Command::Lint {
                path: None,
                arch: None,
                machine_file: None,
                json: false,
                strict: false,
                sim: false,
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "lint", "k.s", "--arch", "spr", "--json", "--strict", "--sim"
            ]))
            .unwrap(),
            Command::Lint {
                path: Some("k.s".into()),
                arch: Some(uarch::Arch::GoldenCove),
                machine_file: None,
                json: true,
                strict: true,
                sim: true,
            }
        );
        assert_eq!(
            parse_args(&sv(&["lint", "k.s", "--machine-file", "m.json"])).unwrap(),
            Command::Lint {
                path: Some("k.s".into()),
                arch: None,
                machine_file: Some("m.json".into()),
                json: false,
                strict: false,
                sim: false,
            }
        );
        // A kernel needs a machine to lint against.
        assert!(parse_args(&sv(&["lint", "k.s"])).is_err());
        assert!(parse_args(&sv(&["lint", "--wat"])).is_err());
    }

    #[test]
    fn lint_all_builtin_machines_is_clean() {
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let (out, code) = run_lint(&targets, false, true);
        assert_eq!(code, 0, "{out}");
        for m in &machines {
            assert!(
                out.contains(&format!("== machine:{} ==", m.arch.label())),
                "{out}"
            );
        }
    }

    #[test]
    fn lint_sample_kernels_from_each_isa_are_clean() {
        let x86 = ".L1:\n vfmadd231pd (%rdi), %zmm1, %zmm2\n addq $64, %rdi\n \
                   subq $1, %rax\n jne .L1\n";
        let a64 = ".L1:\n ldr q0, [x1], #16\n fmla v2.2d, v0.2d, v1.2d\n \
                   subs x2, x2, #1\n b.ne .L1\n";
        for (machine, asm) in [
            (machine_for(uarch::Arch::GoldenCove), x86),
            (machine_for(uarch::Arch::Zen4), x86),
            (machine_for(uarch::Arch::NeoverseV2), a64),
        ] {
            let t = LintTarget::Kernel {
                label: "sample.s",
                machine: &machine,
                asm,
                sim: true,
            };
            let (out, code) = run_lint(&[t], false, false);
            assert_eq!(code, 0, "{}: {out}", machine.arch.label());
        }
    }

    #[test]
    fn lint_seeded_error_fixture_fails() {
        let m = machine_for(uarch::Arch::GoldenCove);
        let t = LintTarget::Kernel {
            label: "bad.s",
            machine: &m,
            asm: "movq %bogus, %rax\n",
            sim: false,
        };
        let (out, code) = run_lint(&[t], false, false);
        assert_eq!(code, 1);
        assert!(out.contains("K006"), "{out}");
    }

    #[test]
    fn lint_strict_promotes_warnings_to_failures() {
        // Mixed SSE and AVX in one kernel fires K004 (a warning).
        let m = machine_for(uarch::Arch::GoldenCove);
        let asm = ".L1:\n addps %xmm0, %xmm1\n vaddpd %ymm2, %ymm3, %ymm4\n \
                   vmovupd %ymm4, (%rdi)\n movups %xmm1, 32(%rdi)\n \
                   subq $1, %rax\n jne .L1\n";
        let mk = |sim| LintTarget::Kernel {
            label: "mixed.s",
            machine: &m,
            asm,
            sim,
        };
        let (out, relaxed) = run_lint(&[mk(false)], false, false);
        assert!(out.contains("K004"), "{out}");
        assert_eq!(relaxed, 0, "{out}");
        let (_, strict) = run_lint(&[mk(false)], false, true);
        assert_eq!(strict, 1);
    }

    #[test]
    fn lint_machine_file_target_reports_bad_json() {
        let good = machine_for(uarch::Arch::Zen4).to_json();
        let (out, code) = run_lint(
            &[LintTarget::MachineFile {
                label: "m.json",
                json: &good,
            }],
            false,
            false,
        );
        assert_eq!(code, 0, "{out}");
        let (out, code) = run_lint(
            &[LintTarget::MachineFile {
                label: "m.json",
                json: "{ nope",
            }],
            false,
            false,
        );
        assert_eq!(code, 1);
        assert!(out.contains("M006"), "{out}");
    }

    #[test]
    fn lint_json_output_is_parseable() {
        let machines = uarch::all_machines();
        let targets: Vec<LintTarget> = machines.iter().map(LintTarget::Machine).collect();
        let (out, code) = run_lint(&targets, true, false);
        assert_eq!(code, 0);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let o = v.as_object().unwrap();
        assert!(o.contains_key("version"));
        assert!(o.contains_key("counts"));
        assert_eq!(o.get("targets").unwrap().as_array().unwrap().len(), 3);
    }
}
