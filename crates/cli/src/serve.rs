//! `incore-cli serve` — analysis as a service.
//!
//! A zero-dependency long-running front end over the same evaluation
//! path as `analyze --json`: newline-delimited JSON over TCP (see
//! [`crate::proto`]), a **sharded worker pool** on the vendored rayon
//! scope, **request coalescing** (identical in-flight work computed
//! once, every waiter answered from the one result), a **bounded LRU
//! response cache** in front of the workers, and **bounded queues with
//! explicit backpressure** — a full shard queue answers immediately
//! with a machine-readable `overloaded` error and a retry hint instead
//! of queueing without bound.
//!
//! ## Determinism contract
//!
//! The `report` bytes of a served `analyze` response are exactly
//! [`crate::analyze_report_json`] for the same kernel/machine/flags —
//! the single-shot `analyze --json` report with the wall-clock timing
//! stamp zeroed. That is what makes coalescing and caching safe: a
//! response computed once and shared (or replayed from the cache) is
//! byte-identical to one computed fresh, so clients cannot observe
//! whether they were coalesced. Coalesce/cache statistics are visible
//! only through the `metrics` request.
//!
//! ## Shutdown
//!
//! A `shutdown` request is acknowledged, the listener stops accepting,
//! every connection's read half is shut down (in-flight requests keep
//! draining), the shard queues run dry, and `serve_on` returns a
//! [`ServeSummary`]. No signals involved.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use crate::proto::{self, AnalyzeRequest, FrameReader, Request};
use crate::{AnalyzeFlags, Error, ErrorKind, MachineRef, MachineSel};

/// Suggested client backoff on an `overloaded` rejection.
const RETRY_AFTER_MS: u64 = 50;

/// Outbound per-connection frame buffer (the reader blocks, applying
/// backpressure, once a client stops draining its responses).
const OUTBOUND_FRAMES: usize = 8;

/// Options of `incore-cli serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Worker threads = shards; 0 = all available cores.
    pub threads: usize,
    /// Per-shard job queue capacity (the backpressure bound).
    pub queue: usize,
    /// Capacity of the response LRU and the kernel/machine caches.
    pub cache: usize,
    /// Maximum request frame size in bytes.
    pub max_request_bytes: usize,
    /// Artificial per-job delay in milliseconds (deterministic
    /// backpressure in tests and load generation; 0 = off).
    pub throttle_ms: u64,
    /// Default machine for `analyze` requests that name none — the same
    /// `--arch`/`--model`/`--machine-file` selection every subcommand
    /// takes.
    pub sel: MachineSel,
    /// Persist computed responses under this directory (content-addressed,
    /// bounded by `cache` entries) and replay them across server restarts.
    pub cache_dir: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue: 64,
            cache: 1024,
            max_request_bytes: proto::DEFAULT_MAX_REQUEST_BYTES,
            throttle_ms: 0,
            sel: MachineSel::default(),
            cache_dir: None,
        }
    }
}

/// Totals of one server lifetime, rendered when `serve` exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub analyze: u64,
    pub ok: u64,
    pub errors: u64,
    pub overloaded: u64,
    pub coalesced: u64,
    pub response_hits: u64,
    pub response_misses: u64,
}

impl ServeSummary {
    pub fn render(&self) -> String {
        format!(
            "served {} request(s): {} analyze ({} ok, {} failed, {} overloaded), \
             {} coalesced, response cache {} hit(s) / {} miss(es)\n",
            self.requests,
            self.analyze,
            self.ok,
            self.errors,
            self.overloaded,
            self.coalesced,
            self.response_hits,
            self.response_misses
        )
    }
}

/// Identity of one analysis: kernel text, label, resolved machine, and
/// predictor set. Two requests with equal keys have byte-identical
/// responses, which is the licence for coalescing and caching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    asm: String,
    label: String,
    machine: String,
    flags: u8,
}

fn flag_bits(f: AnalyzeFlags) -> u8 {
    (f.balanced as u8) | (f.mca as u8) << 1 | (f.sim as u8) << 2
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Key {
    fn shard(&self, shards: usize) -> usize {
        let mut h = fnv1a(self.asm.as_bytes());
        h ^= fnv1a(self.label.as_bytes()).rotate_left(17);
        h ^= fnv1a(self.machine.as_bytes()).rotate_left(31);
        h ^= self.flags as u64;
        (h % shards as u64) as usize
    }
}

/// How the worker obtains the machine (the resolution itself happened
/// at submit time, so a bad name or unreadable file fails fast).
#[derive(Debug, Clone)]
enum MachineToken {
    /// A validated registry id.
    Model(String),
    /// The full JSON of a machine file, content-hashed into the key
    /// (imports go through the bounded machine cache).
    File(String),
}

#[derive(Debug, Clone)]
struct Payload {
    label: String,
    asm: String,
    flags: AnalyzeFlags,
    token: MachineToken,
}

struct Waiter {
    id: u64,
    tx: SyncSender<String>,
}

struct Pending {
    payload: Payload,
    waiters: Vec<Waiter>,
}

enum Job {
    Run(Key),
    Stop,
}

struct Shard {
    tx: SyncSender<Job>,
    inflight: Mutex<HashMap<Key, Pending>>,
}

#[derive(Default)]
struct Metrics {
    requests: AtomicU64,
    analyze: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    coalesced: AtomicU64,
    response_hits: AtomicU64,
    response_misses: AtomicU64,
    response_evictions: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    /// Service time per computed job, microseconds (the obs
    /// power-of-two histogram, quantiles via [`obs::Histogram::quantile`]).
    service_us: Mutex<obs::Histogram>,
}

impl Metrics {
    fn bump(c: &AtomicU64, delta: u64, obs_name: &str) {
        c.fetch_add(delta, Ordering::Relaxed);
        if obs::enabled() {
            obs::counter(obs_name, delta);
        }
    }
}

struct Shared {
    opts: ServeOpts,
    addr: SocketAddr,
    shards: Vec<Shard>,
    /// Bounded kernel/machine memo shared across requests.
    cache: engine::CorpusCache,
    /// Bounded response memo: key → report JSON (no trailing newline).
    responses: Mutex<engine::Lru<Key, std::sync::Arc<String>>>,
    /// Persistent response store (`--cache-dir`): the same report JSON
    /// the in-memory LRU holds, surviving restarts. Probed by workers on
    /// an LRU miss, so warm disk entries skip the whole evaluation.
    disk: Option<engine::DiskCache>,
    metrics: Metrics,
    draining: AtomicBool,
    /// Read halves of live connections, shut down on drain.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        for conn in self.conns.lock().expect("conn registry poisoned").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn summary(&self) -> ServeSummary {
        let m = &self.metrics;
        ServeSummary {
            requests: m.requests.load(Ordering::Relaxed),
            analyze: m.analyze.load(Ordering::Relaxed),
            ok: m.ok.load(Ordering::Relaxed),
            errors: m.errors.load(Ordering::Relaxed),
            overloaded: m.overloaded.load(Ordering::Relaxed),
            coalesced: m.coalesced.load(Ordering::Relaxed),
            response_hits: m.response_hits.load(Ordering::Relaxed),
            response_misses: m.response_misses.load(Ordering::Relaxed),
        }
    }

    /// The versioned `metrics` response body (schema
    /// [`proto::METRICS_SCHEMA_VERSION`]): request counters, cache
    /// hit/miss/eviction counts and hit rates, queue depth against its
    /// bound, and the service-time distribution (p50/p99 from the obs
    /// histogram).
    fn metrics_json(&self) -> String {
        let m = &self.metrics;
        let s = self.cache.stats();
        let ev = self.cache.evictions();
        let hits = m.response_hits.load(Ordering::Relaxed);
        let misses = m.response_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let analyze = m.analyze.load(Ordering::Relaxed);
        let coalesced = m.coalesced.load(Ordering::Relaxed);
        let coalesce_rate = if analyze == 0 {
            0.0
        } else {
            coalesced as f64 / analyze as f64
        };
        let h = m.service_us.lock().expect("service histogram poisoned");
        let disk = self.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        format!(
            concat!(
                "{{\"schema_version\":{}",
                ",\"workers\":{},\"shards\":{}",
                ",\"requests\":{{\"total\":{},\"analyze\":{},\"ok\":{},\"errors\":{}",
                ",\"overloaded\":{},\"coalesced\":{},\"coalesce_rate\":{:.4}}}",
                ",\"cache\":{{\"response_hits\":{},\"response_misses\":{}",
                ",\"response_evictions\":{},\"hit_rate\":{:.4}",
                ",\"kernel_hits\":{},\"kernel_misses\":{},\"kernel_evictions\":{}",
                ",\"machine_hits\":{},\"machine_misses\":{},\"machine_evictions\":{}}}",
                ",\"disk\":{{\"enabled\":{},\"hits\":{},\"misses\":{},\"writes\":{}",
                ",\"evictions\":{},\"stale\":{},\"corrupt\":{},\"hit_rate\":{:.4}}}",
                ",\"queue\":{{\"capacity\":{},\"depth\":{},\"peak_depth\":{}}}",
                ",\"service_time_us\":{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"max\":{}}}",
                "}}"
            ),
            proto::METRICS_SCHEMA_VERSION,
            self.shards.len(),
            self.shards.len(),
            m.requests.load(Ordering::Relaxed),
            analyze,
            m.ok.load(Ordering::Relaxed),
            m.errors.load(Ordering::Relaxed),
            m.overloaded.load(Ordering::Relaxed),
            coalesced,
            coalesce_rate,
            hits,
            misses,
            m.response_evictions.load(Ordering::Relaxed),
            hit_rate,
            s.kernel_hits,
            s.kernel_misses,
            ev.kernel_evictions,
            s.machine_hits,
            s.machine_misses,
            ev.machine_evictions,
            self.disk.is_some(),
            disk.hits,
            disk.misses,
            disk.writes,
            disk.evictions,
            disk.stale,
            disk.corrupt,
            disk.hit_rate(),
            self.opts.queue * self.shards.len(),
            m.queue_depth.load(Ordering::Relaxed),
            m.queue_peak.load(Ordering::Relaxed),
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99),
            if h.count == 0 { 0 } else { h.max },
        )
    }
}

/// Resolve the request's machine selection to a cache-key token. A
/// machine file is read here (submit time) and content-hashed, so an
/// edited file is a different key and a vanished file fails fast.
fn machine_token(sel: &MachineSel) -> Result<(String, MachineToken), Error> {
    match sel.chosen()? {
        MachineRef::Model(id) => Ok((format!("model:{id}"), MachineToken::Model(id.clone()))),
        MachineRef::File(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| Error::io(path.as_str(), &e))?;
            let key = format!("file:{:016x}", fnv1a(json.as_bytes()));
            Ok((key, MachineToken::File(json)))
        }
    }
}

/// Deliver a response frame without stalling the shard: try the
/// bounded outbound queue first and fall back to a detached blocking
/// sender for a slow-but-alive reader. At most queue-capacity jobs are
/// in flight per shard, so the fallback threads are bounded too.
fn deliver(tx: &SyncSender<String>, frame: String) {
    match tx.try_send(frame) {
        Ok(()) => {}
        Err(TrySendError::Full(frame)) => {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(frame);
            });
        }
        Err(TrySendError::Disconnected(_)) => {}
    }
}

/// Run one analysis: machine through the bounded machine cache, kernel
/// through the bounded kernel cache, report through the same
/// deterministic path as `analyze --json` (timings zeroed).
fn compute(shared: &Shared, payload: &Payload) -> Result<String, Error> {
    let machine = match &payload.token {
        MachineToken::Model(id) => std::sync::Arc::new(
            uarch::registry::machine(id)
                .ok_or_else(|| Error::usage(format!("unknown registry id `{id}`")))?,
        ),
        MachineToken::File(json) => shared.cache.machine(json)?,
    };
    let kernel = shared
        .cache
        .kernel(&payload.asm, machine.isa)
        .map_err(|e| e.with_context(payload.label.as_str()))?;
    let (report, _timings) =
        crate::analyze_report(&machine, &payload.label, &kernel, payload.flags);
    Ok(report.to_json())
}

/// Tag versioning the persistent response entries. The stored payload is
/// the report JSON verbatim, so its shape is pinned by the engine report
/// schema — fold that version in, and stale entries from an older build
/// become misses instead of wrong replays.
fn response_codec() -> String {
    format!(
        "srv-resp1 s{}.{}",
        engine::SCHEMA_VERSION,
        engine::SCHEMA_MINOR
    )
}

/// Replay a response from the persistent store, if configured and
/// present. The key is the full analysis identity ([`Key`]): resolved
/// machine token, label, predictor flag bits, and the assembly text.
fn disk_get(shared: &Shared, key: &Key) -> Option<String> {
    let disk = shared.disk.as_ref()?;
    let codec = response_codec();
    let flags = key.flags.to_string();
    disk.get(&[&codec, &key.machine, &key.label, &flags, &key.asm])
}

/// Persist a computed response (no-op without `--cache-dir`).
fn disk_put(shared: &Shared, key: &Key, report: &str) {
    if let Some(disk) = &shared.disk {
        let codec = response_codec();
        let flags = key.flags.to_string();
        disk.put(
            &[&codec, &key.machine, &key.label, &flags, &key.asm],
            report,
        );
    }
}

fn worker(shared: &Shared, index: usize, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let key = match job {
            Job::Stop => break,
            Job::Run(key) => key,
        };
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let shard = &shared.shards[index];
        let payload = {
            let inflight = shard.inflight.lock().expect("inflight map poisoned");
            inflight
                .get(&key)
                .map(|p| p.payload.clone())
                .expect("job enqueued under the inflight lock")
        };
        let start = Instant::now();
        if shared.opts.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(shared.opts.throttle_ms));
        }
        let result = match disk_get(shared, &key) {
            Some(report) => Ok(report),
            None => {
                let computed = compute(shared, &payload);
                if let Ok(report) = &computed {
                    disk_put(shared, &key, report);
                }
                computed
            }
        };
        if let Ok(report) = &result {
            let evicted = shared
                .responses
                .lock()
                .expect("response cache poisoned")
                .insert(key.clone(), std::sync::Arc::new(report.clone()));
            if evicted > 0 {
                Metrics::bump(
                    &shared.metrics.response_evictions,
                    evicted,
                    "serve.response_evictions",
                );
            }
        }
        let waiters = shard
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .remove(&key)
            .map(|p| p.waiters)
            .unwrap_or_default();
        for w in &waiters {
            let frame = match &result {
                Ok(report) => proto::render_analyze_ok(w.id, report),
                Err(e) => proto::render_error(w.id, e),
            };
            deliver(&w.tx, frame);
        }
        let n = waiters.len() as u64;
        match &result {
            Ok(_) => Metrics::bump(&shared.metrics.ok, n, "serve.ok"),
            Err(_) => Metrics::bump(&shared.metrics.errors, n, "serve.errors"),
        }
        let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        shared
            .metrics
            .service_us
            .lock()
            .expect("service histogram poisoned")
            .record(us);
        if obs::enabled() {
            obs::observe("serve.service_time_us", us);
        }
    }
}

/// Route an `analyze` request: response cache, then coalesce onto an
/// identical in-flight computation, then enqueue — or reject with an
/// explicit `overloaded` error when the shard's bounded queue is full.
fn submit(shared: &Shared, conn_tx: &SyncSender<String>, req: AnalyzeRequest) {
    Metrics::bump(&shared.metrics.analyze, 1, "serve.analyze");
    let sel = if req.sel.is_empty() {
        &shared.opts.sel
    } else {
        &req.sel
    };
    let (machine_key, token) = match machine_token(sel) {
        Ok(t) => t,
        Err(e) => {
            Metrics::bump(&shared.metrics.errors, 1, "serve.errors");
            let _ = conn_tx.send(proto::render_error(req.id, &e));
            return;
        }
    };
    let key = Key {
        asm: req.asm.clone(),
        label: req.label.clone(),
        machine: machine_key,
        flags: flag_bits(req.flags),
    };
    if let Some(report) = shared
        .responses
        .lock()
        .expect("response cache poisoned")
        .get(&key)
    {
        Metrics::bump(&shared.metrics.response_hits, 1, "serve.response_hits");
        Metrics::bump(&shared.metrics.ok, 1, "serve.ok");
        let _ = conn_tx.send(proto::render_analyze_ok(req.id, &report));
        return;
    }
    Metrics::bump(&shared.metrics.response_misses, 1, "serve.response_misses");
    let shard = &shared.shards[key.shard(shared.shards.len())];
    let waiter = Waiter {
        id: req.id,
        tx: conn_tx.clone(),
    };
    // The inflight lock is held across the queue submission: a worker
    // cannot observe (and answer) the job before its entry exists, and
    // a coalescing request cannot land between the try_send and the
    // insert.
    let mut inflight = shard.inflight.lock().expect("inflight map poisoned");
    if let Some(pending) = inflight.get_mut(&key) {
        Metrics::bump(&shared.metrics.coalesced, 1, "serve.coalesced");
        pending.waiters.push(waiter);
        return;
    }
    // The depth gauge must rise before the job is visible to a worker:
    // the worker's decrement on dequeue would otherwise race ahead of
    // the increment and drive the gauge below zero.
    let depth = shared.metrics.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
    shared
        .metrics
        .queue_peak
        .fetch_max(depth, Ordering::Relaxed);
    match shard.tx.try_send(Job::Run(key.clone())) {
        Ok(()) => {
            inflight.insert(
                key,
                Pending {
                    payload: Payload {
                        label: req.label,
                        asm: req.asm,
                        flags: req.flags,
                        token,
                    },
                    waiters: vec![waiter],
                },
            );
        }
        Err(_) => {
            // Full (backpressure) or disconnected (drain already passed
            // the Stop sentinel): either way, an explicit retry hint
            // instead of unbounded queueing.
            shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            Metrics::bump(&shared.metrics.overloaded, 1, "serve.overloaded");
            let _ = conn_tx.send(proto::render_error(
                req.id,
                &Error::overloaded(RETRY_AFTER_MS),
            ));
        }
    }
}

fn handle(shared: &Shared, conn_tx: &SyncSender<String>, line: &str) {
    Metrics::bump(&shared.metrics.requests, 1, "serve.requests");
    match proto::parse_request(line) {
        Err(e) => {
            Metrics::bump(&shared.metrics.errors, 1, "serve.errors");
            let _ = conn_tx.send(proto::render_error(0, &e));
        }
        Ok(Request::Ping { id }) => {
            let _ = conn_tx.send(proto::render_pong(id));
        }
        Ok(Request::Metrics { id }) => {
            let _ = conn_tx.send(proto::render_metrics(id, &shared.metrics_json()));
        }
        Ok(Request::Shutdown { id }) => {
            let _ = conn_tx.send(proto::render_shutdown_ack(id));
            shared.begin_drain();
        }
        Ok(Request::Analyze(req)) => submit(shared, conn_tx, req),
    }
}

/// Serve one connection: a reader parsing frames and submitting work,
/// plus a writer draining the bounded outbound queue, so responses
/// (including coalesced ones computed on another connection's request)
/// never interleave mid-frame. Returns when the peer closes, the read
/// half is shut down by a drain, or the socket errors.
fn connection(shared: &Shared, stream: TcpStream) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<String>(OUTBOUND_FRAMES);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut w = BufWriter::new(writer_stream);
            while let Ok(frame) = rx.recv() {
                if w.write_all(frame.as_bytes()).is_err() || w.flush().is_err() {
                    break;
                }
            }
        });
        let mut frames = FrameReader::new(BufReader::new(&stream), shared.opts.max_request_bytes);
        loop {
            match frames.next_frame() {
                Ok(None) => break,
                Ok(Some(line)) => handle(shared, &tx, &line),
                Err(e) if e.kind() == ErrorKind::Io => break,
                Err(e) => {
                    // Oversized / non-UTF-8 frame: answer and keep the
                    // connection (the reader already resynced).
                    Metrics::bump(&shared.metrics.requests, 1, "serve.requests");
                    Metrics::bump(&shared.metrics.errors, 1, "serve.errors");
                    let _ = tx.send(proto::render_error(0, &e));
                }
            }
        }
        drop(tx);
        // The scope joins the writer once every waiter holding a sender
        // clone has delivered its response — the graceful-drain bound.
    });
}

/// Run the server on an already-bound listener until a `shutdown`
/// request drains it. This is the whole lifetime: worker shards and
/// connection threads live in scopes, so returning proves everything
/// joined.
pub fn serve_on(listener: TcpListener, opts: ServeOpts) -> Result<ServeSummary, Error> {
    let addr = listener
        .local_addr()
        .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let mut shards = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue);
        shards.push(Shard {
            tx,
            inflight: Mutex::new(HashMap::new()),
        });
        receivers.push(rx);
    }
    let disk = match &opts.cache_dir {
        Some(dir) => Some(engine::DiskCache::open_bounded(dir.as_str(), opts.cache)?),
        None => None,
    };
    let shared = Shared {
        cache: engine::CorpusCache::bounded(opts.cache),
        responses: Mutex::new(engine::Lru::bounded(opts.cache)),
        disk,
        metrics: Metrics::default(),
        draining: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        addr,
        opts,
        shards,
    };
    let shared = &shared;
    rayon::scope(|workers| {
        for (index, rx) in receivers.into_iter().enumerate() {
            workers.spawn(move || worker(shared, index, rx));
        }
        std::thread::scope(|conns| {
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        if shared.draining() {
                            break;
                        }
                        continue;
                    }
                };
                if shared.draining() {
                    break;
                }
                if let Ok(read_half) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conn registry poisoned")
                        .push(read_half);
                }
                conns.spawn(move || connection(shared, stream));
            }
            // The scope joins every connection: all accepted requests
            // are answered (or rejected) before the workers stop.
        });
        for shard in &shared.shards {
            let _ = shard.tx.send(Job::Stop);
        }
    });
    Ok(shared.summary())
}

/// Bind and run the server in the foreground (the `incore-cli serve`
/// subcommand). Prints the bound address first so scripts driving
/// `--addr 127.0.0.1:0` can discover the port, then blocks until a
/// `shutdown` request drains the server.
pub fn run_serve(opts: ServeOpts, out: &mut dyn Write) -> Result<ServeSummary, Error> {
    let listener = TcpListener::bind(&opts.addr).map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    writeln!(out, "listening on {addr}").map_err(|e| Error::io("<stdout>", &e))?;
    out.flush().map_err(|e| Error::io("<stdout>", &e))?;
    let summary = serve_on(listener, opts)?;
    write!(out, "{}", summary.render()).map_err(|e| Error::io("<stdout>", &e))?;
    Ok(summary)
}

/// An in-process server for tests and the load-generator bench: the
/// accept loop runs on its own thread, [`ServerHandle::shutdown`]
/// drives the drain protocol and returns the summary.
pub struct ServerHandle {
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<ServeSummary, Error>>,
}

impl ServerHandle {
    pub fn start(opts: ServeOpts) -> Result<ServerHandle, Error> {
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| Error::io(opts.addr.as_str(), &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
        let thread = std::thread::spawn(move || serve_on(listener, opts));
        Ok(ServerHandle { addr, thread })
    }

    /// Request a graceful drain and wait for the server to finish.
    pub fn shutdown(self) -> Result<ServeSummary, Error> {
        let stream = TcpStream::connect(self.addr).map_err(|e| Error::io("<shutdown>", &e))?;
        {
            let mut w = &stream;
            w.write_all(b"{\"type\":\"shutdown\"}\n")
                .map_err(|e| Error::io("<shutdown>", &e))?;
        }
        let mut ack = String::new();
        let _ = BufReader::new(&stream).read_line(&mut ack);
        drop(stream);
        self.thread
            .join()
            .map_err(|_| Error::protocol("server thread panicked"))?
    }
}
