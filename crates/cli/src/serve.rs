//! `incore-cli serve` — analysis as a service.
//!
//! A zero-dependency long-running front end over the same evaluation
//! path as `analyze --json`: newline-delimited JSON over TCP (see
//! [`crate::proto`]), a **sharded worker pool** on the vendored rayon
//! scope, **request coalescing** (identical in-flight work computed
//! once, every waiter answered from the one result), a **bounded LRU
//! response cache** in front of the workers, and **bounded queues with
//! explicit backpressure** — a full shard queue answers immediately
//! with a machine-readable `overloaded` error and a retry hint instead
//! of queueing without bound.
//!
//! ## Telemetry
//!
//! All serving statistics live in one [`obs::registry::Registry`]
//! ([`Telemetry`]): counters and gauges are updated lock-free on the
//! hot path, and every `metrics` response, Prometheus scrape, and exit
//! summary is rendered from a single **consistent snapshot**, so
//! cross-counter accounting invariants (`requests >= analyze >=
//! response_hits + response_misses`, `response_misses >= coalesced`,
//! `requests >= ok + errors + overloaded`) hold in every observation —
//! no torn field-by-field reads. Beside the registry sit rolling
//! 10s/1m/5m windows ([`obs::timeseries`]) and a severity-tagged event
//! journal ([`obs::journal`]) drained by the `events` request.
//!
//! When the global obs recorder is on (`serve --trace <file>`, or a
//! test harness calling [`obs::enable`]), every `analyze` request mints
//! an [`obs::TraceCtx`] that follows it through the response cache, the
//! coalescer, the shard queue, and the worker's compute call — so the
//! predictor spans `engine` already emits nest under one connected,
//! causally-ordered span tree per request in the Chrome-trace output.
//! A request carrying `"trace":true` gets its `trace_id` echoed on the
//! response envelope.
//!
//! A connection whose **first** line starts with `GET ` is served one
//! Prometheus text exposition of the full registry (plus cache/disk
//! gauges) and closed: `curl http://addr/metrics` works against the
//! NDJSON port with no HTTP stack on either side.
//!
//! ## Determinism contract
//!
//! The `report` bytes of a served `analyze` response are exactly
//! [`crate::analyze_report_json`] for the same kernel/machine/flags —
//! the single-shot `analyze --json` report with the wall-clock timing
//! stamp zeroed. That is what makes coalescing and caching safe: a
//! response computed once and shared (or replayed from the cache) is
//! byte-identical to one computed fresh, so clients cannot observe
//! whether they were coalesced. Telemetry never alters response bytes:
//! tracing adds envelope metadata only when explicitly requested, and
//! coalesce/cache statistics are visible only through the `metrics`
//! request.
//!
//! ## Shutdown
//!
//! A `shutdown` request is acknowledged, the listener stops accepting,
//! every connection's read half is shut down (in-flight requests keep
//! draining), the shard queues run dry, and `serve_on` returns a
//! [`ServeSummary`]. No signals involved.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use obs::journal::{Journal, Severity};
use obs::registry::{CounterId, GaugeId, HistId, Registry};
use obs::timeseries::{WindowedCounter, WindowedHistogram, WINDOWS};

use crate::proto::{self, AnalyzeRequest, FrameReader, Request};
use crate::{AnalyzeFlags, Error, ErrorKind, MachineRef, MachineSel};

/// Suggested client backoff on an `overloaded` rejection.
const RETRY_AFTER_MS: u64 = 50;

/// Outbound per-connection frame buffer (the reader blocks, applying
/// backpressure, once a client stops draining its responses).
const OUTBOUND_FRAMES: usize = 8;

/// Journal ring capacity (events retained for the `events` request).
const JOURNAL_CAP: usize = 256;

/// Options of `incore-cli serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Worker threads = shards; 0 = all available cores.
    pub threads: usize,
    /// Per-shard job queue capacity (the backpressure bound).
    pub queue: usize,
    /// Capacity of the response LRU and the kernel/machine caches.
    pub cache: usize,
    /// Maximum request frame size in bytes.
    pub max_request_bytes: usize,
    /// Artificial per-job delay in milliseconds (deterministic
    /// backpressure in tests and load generation; 0 = off).
    pub throttle_ms: u64,
    /// Default machine for `analyze` requests that name none — the same
    /// `--arch`/`--model`/`--machine-file` selection every subcommand
    /// takes.
    pub sel: MachineSel,
    /// Persist computed responses under this directory (content-addressed,
    /// bounded by `cache` entries) and replay them across server restarts.
    pub cache_dir: Option<String>,
    /// Journal a `slow_request` warning for jobs serviced slower than
    /// this many milliseconds (0 = off).
    pub slow_ms: u64,
    /// Enable the obs recorder for the server's lifetime and write a
    /// Chrome trace (with per-request span trees) to this path on exit.
    pub trace: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue: 64,
            cache: 1024,
            max_request_bytes: proto::DEFAULT_MAX_REQUEST_BYTES,
            throttle_ms: 0,
            sel: MachineSel::default(),
            cache_dir: None,
            slow_ms: 1000,
            trace: None,
        }
    }
}

/// Totals of one server lifetime, rendered when `serve` exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    pub requests: u64,
    pub analyze: u64,
    pub ok: u64,
    pub errors: u64,
    pub overloaded: u64,
    pub coalesced: u64,
    pub response_hits: u64,
    pub response_misses: u64,
}

impl ServeSummary {
    pub fn render(&self) -> String {
        format!(
            "served {} request(s): {} analyze ({} ok, {} failed, {} overloaded), \
             {} coalesced, response cache {} hit(s) / {} miss(es)\n",
            self.requests,
            self.analyze,
            self.ok,
            self.errors,
            self.overloaded,
            self.coalesced,
            self.response_hits,
            self.response_misses
        )
    }
}

/// Identity of one analysis: kernel text, label, resolved machine, and
/// predictor set. Two requests with equal keys have byte-identical
/// responses, which is the licence for coalescing and caching.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    asm: String,
    label: String,
    machine: String,
    flags: u8,
}

fn flag_bits(f: AnalyzeFlags) -> u8 {
    (f.balanced as u8) | (f.mca as u8) << 1 | (f.sim as u8) << 2
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Key {
    fn shard(&self, shards: usize) -> usize {
        let mut h = fnv1a(self.asm.as_bytes());
        h ^= fnv1a(self.label.as_bytes()).rotate_left(17);
        h ^= fnv1a(self.machine.as_bytes()).rotate_left(31);
        h ^= self.flags as u64;
        (h % shards as u64) as usize
    }
}

/// How the worker obtains the machine (the resolution itself happened
/// at submit time, so a bad name or unreadable file fails fast).
#[derive(Debug, Clone)]
enum MachineToken {
    /// A validated registry id.
    Model(String),
    /// The full JSON of a machine file, content-hashed into the key
    /// (imports go through the bounded machine cache).
    File(String),
}

#[derive(Debug, Clone)]
struct Payload {
    label: String,
    asm: String,
    flags: AnalyzeFlags,
    token: MachineToken,
}

struct Waiter {
    id: u64,
    tx: SyncSender<String>,
    /// This request's trace context ([`obs::TraceCtx::NONE`] when the
    /// recorder is off); `span_id` is the pre-minted root span id.
    ctx: obs::TraceCtx,
    /// Submit-time instant, closing the root span at delivery.
    t0: Instant,
    /// Echo `trace_id` on the response envelope.
    want_trace: bool,
}

struct Pending {
    payload: Payload,
    /// The leader's trace context: the worker computes under it, so the
    /// shared predictor spans belong to the first requester's tree.
    ctx: obs::TraceCtx,
    waiters: Vec<Waiter>,
}

enum Job {
    Run(Key),
    Stop,
}

struct Shard {
    tx: SyncSender<Job>,
    inflight: Mutex<HashMap<Key, Pending>>,
}

/// The serve counters, named once. Each variant maps to a registry slot
/// and the obs-recorder mirror name (the counter glossary in README).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctr {
    Requests,
    Analyze,
    Ok,
    Errors,
    Overloaded,
    Coalesced,
    ResponseHits,
    ResponseMisses,
    ResponseEvictions,
    Scrapes,
}

impl Ctr {
    const ALL: [Ctr; 10] = [
        Ctr::Requests,
        Ctr::Analyze,
        Ctr::Ok,
        Ctr::Errors,
        Ctr::Overloaded,
        Ctr::Coalesced,
        Ctr::ResponseHits,
        Ctr::ResponseMisses,
        Ctr::ResponseEvictions,
        Ctr::Scrapes,
    ];

    fn name(self) -> &'static str {
        match self {
            Ctr::Requests => "serve.requests",
            Ctr::Analyze => "serve.analyze",
            Ctr::Ok => "serve.ok",
            Ctr::Errors => "serve.errors",
            Ctr::Overloaded => "serve.overloaded",
            Ctr::Coalesced => "serve.coalesced",
            Ctr::ResponseHits => "serve.response_hits",
            Ctr::ResponseMisses => "serve.response_misses",
            Ctr::ResponseEvictions => "serve.response_evictions",
            Ctr::Scrapes => "serve.scrapes",
        }
    }
}

/// Rolling 1-second ring buffers behind the `windows` metrics block.
struct Windows {
    requests: WindowedCounter,
    errors: WindowedCounter,
    analyze: WindowedCounter,
    hits: WindowedCounter,
    misses: WindowedCounter,
    coalesced: WindowedCounter,
    service: WindowedHistogram,
}

impl Windows {
    fn new() -> Windows {
        Windows {
            requests: WindowedCounter::new(),
            errors: WindowedCounter::new(),
            analyze: WindowedCounter::new(),
            hits: WindowedCounter::new(),
            misses: WindowedCounter::new(),
            coalesced: WindowedCounter::new(),
            service: WindowedHistogram::new(),
        }
    }

    /// One window's JSON object (rates guarded against empty windows,
    /// so the output never contains NaN).
    fn render(&self, now_s: u64, secs: u64) -> String {
        let requests = self.requests.sum(now_s, secs);
        let errors = self.errors.sum(now_s, secs);
        let analyze = self.analyze.sum(now_s, secs);
        let hits = self.hits.sum(now_s, secs);
        let lookups = hits + self.misses.sum(now_s, secs);
        let coalesced = self.coalesced.sum(now_s, secs);
        let h = self.service.merged(now_s, secs);
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        format!(
            concat!(
                "{{\"requests_per_s\":{:.4},\"error_rate\":{:.4}",
                ",\"service_p50_us\":{},\"service_p99_us\":{}",
                ",\"cache_hit_rate\":{:.4},\"coalesce_rate\":{:.4}}}"
            ),
            requests as f64 / secs as f64,
            ratio(errors, requests),
            h.quantile(0.50),
            h.quantile(0.99),
            ratio(hits, lookups),
            ratio(coalesced, analyze),
        )
    }
}

/// All serving telemetry: the counter registry (consistent snapshots),
/// the rolling windows, and the event journal.
struct Telemetry {
    reg: Registry,
    counters: [CounterId; Ctr::ALL.len()],
    queue_depth: GaugeId,
    queue_peak: GaugeId,
    service_us: HistId,
    start: Instant,
    windows: Mutex<Windows>,
    journal: Mutex<Journal>,
}

impl Telemetry {
    fn new() -> Telemetry {
        let mut reg = Registry::new();
        let counters = Ctr::ALL.map(|c| reg.counter(c.name()));
        let queue_depth = reg.gauge("serve.queue_depth");
        let queue_peak = reg.gauge("serve.queue_peak");
        let service_us = reg.histogram("serve.service_time_us");
        Telemetry {
            reg,
            counters,
            queue_depth,
            queue_peak,
            service_us,
            start: Instant::now(),
            windows: Mutex::new(Windows::new()),
            journal: Mutex::new(Journal::new(JOURNAL_CAP)),
        }
    }

    fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    /// Bump a counter everywhere it is observable: the registry slot,
    /// the obs-recorder mirror (when profiling), and the rolling window
    /// that feeds the 10s/1m/5m rates.
    fn bump(&self, c: Ctr, delta: u64) {
        self.reg.add(self.counters[c as usize], delta);
        if obs::enabled() {
            obs::counter(c.name(), delta);
        }
        let now = self.now_s();
        let mut w = self.windows.lock().expect("windows poisoned");
        match c {
            Ctr::Requests => w.requests.record(now, delta),
            Ctr::Errors => w.errors.record(now, delta),
            Ctr::Analyze => w.analyze.record(now, delta),
            Ctr::ResponseHits => w.hits.record(now, delta),
            Ctr::ResponseMisses => w.misses.record(now, delta),
            Ctr::Coalesced => w.coalesced.record(now, delta),
            _ => {}
        }
    }

    /// Record one job's service time (registry histogram, obs mirror,
    /// rolling window).
    fn service(&self, us: u64) {
        self.reg.observe(self.service_us, us);
        if obs::enabled() {
            obs::observe("serve.service_time_us", us);
        }
        let now = self.now_s();
        self.windows
            .lock()
            .expect("windows poisoned")
            .service
            .record(now, us);
    }

    /// Append a journal event.
    fn event(&self, severity: Severity, kind: &str, message: &str, fields: Vec<(String, String)>) {
        self.journal
            .lock()
            .expect("journal poisoned")
            .push(severity, kind, message, fields);
    }
}

/// Microseconds elapsed since `t`, saturating.
fn elapsed_us(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Mint this request's trace identity: a fresh trace with a pre-built
/// root span id, or [`obs::TraceCtx::NONE`] while the recorder is off.
fn mint_request_ctx() -> obs::TraceCtx {
    if !obs::enabled() {
        return obs::TraceCtx::NONE;
    }
    obs::TraceCtx {
        trace_id: obs::TraceCtx::mint().trace_id,
        span_id: obs::next_span_id(),
    }
}

/// Close a request's root span (recorded explicitly because submit and
/// delivery can happen on different threads).
fn close_request_span(w: &Waiter) {
    if w.ctx.is_none() {
        return;
    }
    obs::record_span_at("serve.request", w.ctx, 0, w.t0, elapsed_us(w.t0));
}

/// Record a leaf span under a request's root covering its whole wait
/// (cache hits and coalesced followers — work they did not compute).
fn mark_request_child(w: &Waiter, name: &str) {
    if w.ctx.is_none() {
        return;
    }
    let child = obs::TraceCtx {
        trace_id: w.ctx.trace_id,
        span_id: obs::next_span_id(),
    };
    obs::record_span_at(name, child, w.ctx.span_id, w.t0, elapsed_us(w.t0));
}

struct Shared {
    opts: ServeOpts,
    addr: SocketAddr,
    shards: Vec<Shard>,
    /// Bounded kernel/machine memo shared across requests.
    cache: engine::CorpusCache,
    /// Bounded response memo: key → report JSON (no trailing newline).
    responses: Mutex<engine::Lru<Key, std::sync::Arc<String>>>,
    /// Persistent response store (`--cache-dir`): the same report JSON
    /// the in-memory LRU holds, surviving restarts. Probed by workers on
    /// an LRU miss, so warm disk entries skip the whole evaluation.
    disk: Option<engine::DiskCache>,
    telemetry: Telemetry,
    draining: AtomicBool,
    /// Read halves of live connections, shut down on drain.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.telemetry.event(
            Severity::Info,
            "drain",
            "shutdown requested; draining in-flight work",
            Vec::new(),
        );
        for conn in self.conns.lock().expect("conn registry poisoned").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    fn summary(&self) -> ServeSummary {
        let snap = self.telemetry.reg.snapshot();
        ServeSummary {
            requests: snap.counter(Ctr::Requests.name()),
            analyze: snap.counter(Ctr::Analyze.name()),
            ok: snap.counter(Ctr::Ok.name()),
            errors: snap.counter(Ctr::Errors.name()),
            overloaded: snap.counter(Ctr::Overloaded.name()),
            coalesced: snap.counter(Ctr::Coalesced.name()),
            response_hits: snap.counter(Ctr::ResponseHits.name()),
            response_misses: snap.counter(Ctr::ResponseMisses.name()),
        }
    }

    /// The versioned `metrics` response body (schema
    /// [`proto::METRICS_SCHEMA_VERSION`]): request counters, cache
    /// hit/miss/eviction counts and hit rates, queue depth against its
    /// bound, the service-time distribution, the rolling 10s/1m/5m
    /// windows, and the journal cursors. Every request-counter value
    /// comes from one consistent registry snapshot, so the accounting
    /// invariants hold in every response.
    fn metrics_json(&self) -> String {
        let snap = self.telemetry.reg.snapshot();
        let s = self.cache.stats();
        let ev = self.cache.evictions();
        let hits = snap.counter(Ctr::ResponseHits.name());
        let misses = snap.counter(Ctr::ResponseMisses.name());
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let analyze = snap.counter(Ctr::Analyze.name());
        let coalesced = snap.counter(Ctr::Coalesced.name());
        let coalesce_rate = if analyze == 0 {
            0.0
        } else {
            coalesced as f64 / analyze as f64
        };
        let h = snap
            .hist("serve.service_time_us")
            .cloned()
            .unwrap_or_default();
        let disk = self.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        let now_s = self.telemetry.now_s();
        let windows = {
            let w = self.telemetry.windows.lock().expect("windows poisoned");
            let mut out = String::from("{");
            for (i, (label, secs)) in WINDOWS.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{label}\":{}", w.render(now_s, *secs)));
            }
            out.push('}');
            out
        };
        let journal = {
            let j = self.telemetry.journal.lock().expect("journal poisoned");
            format!(
                "{{\"retained\":{},\"dropped\":{},\"next_seq\":{}}}",
                j.len(),
                j.dropped(),
                j.next_seq()
            )
        };
        format!(
            concat!(
                "{{\"schema_version\":{}",
                ",\"workers\":{},\"shards\":{}",
                ",\"requests\":{{\"total\":{},\"analyze\":{},\"ok\":{},\"errors\":{}",
                ",\"overloaded\":{},\"coalesced\":{},\"coalesce_rate\":{:.4}}}",
                ",\"cache\":{{\"response_hits\":{},\"response_misses\":{}",
                ",\"response_evictions\":{},\"hit_rate\":{:.4}",
                ",\"kernel_hits\":{},\"kernel_misses\":{},\"kernel_evictions\":{}",
                ",\"machine_hits\":{},\"machine_misses\":{},\"machine_evictions\":{}}}",
                ",\"disk\":{{\"enabled\":{},\"hits\":{},\"misses\":{},\"writes\":{}",
                ",\"evictions\":{},\"stale\":{},\"corrupt\":{},\"hit_rate\":{:.4}}}",
                ",\"queue\":{{\"capacity\":{},\"depth\":{},\"peak_depth\":{}}}",
                ",\"service_time_us\":{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{},\"max\":{}}}",
                ",\"uptime_s\":{}",
                ",\"windows\":{}",
                ",\"journal\":{}",
                "}}"
            ),
            proto::METRICS_SCHEMA_VERSION,
            self.shards.len(),
            self.shards.len(),
            snap.counter(Ctr::Requests.name()),
            analyze,
            snap.counter(Ctr::Ok.name()),
            snap.counter(Ctr::Errors.name()),
            snap.counter(Ctr::Overloaded.name()),
            coalesced,
            coalesce_rate,
            hits,
            misses,
            snap.counter(Ctr::ResponseEvictions.name()),
            hit_rate,
            s.kernel_hits,
            s.kernel_misses,
            ev.kernel_evictions,
            s.machine_hits,
            s.machine_misses,
            ev.machine_evictions,
            self.disk.is_some(),
            disk.hits,
            disk.misses,
            disk.writes,
            disk.evictions,
            disk.stale,
            disk.corrupt,
            disk.hit_rate(),
            self.opts.queue * self.shards.len(),
            snap.gauge("serve.queue_depth"),
            snap.gauge("serve.queue_peak"),
            h.count,
            h.mean(),
            h.quantile(0.50),
            h.quantile(0.99),
            if h.count == 0 { 0 } else { h.max },
            now_s,
            windows,
            journal,
        )
    }

    /// The `events` response body: journal entries newer than `since`,
    /// oldest first, plus the cursors a poller needs to resume and to
    /// detect ring overflow.
    fn events_json(&self, since: u64) -> String {
        let j = self.telemetry.journal.lock().expect("journal poisoned");
        let mut out = format!(
            "{{\"next_seq\":{},\"dropped\":{},\"events\":[",
            j.next_seq(),
            j.dropped()
        );
        for (i, e) in j.events_since(since).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition of everything: the registry snapshot
    /// plus the cache/disk/uptime values that live outside it.
    fn prometheus_text(&self) -> String {
        let mut out = self.telemetry.reg.snapshot().render_prometheus("incore");
        let mut counter = |name: &str, v: u64| {
            out.push_str(&format!(
                "# TYPE incore_{name}_total counter\nincore_{name}_total {v}\n"
            ));
        };
        let s = self.cache.stats();
        let ev = self.cache.evictions();
        counter("serve_kernel_cache_hits", s.kernel_hits);
        counter("serve_kernel_cache_misses", s.kernel_misses);
        counter("serve_kernel_cache_evictions", ev.kernel_evictions);
        counter("serve_machine_cache_hits", s.machine_hits);
        counter("serve_machine_cache_misses", s.machine_misses);
        counter("serve_machine_cache_evictions", ev.machine_evictions);
        let disk = self.disk.as_ref().map(|d| d.stats()).unwrap_or_default();
        counter("serve_disk_hits", disk.hits);
        counter("serve_disk_misses", disk.misses);
        counter("serve_disk_writes", disk.writes);
        counter("serve_disk_evictions", disk.evictions);
        counter("serve_disk_stale", disk.stale);
        counter("serve_disk_corrupt", disk.corrupt);
        let mut gauge = |name: &str, v: u64| {
            out.push_str(&format!("# TYPE incore_{name} gauge\nincore_{name} {v}\n"));
        };
        gauge("serve_disk_enabled", self.disk.is_some() as u64);
        gauge("serve_workers", self.shards.len() as u64);
        gauge(
            "serve_queue_capacity",
            (self.opts.queue * self.shards.len()) as u64,
        );
        gauge("serve_uptime_seconds", self.telemetry.now_s());
        out
    }
}

/// Resolve the request's machine selection to a cache-key token. A
/// machine file is read here (submit time) and content-hashed, so an
/// edited file is a different key and a vanished file fails fast.
fn machine_token(sel: &MachineSel) -> Result<(String, MachineToken), Error> {
    match sel.chosen()? {
        MachineRef::Model(id) => Ok((format!("model:{id}"), MachineToken::Model(id.clone()))),
        MachineRef::File(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| Error::io(path.as_str(), &e))?;
            let key = format!("file:{:016x}", fnv1a(json.as_bytes()));
            Ok((key, MachineToken::File(json)))
        }
    }
}

/// Deliver a response frame without stalling the shard: try the
/// bounded outbound queue first and fall back to a detached blocking
/// sender for a slow-but-alive reader. At most queue-capacity jobs are
/// in flight per shard, so the fallback threads are bounded too.
fn deliver(tx: &SyncSender<String>, frame: String) {
    match tx.try_send(frame) {
        Ok(()) => {}
        Err(TrySendError::Full(frame)) => {
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(frame);
            });
        }
        Err(TrySendError::Disconnected(_)) => {}
    }
}

/// Run one analysis: machine through the bounded machine cache, kernel
/// through the bounded kernel cache, report through the same
/// deterministic path as `analyze --json` (timings zeroed).
fn compute(shared: &Shared, payload: &Payload) -> Result<String, Error> {
    let machine = match &payload.token {
        MachineToken::Model(id) => std::sync::Arc::new(
            uarch::registry::machine(id)
                .ok_or_else(|| Error::usage(format!("unknown registry id `{id}`")))?,
        ),
        MachineToken::File(json) => shared.cache.machine(json)?,
    };
    let kernel = shared
        .cache
        .kernel(&payload.asm, machine.isa)
        .map_err(|e| e.with_context(payload.label.as_str()))?;
    let (report, _timings) =
        crate::analyze_report(&machine, &payload.label, &kernel, payload.flags);
    Ok(report.to_json())
}

/// Tag versioning the persistent response entries. The stored payload is
/// the report JSON verbatim, so its shape is pinned by the engine report
/// schema — fold that version in, and stale entries from an older build
/// become misses instead of wrong replays.
fn response_codec() -> String {
    format!(
        "srv-resp1 s{}.{}",
        engine::SCHEMA_VERSION,
        engine::SCHEMA_MINOR
    )
}

/// Replay a response from the persistent store, if configured and
/// present. The key is the full analysis identity ([`Key`]): resolved
/// machine token, label, predictor flag bits, and the assembly text.
fn disk_get(shared: &Shared, key: &Key) -> Option<String> {
    let disk = shared.disk.as_ref()?;
    let codec = response_codec();
    let flags = key.flags.to_string();
    disk.get(&[&codec, &key.machine, &key.label, &flags, &key.asm])
}

/// Persist a computed response (no-op without `--cache-dir`).
fn disk_put(shared: &Shared, key: &Key, report: &str) {
    if let Some(disk) = &shared.disk {
        let codec = response_codec();
        let flags = key.flags.to_string();
        disk.put(
            &[&codec, &key.machine, &key.label, &flags, &key.asm],
            report,
        );
    }
}

fn worker(shared: &Shared, index: usize, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let key = match job {
            Job::Stop => break,
            Job::Run(key) => key,
        };
        shared
            .telemetry
            .reg
            .gauge_sub(shared.telemetry.queue_depth, 1);
        let shard = &shared.shards[index];
        let (payload, leader_ctx) = {
            let inflight = shard.inflight.lock().expect("inflight map poisoned");
            inflight
                .get(&key)
                .map(|p| (p.payload.clone(), p.ctx))
                .expect("job enqueued under the inflight lock")
        };
        let start = Instant::now();
        let stale_before = shared.disk.as_ref().map(|d| d.stats().stale).unwrap_or(0);
        let run = || {
            if shared.opts.throttle_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(shared.opts.throttle_ms));
            }
            match disk_get(shared, &key) {
                Some(report) => Ok(report),
                None => {
                    let computed = compute(shared, &payload);
                    if let Ok(report) = &computed {
                        disk_put(shared, &key, report);
                    }
                    computed
                }
            }
        };
        // Compute under the leader's trace context so the predictor
        // spans engine emits nest inside this request's span tree.
        let result = if leader_ctx.is_none() {
            run()
        } else {
            obs::with_trace(leader_ctx, || {
                let _span = obs::span("serve.compute");
                run()
            })
        };
        let stale_after = shared.disk.as_ref().map(|d| d.stats().stale).unwrap_or(0);
        if stale_after > stale_before {
            shared.telemetry.event(
                Severity::Info,
                "disk_stale_healed",
                "stale persistent-cache entry recomputed and rewritten",
                vec![("label".to_string(), key.label.clone())],
            );
        }
        if let Ok(report) = &result {
            let evicted = shared
                .responses
                .lock()
                .expect("response cache poisoned")
                .insert(key.clone(), std::sync::Arc::new(report.clone()));
            if evicted > 0 {
                shared.telemetry.bump(Ctr::ResponseEvictions, evicted);
                shared.telemetry.event(
                    Severity::Info,
                    "response_evicted",
                    "response LRU at capacity; oldest entries dropped",
                    vec![("evicted".to_string(), evicted.to_string())],
                );
            }
        }
        let waiters = shard
            .inflight
            .lock()
            .expect("inflight map poisoned")
            .remove(&key)
            .map(|p| p.waiters)
            .unwrap_or_default();
        for (i, w) in waiters.iter().enumerate() {
            let frame = match &result {
                Ok(report) => {
                    let echo = if w.want_trace { w.ctx.trace_id } else { 0 };
                    proto::render_analyze_ok_traced(w.id, echo, report)
                }
                Err(e) => proto::render_error(w.id, e),
            };
            deliver(&w.tx, frame);
            if i > 0 {
                // Followers did not compute: their tree is the root plus
                // a leaf covering the coalesced wait.
                mark_request_child(w, "serve.coalesced");
            }
            close_request_span(w);
        }
        let n = waiters.len() as u64;
        match &result {
            Ok(_) => shared.telemetry.bump(Ctr::Ok, n),
            Err(_) => shared.telemetry.bump(Ctr::Errors, n),
        }
        let us = elapsed_us(start);
        shared.telemetry.service(us);
        if shared.opts.slow_ms > 0 && us / 1000 >= shared.opts.slow_ms {
            shared.telemetry.event(
                Severity::Warn,
                "slow_request",
                "job serviced slower than the slow-request threshold",
                vec![
                    ("label".to_string(), key.label.clone()),
                    ("ms".to_string(), (us / 1000).to_string()),
                ],
            );
        }
    }
}

/// Route an `analyze` request: response cache, then coalesce onto an
/// identical in-flight computation, then enqueue — or reject with an
/// explicit `overloaded` error when the shard's bounded queue is full.
fn submit(shared: &Shared, conn_tx: &SyncSender<String>, req: AnalyzeRequest) {
    shared.telemetry.bump(Ctr::Analyze, 1);
    let waiter = Waiter {
        id: req.id,
        tx: conn_tx.clone(),
        ctx: mint_request_ctx(),
        t0: Instant::now(),
        want_trace: req.trace,
    };
    let sel = if req.sel.is_empty() {
        &shared.opts.sel
    } else {
        &req.sel
    };
    let (machine_key, token) = match machine_token(sel) {
        Ok(t) => t,
        Err(e) => {
            shared.telemetry.bump(Ctr::Errors, 1);
            let _ = conn_tx.send(proto::render_error(req.id, &e));
            return;
        }
    };
    let key = Key {
        asm: req.asm.clone(),
        label: req.label.clone(),
        machine: machine_key,
        flags: flag_bits(req.flags),
    };
    if let Some(report) = shared
        .responses
        .lock()
        .expect("response cache poisoned")
        .get(&key)
    {
        shared.telemetry.bump(Ctr::ResponseHits, 1);
        shared.telemetry.bump(Ctr::Ok, 1);
        let echo = if waiter.want_trace {
            waiter.ctx.trace_id
        } else {
            0
        };
        let _ = conn_tx.send(proto::render_analyze_ok_traced(req.id, echo, &report));
        mark_request_child(&waiter, "serve.cache_hit");
        close_request_span(&waiter);
        return;
    }
    shared.telemetry.bump(Ctr::ResponseMisses, 1);
    let shard_index = key.shard(shared.shards.len());
    let shard = &shared.shards[shard_index];
    // The inflight lock is held across the queue submission: a worker
    // cannot observe (and answer) the job before its entry exists, and
    // a coalescing request cannot land between the try_send and the
    // insert.
    let mut inflight = shard.inflight.lock().expect("inflight map poisoned");
    if let Some(pending) = inflight.get_mut(&key) {
        shared.telemetry.bump(Ctr::Coalesced, 1);
        pending.waiters.push(waiter);
        return;
    }
    // The depth gauge must rise before the job is visible to a worker:
    // the worker's decrement on dequeue would otherwise race ahead of
    // the increment and drive the gauge below zero.
    let depth = shared
        .telemetry
        .reg
        .gauge_add_fetch(shared.telemetry.queue_depth, 1);
    shared
        .telemetry
        .reg
        .gauge_max(shared.telemetry.queue_peak, depth);
    match shard.tx.try_send(Job::Run(key.clone())) {
        Ok(()) => {
            let ctx = waiter.ctx;
            inflight.insert(
                key,
                Pending {
                    payload: Payload {
                        label: req.label,
                        asm: req.asm,
                        flags: req.flags,
                        token,
                    },
                    ctx,
                    waiters: vec![waiter],
                },
            );
        }
        Err(_) => {
            // Full (backpressure) or disconnected (drain already passed
            // the Stop sentinel): either way, an explicit retry hint
            // instead of unbounded queueing.
            shared
                .telemetry
                .reg
                .gauge_sub(shared.telemetry.queue_depth, 1);
            shared.telemetry.bump(Ctr::Overloaded, 1);
            shared.telemetry.event(
                Severity::Warn,
                "overloaded",
                "shard queue full; request rejected with a retry hint",
                vec![
                    ("shard".to_string(), shard_index.to_string()),
                    ("retry_after_ms".to_string(), RETRY_AFTER_MS.to_string()),
                ],
            );
            let _ = conn_tx.send(proto::render_error(
                req.id,
                &Error::overloaded(RETRY_AFTER_MS),
            ));
        }
    }
}

fn handle(shared: &Shared, conn_tx: &SyncSender<String>, line: &str) {
    shared.telemetry.bump(Ctr::Requests, 1);
    match proto::parse_request(line) {
        Err(e) => {
            shared.telemetry.bump(Ctr::Errors, 1);
            let _ = conn_tx.send(proto::render_error(0, &e));
        }
        Ok(Request::Ping { id }) => {
            let _ = conn_tx.send(proto::render_pong(id));
        }
        Ok(Request::Metrics { id }) => {
            let _ = conn_tx.send(proto::render_metrics(id, &shared.metrics_json()));
        }
        Ok(Request::Events { id, since }) => {
            let _ = conn_tx.send(proto::render_events(id, &shared.events_json(since)));
        }
        Ok(Request::Shutdown { id }) => {
            let _ = conn_tx.send(proto::render_shutdown_ack(id));
            shared.begin_drain();
        }
        Ok(Request::Analyze(req)) => submit(shared, conn_tx, req),
    }
}

/// Answer a Prometheus scrape: the peer spoke HTTP (`GET ...`) on the
/// NDJSON port. Drain the header lines (blank line = end of request),
/// send one self-framed HTTP/1.0 response, and let the connection
/// close. Scrapes are counted separately from protocol requests.
fn scrape<R: BufRead>(shared: &Shared, frames: &mut FrameReader<R>, tx: &SyncSender<String>) {
    loop {
        match frames.next_frame() {
            Ok(Some(header)) if !header.is_empty() => continue,
            _ => break,
        }
    }
    shared.telemetry.bump(Ctr::Scrapes, 1);
    let body = shared.prometheus_text();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = tx.send(response);
}

/// Serve one connection: a reader parsing frames and submitting work,
/// plus a writer draining the bounded outbound queue, so responses
/// (including coalesced ones computed on another connection's request)
/// never interleave mid-frame. Returns when the peer closes, the read
/// half is shut down by a drain, or the socket errors.
fn connection(shared: &Shared, stream: TcpStream) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<String>(OUTBOUND_FRAMES);
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut w = BufWriter::new(writer_stream);
            while let Ok(frame) = rx.recv() {
                if w.write_all(frame.as_bytes()).is_err() || w.flush().is_err() {
                    break;
                }
            }
        });
        let mut frames = FrameReader::new(BufReader::new(&stream), shared.opts.max_request_bytes);
        let mut first = true;
        loop {
            match frames.next_frame() {
                Ok(None) => break,
                Ok(Some(line)) if first && line.starts_with("GET ") => {
                    scrape(shared, &mut frames, &tx);
                    break;
                }
                Ok(Some(line)) => {
                    first = false;
                    handle(shared, &tx, &line);
                }
                Err(e) if e.kind() == ErrorKind::Io => break,
                Err(e) => {
                    // Oversized / non-UTF-8 frame: answer and keep the
                    // connection (the reader already resynced).
                    first = false;
                    shared.telemetry.bump(Ctr::Requests, 1);
                    shared.telemetry.bump(Ctr::Errors, 1);
                    let _ = tx.send(proto::render_error(0, &e));
                }
            }
        }
        drop(tx);
        // The scope joins the writer once every waiter holding a sender
        // clone has delivered its response — the graceful-drain bound.
    });
    // The drain registry holds a clone of this stream, so dropping our
    // handles does not close the socket. Shut it down explicitly —
    // HTTP scrapers read to EOF and would otherwise hang forever.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Run the server on an already-bound listener until a `shutdown`
/// request drains it. This is the whole lifetime: worker shards and
/// connection threads live in scopes, so returning proves everything
/// joined.
pub fn serve_on(listener: TcpListener, opts: ServeOpts) -> Result<ServeSummary, Error> {
    let addr = listener
        .local_addr()
        .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let mut shards = Vec::with_capacity(threads);
    let mut receivers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = mpsc::sync_channel::<Job>(opts.queue);
        shards.push(Shard {
            tx,
            inflight: Mutex::new(HashMap::new()),
        });
        receivers.push(rx);
    }
    let disk = match &opts.cache_dir {
        Some(dir) => Some(engine::DiskCache::open_bounded(dir.as_str(), opts.cache)?),
        None => None,
    };
    let shared = Shared {
        cache: engine::CorpusCache::bounded(opts.cache),
        responses: Mutex::new(engine::Lru::bounded(opts.cache)),
        disk,
        telemetry: Telemetry::new(),
        draining: AtomicBool::new(false),
        conns: Mutex::new(Vec::new()),
        addr,
        opts,
        shards,
    };
    shared.telemetry.event(
        Severity::Info,
        "listening",
        "server accepting connections",
        vec![
            ("addr".to_string(), addr.to_string()),
            ("workers".to_string(), threads.to_string()),
        ],
    );
    let shared = &shared;
    rayon::scope(|workers| {
        for (index, rx) in receivers.into_iter().enumerate() {
            workers.spawn(move || worker(shared, index, rx));
        }
        std::thread::scope(|conns| {
            loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        if shared.draining() {
                            break;
                        }
                        continue;
                    }
                };
                if shared.draining() {
                    break;
                }
                if let Ok(read_half) = stream.try_clone() {
                    shared
                        .conns
                        .lock()
                        .expect("conn registry poisoned")
                        .push(read_half);
                }
                conns.spawn(move || connection(shared, stream));
            }
            // The scope joins every connection: all accepted requests
            // are answered (or rejected) before the workers stop.
        });
        for shard in &shared.shards {
            let _ = shard.tx.send(Job::Stop);
        }
    });
    Ok(shared.summary())
}

/// Bind and run the server in the foreground (the `incore-cli serve`
/// subcommand). Prints the bound address first so scripts driving
/// `--addr 127.0.0.1:0` can discover the port, then blocks until a
/// `shutdown` request drains the server. With `--trace <file>` the obs
/// recorder runs for the server's lifetime and the per-request span
/// trees land in a Chrome trace at that path — stdout is byte-identical
/// either way.
pub fn run_serve(opts: ServeOpts, out: &mut dyn Write) -> Result<ServeSummary, Error> {
    let trace_path = opts.trace.clone();
    if trace_path.is_some() {
        obs::enable();
    }
    let listener = TcpListener::bind(&opts.addr).map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    writeln!(out, "listening on {addr}").map_err(|e| Error::io("<stdout>", &e))?;
    out.flush().map_err(|e| Error::io("<stdout>", &e))?;
    let summary = serve_on(listener, opts)?;
    if let Some(path) = trace_path {
        let profile = obs::take();
        obs::disable();
        std::fs::write(&path, profile.to_chrome_trace())
            .map_err(|e| Error::io(path.as_str(), &e))?;
    }
    write!(out, "{}", summary.render()).map_err(|e| Error::io("<stdout>", &e))?;
    Ok(summary)
}

/// An in-process server for tests and the load-generator bench: the
/// accept loop runs on its own thread, [`ServerHandle::shutdown`]
/// drives the drain protocol and returns the summary.
pub struct ServerHandle {
    pub addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<ServeSummary, Error>>,
}

impl ServerHandle {
    pub fn start(opts: ServeOpts) -> Result<ServerHandle, Error> {
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| Error::io(opts.addr.as_str(), &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
        let thread = std::thread::spawn(move || serve_on(listener, opts));
        Ok(ServerHandle { addr, thread })
    }

    /// Request a graceful drain and wait for the server to finish.
    pub fn shutdown(self) -> Result<ServeSummary, Error> {
        let stream = TcpStream::connect(self.addr).map_err(|e| Error::io("<shutdown>", &e))?;
        {
            let mut w = &stream;
            w.write_all(b"{\"type\":\"shutdown\"}\n")
                .map_err(|e| Error::io("<shutdown>", &e))?;
        }
        let mut ack = String::new();
        let _ = BufReader::new(&stream).read_line(&mut ack);
        drop(stream);
        self.thread
            .join()
            .map_err(|_| Error::protocol("server thread panicked"))?
    }
}
