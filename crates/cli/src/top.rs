//! `incore-cli top`: a polling terminal dashboard over a running
//! `serve` instance.
//!
//! One persistent NDJSON connection issues a `metrics` and an `events`
//! request per tick; the responses render as a fixed-layout frame
//! (totals, rolling-window rates, service-time quantiles, cache and
//! queue state, and the tail of the event journal). Rendering is a pure
//! function of the two response bodies so it can be unit-tested without
//! a terminal; the caller decides whether frames are separated by an
//! ANSI clear (a TTY) or a blank line (a pipe, where the frames become
//! a poor man's time series).

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::time::Duration;

use crate::Error;

/// Journal entries kept on screen between ticks.
const EVENT_TAIL: usize = 8;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopOpts {
    /// Server address (`host:port`), as printed by `serve` on startup.
    pub addr: String,
    /// Poll period between frames.
    pub interval_ms: u64,
    /// Frames to render before exiting; 0 = run until the server drains.
    pub count: u64,
    /// Clear the screen between frames (the caller sets this from
    /// `IsTerminal`, so piped output stays an appendable log).
    pub clear: bool,
}

impl Default for TopOpts {
    fn default() -> TopOpts {
        TopOpts {
            addr: String::new(),
            interval_ms: 1000,
            count: 0,
            clear: false,
        }
    }
}

/// Drive the dashboard until `count` frames have rendered or the server
/// drains (clean EOF on the connection — not an error: `top` outlives
/// nothing). Connection and protocol failures are real errors.
pub fn run_top(opts: &TopOpts, out: &mut dyn IoWrite) -> Result<(), Error> {
    let stream = TcpStream::connect(&opts.addr).map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| Error::io(opts.addr.as_str(), &e))?;
    let mut reader = BufReader::new(stream);
    let mut since = 0u64;
    let mut tail: Vec<serde_json::Value> = Vec::new();
    let mut tick = 0u64;
    loop {
        tick += 1;
        let poll = format!(
            "{{\"type\":\"metrics\",\"id\":{tick}}}\n{{\"type\":\"events\",\"id\":{tick},\"since\":{since}}}\n"
        );
        if writer.write_all(poll.as_bytes()).is_err() {
            break; // server went away between ticks: drained
        }
        let (Some(metrics), Some(events)) = (
            read_body(&mut reader, "metrics")?,
            read_body(&mut reader, "events")?,
        ) else {
            break;
        };
        if let Some(next) = events.get("next_seq").and_then(|v| v.as_u64()) {
            since = next.saturating_sub(1);
        }
        if let Some(fresh) = events.get("events").and_then(|v| v.as_array()) {
            // `since` is inclusive-of-cursor on the reissue, so the
            // first entry of a non-first poll is the one already shown.
            let skip = usize::from(tick > 1 && !fresh.is_empty());
            tail.extend(fresh.iter().skip(skip).cloned());
        }
        if tail.len() > EVENT_TAIL {
            tail.drain(..tail.len() - EVENT_TAIL);
        }
        if opts.clear {
            out.write_all(b"\x1b[2J\x1b[H")
                .map_err(|e| Error::io("<stdout>", &e))?;
        }
        let dropped = events.get("dropped").and_then(|v| v.as_u64()).unwrap_or(0);
        out.write_all(render_frame(&opts.addr, &metrics, &tail, dropped, tick).as_bytes())
            .map_err(|e| Error::io("<stdout>", &e))?;
        out.flush().map_err(|e| Error::io("<stdout>", &e))?;
        if opts.count != 0 && tick >= opts.count {
            break;
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
    Ok(())
}

/// Read one response frame and return its `key` body object; `None` on
/// clean EOF (the server drained mid-session).
fn read_body(
    reader: &mut BufReader<TcpStream>,
    key: &str,
) -> Result<Option<serde_json::Map>, Error> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| Error::io("<socket>", &e))?;
    if n == 0 {
        return Ok(None);
    }
    let v: serde_json::Value = serde_json::from_str(line.trim_end())
        .map_err(|_| Error::protocol("server sent a non-JSON frame"))?;
    let o = v
        .as_object()
        .ok_or_else(|| Error::protocol("server frame is not an object"))?;
    if o.get("ok").and_then(|b| b.as_bool()) != Some(true) {
        return Err(Error::protocol(format!("server rejected the poll: {line}")));
    }
    o.get(key)
        .and_then(|b| b.as_object())
        .cloned()
        .map(Some)
        .ok_or_else(|| Error::protocol(format!("response is missing the `{key}` body")))
}

/// Look up a dotted path (`"requests.total"`) in a metrics body.
fn num(m: &serde_json::Map, path: &str) -> f64 {
    let mut cur = serde_json::Value::Object(m.clone());
    for part in path.split('.') {
        match cur.as_object().and_then(|o| o.get(part)) {
            Some(v) => cur = v.clone(),
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// One dashboard frame as plain text. Pure: everything it shows comes
/// from the two response bodies, so tests feed it canned JSON.
pub fn render_frame(
    addr: &str,
    m: &serde_json::Map,
    events: &[serde_json::Value],
    dropped: u64,
    tick: u64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "incore serve {addr} — up {}s, {} worker(s) x{} shard(s), tick {tick}\n",
        num(m, "uptime_s") as u64,
        num(m, "workers") as u64,
        num(m, "shards") as u64,
    ));
    out.push_str(&format!(
        "requests  total {}  analyze {}  ok {}  err {}  overload {}  coalesced {}\n",
        num(m, "requests.total") as u64,
        num(m, "requests.analyze") as u64,
        num(m, "requests.ok") as u64,
        num(m, "requests.errors") as u64,
        num(m, "requests.overloaded") as u64,
        num(m, "requests.coalesced") as u64,
    ));
    for w in ["10s", "1m", "5m"] {
        out.push_str(&format!(
            "  {w:<4}    {:>7.1} req/s  err {:>6}  p50 {:>7}us  p99 {:>7}us  cache {:>6}  coalesce {:>6}\n",
            num(m, &format!("windows.{w}.requests_per_s")),
            pct(num(m, &format!("windows.{w}.error_rate"))),
            num(m, &format!("windows.{w}.service_p50_us")) as u64,
            num(m, &format!("windows.{w}.service_p99_us")) as u64,
            pct(num(m, &format!("windows.{w}.cache_hit_rate"))),
            pct(num(m, &format!("windows.{w}.coalesce_rate"))),
        ));
    }
    out.push_str(&format!(
        "service   p50 {}us  p99 {}us  max {}us  ({} samples)\n",
        num(m, "service_time_us.p50") as u64,
        num(m, "service_time_us.p99") as u64,
        num(m, "service_time_us.max") as u64,
        num(m, "service_time_us.count") as u64,
    ));
    let disk_on = m
        .get("disk")
        .and_then(|d| d.as_object())
        .and_then(|d| d.get("enabled"))
        .and_then(|v| v.as_bool())
        .unwrap_or(false);
    let disk = if disk_on {
        format!("disk {}", pct(num(m, "disk.hit_rate")))
    } else {
        "disk off".to_string()
    };
    out.push_str(&format!(
        "cache     response {}  kernel {}/{}  machine {}/{}  {}\n",
        pct(num(m, "cache.hit_rate")),
        num(m, "cache.kernel_hits") as u64,
        (num(m, "cache.kernel_hits") + num(m, "cache.kernel_misses")) as u64,
        num(m, "cache.machine_hits") as u64,
        (num(m, "cache.machine_hits") + num(m, "cache.machine_misses")) as u64,
        disk,
    ));
    out.push_str(&format!(
        "queue     depth {}/{}  peak {}\n",
        num(m, "queue.depth") as u64,
        num(m, "queue.capacity") as u64,
        num(m, "queue.peak_depth") as u64,
    ));
    out.push_str(&format!(
        "events    ({} shown, {} dropped by the ring)\n",
        events.len(),
        dropped
    ));
    for e in events {
        let Some(o) = e.as_object() else { continue };
        let get = |k: &str| o.get(k).and_then(|v| v.as_str()).unwrap_or("?");
        let mut line = format!(
            "  [{:<5}] #{} {}: {}",
            get("severity"),
            o.get("seq").and_then(|v| v.as_u64()).unwrap_or(0),
            get("kind"),
            get("message"),
        );
        if let Some(fields) = o.get("fields").and_then(|v| v.as_object()) {
            for (k, v) in fields.iter() {
                match v.as_str() {
                    Some(s) => line.push_str(&format!(" {k}={s}")),
                    None => line.push_str(&format!(" {k}={v:?}")),
                }
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(json: &str) -> serde_json::Map {
        let v: serde_json::Value = serde_json::from_str(json).unwrap();
        v.as_object().unwrap().clone()
    }

    #[test]
    fn render_frame_is_a_pure_function_of_the_bodies() {
        let m = body(
            r#"{"schema_version":3,"workers":2,"shards":2,"uptime_s":12,
                "requests":{"total":120,"analyze":100,"ok":118,"errors":1,
                            "overloaded":1,"coalesced":4,"coalesce_rate":0.04},
                "cache":{"response_hits":30,"response_misses":70,"hit_rate":0.3,
                         "kernel_hits":60,"kernel_misses":40,
                         "machine_hits":99,"machine_misses":1},
                "disk":{"enabled":true,"hit_rate":0.8},
                "queue":{"capacity":64,"depth":3,"peak_depth":7},
                "service_time_us":{"count":100,"mean":900,"p50":840,"p99":1900,"max":2400},
                "windows":{"10s":{"requests_per_s":11.0,"error_rate":0.0,
                                   "service_p50_us":840,"service_p99_us":1900,
                                   "cache_hit_rate":0.25,"coalesce_rate":0.05},
                           "1m":{"requests_per_s":2.1,"error_rate":0.01,
                                  "service_p50_us":800,"service_p99_us":2000,
                                  "cache_hit_rate":0.3,"coalesce_rate":0.04},
                           "5m":{"requests_per_s":0.4,"error_rate":0.0,
                                  "service_p50_us":810,"service_p99_us":2100,
                                  "cache_hit_rate":0.31,"coalesce_rate":0.03}}}"#,
        );
        let ev: serde_json::Value = serde_json::from_str(
            r#"{"seq":7,"unix_ms":1,"severity":"warn","kind":"overloaded",
                "message":"shard queue full","fields":{"shard":"1"}}"#,
        )
        .unwrap();
        let frame = render_frame("127.0.0.1:9", &m, &[ev], 2, 3);
        assert!(frame.contains("up 12s, 2 worker(s)"), "{frame}");
        assert!(frame.contains("total 120  analyze 100  ok 118"), "{frame}");
        assert!(frame.contains("11.0 req/s"), "{frame}");
        assert!(
            frame.contains("p50 840us  p99 1900us  max 2400us"),
            "{frame}"
        );
        assert!(frame.contains("disk 80.0%"), "{frame}");
        assert!(frame.contains("depth 3/64  peak 7"), "{frame}");
        assert!(frame.contains("(1 shown, 2 dropped"), "{frame}");
        assert!(
            frame.contains("[warn ] #7 overloaded: shard queue full shard=1"),
            "{frame}"
        );
        // Identical inputs render identical frames (no hidden clock).
        let ev2: serde_json::Value = serde_json::from_str(
            r#"{"seq":7,"unix_ms":1,"severity":"warn","kind":"overloaded",
                "message":"shard queue full","fields":{"shard":"1"}}"#,
        )
        .unwrap();
        assert_eq!(frame, render_frame("127.0.0.1:9", &m, &[ev2], 2, 3));
    }

    #[test]
    fn missing_blocks_render_as_zeros_not_panics() {
        let frame = render_frame("x", &body("{}"), &[], 0, 1);
        assert!(frame.contains("total 0"), "{frame}");
        assert!(frame.contains("disk off"), "{frame}");
    }

    #[test]
    fn one_shot_dashboard_polls_a_live_server() {
        let server = crate::serve::ServerHandle::start(crate::serve::ServeOpts {
            threads: 1,
            queue: 4,
            ..crate::serve::ServeOpts::default()
        })
        .expect("server starts");
        let opts = TopOpts {
            addr: server.addr.to_string(),
            interval_ms: 1,
            count: 1,
            clear: false,
        };
        let mut out = Vec::new();
        run_top(&opts, &mut out).expect("one frame");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("incore serve"), "{text}");
        // The journal's startup entry is visible on the first frame.
        assert!(text.contains("listening"), "{text}");
        server.shutdown().expect("graceful drain");
    }
}
