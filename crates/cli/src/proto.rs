//! Wire protocol of `incore-cli serve`: newline-delimited JSON frames
//! over a TCP stream (one request object per line in, one response
//! object per line out), zero-dependency on both sides — any language
//! that can open a socket and print a line can drive the server.
//!
//! Requests (`"id"` is an optional client-chosen correlation number,
//! echoed back verbatim; it defaults to 0):
//!
//! ```text
//! {"type":"analyze","id":1,"asm":".L1:\n ...","arch":"spr","mca":true}
//! {"type":"metrics","id":2}
//! {"type":"events","id":5,"since":17}
//! {"type":"ping","id":3}
//! {"type":"shutdown","id":4}
//! ```
//!
//! An `analyze` request selects its machine exactly like the batch CLI:
//! `"arch"`/`"model"` take the same family aliases and registry ids as
//! `--arch`/`--model` (resolved through [`crate::resolve_model_id`], so
//! an unknown name fails with the same message in both modes), and
//! `"machine_file"` is a server-side path like `--machine-file`. The
//! optional `"balanced"`, `"mca"`, and `"sim"` booleans mirror the
//! `analyze` flags; `"label"` names the kernel in the report. An
//! optional `"trace":true` asks the server to echo the request's
//! `trace_id` on the response (when the server is tracing, the request
//! also becomes a connected span tree in the Chrome-trace output).
//!
//! `events` drains the server's journal: `"since"` (default 0) is the
//! last sequence number already seen, and the response carries every
//! retained event newer than it plus `next_seq`/`dropped` cursors.
//!
//! Successful `analyze` responses embed the report as the **last** key —
//! `{"id":1,"ok":true,"report":<BatchReport>}` — so the report bytes can
//! be spliced out textually ([`extract_report`]) and compared
//! byte-for-byte against single-shot `analyze --json` output. Failures
//! are `{"id":1,"ok":false,"error":{"kind":"...","message":"..."}}`
//! where `kind` is the stable [`ErrorKind::label`](engine::ErrorKind);
//! an `"overloaded"` error additionally carries `"retry_after_ms"`.
//!
//! Framing is enforced, not assumed: a line longer than the configured
//! maximum is consumed to its newline and rejected with a `protocol`
//! error (the connection stays usable), a truncated final line (EOF
//! without newline) is accepted as a frame, and invalid UTF-8 or JSON is
//! a `protocol` error — never a panic.

use std::io::BufRead;

use crate::{AnalyzeFlags, Error, MachineRef, MachineSel};

/// Version of the request/response envelope (reported by `ping`).
pub const PROTOCOL_VERSION: u32 = 1;

/// Version of the `metrics` response body.
///
/// History: 1 = requests/cache/queue/service-time blocks; 2 = added the
/// `disk` block (persistent `--cache-dir` hit/miss/write/eviction
/// counters, zeroed with `"enabled":false` when no cache dir is set);
/// 3 = added `uptime_s`, the rolling `windows` block (10s/1m/5m req/s,
/// error rate, service p50/p99, cache/coalesce hit rates), and the
/// `journal` block (retained/dropped event counts + next_seq cursor).
/// Every version is a strict superset of its predecessor.
pub const METRICS_SCHEMA_VERSION: u32 = 3;

/// Default cap on one request frame (bytes, excluding the newline).
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// One parsed `analyze` request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    pub id: u64,
    /// Kernel label in the report (`"kernel"` when the request omits it).
    pub label: String,
    pub asm: String,
    /// Machine selection, same resolution rules as the batch CLI.
    pub sel: MachineSel,
    /// Predictor set: only `balanced`/`mca`/`sim` are wire-settable.
    pub flags: AnalyzeFlags,
    /// Echo the request's trace id on the response.
    pub trace: bool,
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Analyze(AnalyzeRequest),
    Metrics { id: u64 },
    Events { id: u64, since: u64 },
    Ping { id: u64 },
    Shutdown { id: u64 },
}

impl Request {
    pub fn id(&self) -> u64 {
        match self {
            Request::Analyze(a) => a.id,
            Request::Metrics { id }
            | Request::Events { id, .. }
            | Request::Ping { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// Reads newline-delimited frames off a stream, enforcing the size cap.
pub struct FrameReader<R> {
    inner: R,
    max: usize,
}

impl<R: BufRead> FrameReader<R> {
    pub fn new(inner: R, max_request_bytes: usize) -> Self {
        FrameReader {
            inner,
            max: max_request_bytes,
        }
    }

    /// Next frame: `Ok(None)` on clean EOF; `Err` with kind `Protocol`
    /// for an oversized or non-UTF-8 line (the stream is resynced to the
    /// next newline, so the connection stays usable) and kind `Io` when
    /// the underlying read fails.
    pub fn next_frame(&mut self) -> Result<Option<String>, Error> {
        let mut buf: Vec<u8> = Vec::new();
        let n = <&mut R as std::io::Read>::take(&mut self.inner, self.max as u64 + 2)
            .read_until(b'\n', &mut buf)
            .map_err(|e| Error::io("<socket>", &e))?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        if buf.len() > self.max {
            // Drain the rest of the oversized line so the next frame
            // starts clean, then reject this one.
            loop {
                let mut skip: Vec<u8> = Vec::new();
                let n = <&mut R as std::io::Read>::take(&mut self.inner, 1 << 16)
                    .read_until(b'\n', &mut skip)
                    .map_err(|e| Error::io("<socket>", &e))?;
                if n == 0 || skip.last() == Some(&b'\n') {
                    break;
                }
            }
            return Err(Error::protocol(format!(
                "request exceeds the {} byte frame limit",
                self.max
            )));
        }
        match String::from_utf8(buf) {
            Ok(line) => Ok(Some(line)),
            Err(_) => Err(Error::protocol("request frame is not valid UTF-8")),
        }
    }
}

fn field<'a>(obj: &'a serde::Map<String, serde::Value>, key: &str) -> Option<&'a serde::Value> {
    obj.get(key)
}

fn str_field(obj: &serde::Map<String, serde::Value>, key: &str) -> Result<Option<String>, Error> {
    match field(obj, key) {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s.to_string())),
            None => Err(Error::protocol(format!("`{key}` must be a string"))),
        },
    }
}

fn bool_field(obj: &serde::Map<String, serde::Value>, key: &str) -> Result<bool, Error> {
    match field(obj, key) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| Error::protocol(format!("`{key}` must be a boolean"))),
    }
}

fn id_field(obj: &serde::Map<String, serde::Value>) -> Result<u64, Error> {
    match field(obj, "id") {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| Error::protocol("`id` must be a non-negative integer")),
    }
}

/// Parse one request line. Every failure is a workspace [`Error`] whose
/// kind goes on the wire: malformed frames are `protocol`, an unknown
/// machine name is the same `usage` error (same message) the batch CLI
/// produces for `--arch`/`--model`.
pub fn parse_request(line: &str) -> Result<Request, Error> {
    let v: serde::Value =
        serde_json::from_str(line).map_err(|e| Error::protocol(format!("invalid JSON: {e}")))?;
    let obj = v
        .as_object()
        .ok_or_else(|| Error::protocol("request must be a JSON object"))?;
    let ty = str_field(obj, "type")?.ok_or_else(|| {
        Error::protocol("request needs a `type` (analyze, metrics, ping, shutdown)")
    })?;
    let id = id_field(obj)?;
    let allowed: &[&str] = match ty.as_str() {
        "analyze" => &[
            "type",
            "id",
            "asm",
            "label",
            "arch",
            "model",
            "machine_file",
            "balanced",
            "mca",
            "sim",
            "trace",
        ],
        "events" => &["type", "id", "since"],
        "metrics" | "ping" | "shutdown" => &["type", "id"],
        other => {
            return Err(Error::protocol(format!(
                "unknown request type `{other}`; use analyze, metrics, events, ping, or shutdown"
            )))
        }
    };
    for (key, _) in obj.iter() {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::protocol(format!(
                "unknown field `{key}` for a {ty} request"
            )));
        }
    }
    match ty.as_str() {
        "metrics" => Ok(Request::Metrics { id }),
        "events" => {
            let since = match field(obj, "since") {
                None => 0,
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| Error::protocol("`since` must be a non-negative integer"))?,
            };
            Ok(Request::Events { id, since })
        }
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        _ => {
            let asm = str_field(obj, "asm")?
                .ok_or_else(|| Error::protocol("analyze request needs an `asm` string"))?;
            let label = str_field(obj, "label")?.unwrap_or_else(|| "kernel".to_string());
            let mut sel = MachineSel::default();
            // Same resolution path as --arch/--model: family aliases and
            // registry ids, one shared error message.
            for key in ["arch", "model"] {
                if let Some(name) = str_field(obj, key)? {
                    let resolved = crate::resolve_model_id(&name)?;
                    sel.refs.push(MachineRef::Model(resolved.to_string()));
                }
            }
            if let Some(path) = str_field(obj, "machine_file")? {
                sel.refs.push(MachineRef::File(path));
            }
            let flags = AnalyzeFlags {
                balanced: bool_field(obj, "balanced")?,
                mca: bool_field(obj, "mca")?,
                sim: bool_field(obj, "sim")?,
                ..AnalyzeFlags::default()
            };
            Ok(Request::Analyze(AnalyzeRequest {
                id,
                label,
                asm,
                sel,
                flags,
                trace: bool_field(obj, "trace")?,
            }))
        }
    }
}

/// Successful `analyze` response. The report is spliced in verbatim as
/// the last key, so [`extract_report`] can recover its exact bytes.
pub fn render_analyze_ok(id: u64, report_json: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"report\":{report_json}}}\n")
}

/// Successful `analyze` response with the request's trace id echoed
/// (only when the client asked with `"trace":true` *and* the server is
/// tracing; `trace_id` 0 falls back to the plain envelope). The report
/// stays the last key, so [`extract_report`] works on both shapes.
pub fn render_analyze_ok_traced(id: u64, trace_id: u64, report_json: &str) -> String {
    if trace_id == 0 {
        return render_analyze_ok(id, report_json);
    }
    format!("{{\"id\":{id},\"ok\":true,\"trace_id\":{trace_id},\"report\":{report_json}}}\n")
}

/// Recover the embedded report bytes from a successful `analyze`
/// response frame (the inverse of [`render_analyze_ok`]).
pub fn extract_report(frame: &str) -> Option<&str> {
    let idx = frame.find("\"report\":")?;
    frame[idx + "\"report\":".len()..]
        .trim_end_matches('\n')
        .strip_suffix('}')
}

/// Error response; the `kind` is the stable machine-readable label.
pub fn render_error(id: u64, e: &Error) -> String {
    let message = serde_json::to_string(&e.to_string()).expect("strings always serialize");
    let retry = match e.retry_after_ms() {
        Some(ms) => format!(",\"retry_after_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":{message}{retry}}}}}\n",
        e.kind().label()
    )
}

pub fn render_pong(id: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"pong\":true,\"protocol\":{PROTOCOL_VERSION}}}\n")
}

pub fn render_shutdown_ack(id: u64) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"draining\":true}}\n")
}

/// Wrap an already-serialized metrics object (see
/// [`crate::serve::Server`]) in the response envelope.
pub fn render_metrics(id: u64, metrics_json: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"metrics\":{metrics_json}}}\n")
}

/// Wrap an already-serialized journal drain (see `crate::serve`) in the
/// response envelope.
pub fn render_events(id: u64, events_json: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"events\":{events_json}}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ErrorKind;

    fn reader(bytes: &[u8], max: usize) -> FrameReader<std::io::BufReader<&[u8]>> {
        FrameReader::new(std::io::BufReader::new(bytes), max)
    }

    #[test]
    fn frames_split_on_newlines_and_tolerate_missing_final_newline() {
        let mut r = reader(b"one\ntwo\r\nthree", 64);
        assert_eq!(r.next_frame().unwrap(), Some("one".to_string()));
        assert_eq!(r.next_frame().unwrap(), Some("two".to_string()));
        assert_eq!(r.next_frame().unwrap(), Some("three".to_string()));
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected_and_resynced() {
        let mut input = vec![b'x'; 200_000];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut r = reader(&input, 1024);
        let e = r.next_frame().unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Protocol);
        assert!(e.to_string().contains("1024"), "{e}");
        // The stream resynced to the next line.
        assert_eq!(r.next_frame().unwrap(), Some("ok".to_string()));
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn invalid_utf8_is_a_protocol_error_not_a_panic() {
        let mut r = reader(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n'], 64);
        assert_eq!(r.next_frame().unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(r.next_frame().unwrap(), Some("ok".to_string()));
    }

    #[test]
    fn parse_analyze_request_with_machine_and_flags() {
        let req = parse_request(
            r#"{"type":"analyze","id":7,"asm":".L1:\n nop\n","arch":"spr","mca":true,"sim":true}"#,
        )
        .unwrap();
        assert_eq!(req.id(), 7);
        match req {
            Request::Analyze(a) => {
                assert_eq!(a.sel, MachineSel::model("golden-cove"));
                assert!(a.flags.mca && a.flags.sim && !a.flags.balanced);
                assert_eq!(a.label, "kernel");
                assert_eq!(a.asm, ".L1:\n nop\n");
            }
            other => panic!("{other:?}"),
        }
        // machine_file lands as a File ref, which wins at resolution just
        // like --machine-file.
        let req = parse_request(
            r#"{"type":"analyze","asm":"nop","arch":"gcs","machine_file":"m.json","label":"k.s"}"#,
        )
        .unwrap();
        match req {
            Request::Analyze(a) => {
                assert_eq!(
                    a.sel.refs,
                    vec![
                        MachineRef::Model("neoverse-v2".into()),
                        MachineRef::File("m.json".into()),
                    ]
                );
                assert_eq!(a.label, "k.s");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_machine_shares_the_batch_cli_error() {
        let wire = parse_request(r#"{"type":"analyze","asm":"nop","arch":"m1"}"#).unwrap_err();
        let batch = crate::parse_args(&[
            "analyze".to_string(),
            "k.s".to_string(),
            "--arch".to_string(),
            "m1".to_string(),
        ])
        .unwrap_err();
        assert_eq!(wire.kind(), ErrorKind::Usage);
        assert_eq!(wire.to_string(), batch.to_string());
    }

    #[test]
    fn malformed_requests_get_stable_protocol_kinds() {
        for bad in [
            "not json",
            "[1,2,3]",
            r#"{"id":1}"#,
            r#"{"type":"frobnicate"}"#,
            r#"{"type":"analyze"}"#,
            r#"{"type":"analyze","asm":42}"#,
            r#"{"type":"analyze","asm":"nop","mca":"yes"}"#,
            r#"{"type":"ping","id":-3}"#,
            r#"{"type":"ping","extra":true}"#,
            r#"{"type":"events","since":-1}"#,
            r#"{"type":"events","kind":"x"}"#,
            r#"{"type":"analyze","asm":"nop","trace":"yes"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind(), ErrorKind::Protocol, "{bad}: {e}");
        }
        assert_eq!(
            parse_request(r#"{"type":"ping","id":9}"#).unwrap(),
            Request::Ping { id: 9 }
        );
        assert_eq!(
            parse_request(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: 0 }
        );
        assert_eq!(
            parse_request(r#"{"type":"metrics"}"#).unwrap(),
            Request::Metrics { id: 0 }
        );
        assert_eq!(
            parse_request(r#"{"type":"events","id":4,"since":17}"#).unwrap(),
            Request::Events { id: 4, since: 17 }
        );
        assert_eq!(
            parse_request(r#"{"type":"events"}"#).unwrap(),
            Request::Events { id: 0, since: 0 }
        );
    }

    #[test]
    fn traced_analyze_round_trips_and_degrades() {
        let req = parse_request(r#"{"type":"analyze","id":1,"asm":"nop","trace":true}"#).unwrap();
        match req {
            Request::Analyze(a) => assert!(a.trace),
            other => panic!("{other:?}"),
        }
        let report = r#"{"schema_version":3}"#;
        let frame = render_analyze_ok_traced(9, 41, report);
        assert_eq!(extract_report(&frame), Some(report));
        let v: serde::Value = serde_json::from_str(frame.trim_end()).unwrap();
        assert_eq!(
            v.as_object().unwrap().get("trace_id").unwrap().as_u64(),
            Some(41)
        );
        // trace_id 0 (server not tracing) renders the plain envelope.
        assert_eq!(
            render_analyze_ok_traced(9, 0, report),
            render_analyze_ok(9, report)
        );
        let events = render_events(2, r#"{"next_seq":5,"dropped":0,"events":[]}"#);
        let v: serde::Value = serde_json::from_str(events.trim_end()).unwrap();
        assert!(v.as_object().unwrap().get("events").is_some());
    }

    #[test]
    fn analyze_ok_round_trips_the_report_bytes() {
        let report = r#"{"schema_version":3,"records":[{"kernel":"k"}]}"#;
        let frame = render_analyze_ok(12, report);
        assert!(frame.ends_with('\n'));
        assert_eq!(extract_report(&frame), Some(report));
        let v: serde::Value = serde_json::from_str(frame.trim_end()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("id").unwrap().as_u64(), Some(12));
        assert_eq!(o.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn error_frames_carry_kind_message_and_retry_hint() {
        let frame = render_error(3, &Error::protocol("bad \"quoted\" thing"));
        let v: serde::Value = serde_json::from_str(frame.trim_end()).unwrap();
        let err = v
            .as_object()
            .unwrap()
            .get("error")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("protocol"));
        assert!(err
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("\"quoted\""));
        assert!(err.get("retry_after_ms").is_none());
        let frame = render_error(4, &Error::overloaded(25));
        let v: serde::Value = serde_json::from_str(frame.trim_end()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(o.get("ok").unwrap().as_bool(), Some(false));
        let err = o.get("error").unwrap().as_object().unwrap();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn control_responses_are_versioned() {
        let pong: serde::Value = serde_json::from_str(render_pong(1).trim_end()).unwrap();
        assert_eq!(
            pong.as_object().unwrap().get("protocol").unwrap().as_u64(),
            Some(PROTOCOL_VERSION as u64)
        );
        let ack: serde::Value = serde_json::from_str(render_shutdown_ack(2).trim_end()).unwrap();
        assert_eq!(
            ack.as_object().unwrap().get("draining").unwrap().as_bool(),
            Some(true)
        );
        let m = render_metrics(5, r#"{"schema_version":1}"#);
        let v: serde::Value = serde_json::from_str(m.trim_end()).unwrap();
        assert_eq!(
            v.as_object()
                .unwrap()
                .get("metrics")
                .unwrap()
                .as_object()
                .unwrap()
                .get("schema_version")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
