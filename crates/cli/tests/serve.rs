//! End-to-end tests of `incore-cli serve`: concurrent clients get
//! responses byte-identical to the single-shot `analyze --json` path,
//! coalescing and the response cache are observable only through the
//! metrics (never through the bytes), a slow reader trips the bounded
//! queue into explicit overload instead of unbounded buffering, and a
//! drained server accounts for every request it accepted.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use cli::serve::{ServeOpts, ServerHandle};
use cli::{proto, AnalyzeFlags, MachineSel};

/// A handful of real corpus kernels for one machine, as (label, asm).
fn corpus_kernels(machine: &uarch::Machine, n: usize) -> Vec<(String, String)> {
    kernels::variants_for(machine.arch)
        .iter()
        .take(n)
        .map(|v| (v.label(), kernels::generate(v, machine)))
        .collect()
}

fn analyze_frame(id: u64, label: &str, asm: &str, arch: &str, mca: bool) -> String {
    format!(
        "{{\"type\":\"analyze\",\"id\":{id},\"label\":{},\"asm\":{},\"arch\":\"{arch}\",\"mca\":{mca}}}\n",
        serde_json::to_string(&label.to_string()).unwrap(),
        serde_json::to_string(&asm.to_string()).unwrap(),
    )
}

/// Send `frames` on one connection, then read `expect` response lines.
fn roundtrip(addr: std::net::SocketAddr, frames: &[String], expect: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for f in frames {
        stream.write_all(f.as_bytes()).expect("write");
    }
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed early after {} responses", out.len());
        out.push(line);
    }
    out
}

fn response_id(frame: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
    v.as_object()
        .and_then(|o| o.get("id"))
        .and_then(|id| id.as_u64())
        .expect("response carries the request id")
}

fn error_kind(frame: &str) -> Option<String> {
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).ok()?;
    let o = v.as_object()?;
    if o.get("ok")?.as_bool()? {
        return None;
    }
    Some(
        o.get("error")?
            .as_object()?
            .get("kind")?
            .as_str()?
            .to_string(),
    )
}

#[test]
fn concurrent_clients_get_reports_byte_identical_to_analyze_json() {
    let machine = uarch::Machine::golden_cove();
    let kernels = corpus_kernels(&machine, 6);
    let flags = AnalyzeFlags {
        mca: true,
        ..AnalyzeFlags::default()
    };
    // The golden bytes: the deterministic single-shot analyze --json
    // report (timings zeroed) for every kernel.
    let golden: Vec<String> = kernels
        .iter()
        .map(|(label, asm)| {
            cli::analyze_report_json(&machine, label, asm, flags)
                .unwrap()
                .trim_end()
                .to_string()
        })
        .collect();
    let server = ServerHandle::start(ServeOpts {
        threads: 4,
        queue: 64,
        cache: 256,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let clients = 4;
    std::thread::scope(|s| {
        for c in 0..clients {
            let kernels = &kernels;
            let golden = &golden;
            s.spawn(move || {
                // Each client shuffles the kernel order differently (a
                // rotation) and tags requests with id = kernel index.
                let order: Vec<usize> = (0..kernels.len())
                    .map(|i| (i + c) % kernels.len())
                    .collect();
                let frames: Vec<String> = order
                    .iter()
                    .map(|&i| analyze_frame(i as u64, &kernels[i].0, &kernels[i].1, "spr", true))
                    .collect();
                for frame in roundtrip(addr, &frames, frames.len()) {
                    let id = response_id(&frame) as usize;
                    assert_eq!(error_kind(&frame), None, "unexpected failure: {frame}");
                    let report = proto::extract_report(&frame).expect("ok response has a report");
                    assert_eq!(report, golden[id], "kernel {id} bytes must match");
                }
            });
        }
    });
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.analyze, (clients * kernels.len()) as u64);
    assert_eq!(summary.ok, summary.analyze);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.overloaded, 0);
    // Every request either replayed from the cache or looked like a
    // miss (coalesced requests are misses that then shared an in-flight
    // computation) — and the 4x duplication guarantees sharing.
    assert_eq!(
        summary.response_hits + summary.response_misses,
        summary.analyze
    );
    assert!(summary.coalesced <= summary.response_misses);
    assert!(
        summary.response_hits + summary.coalesced > 0,
        "duplicate kernels across clients must share work: {summary:?}"
    );
}

#[test]
fn identical_inflight_requests_coalesce_and_cached_responses_replay() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 16,
        cache: 64,
        throttle_ms: 150,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let frame = analyze_frame(7, "k.s", asm, "spr", false);
    // Client A starts the computation (throttled to 150 ms), client B
    // lands the identical request while it is in flight.
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| roundtrip(addr, std::slice::from_ref(&frame), 1).remove(0));
        std::thread::sleep(std::time::Duration::from_millis(40));
        let hb = s.spawn(|| roundtrip(addr, std::slice::from_ref(&frame), 1).remove(0));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a, b, "coalesced waiters share one result verbatim");
    // A third request after completion replays from the response cache.
    let c = roundtrip(addr, std::slice::from_ref(&frame), 1).remove(0);
    assert_eq!(a, c, "cache replay is byte-identical");
    // The sharing is visible in the metrics, not in the responses.
    let metrics = roundtrip(addr, &["{\"type\":\"metrics\",\"id\":1}\n".to_string()], 1).remove(0);
    let v: serde_json::Value = serde_json::from_str(metrics.trim_end()).unwrap();
    let m = v
        .as_object()
        .unwrap()
        .get("metrics")
        .unwrap()
        .as_object()
        .unwrap();
    let requests = m.get("requests").unwrap().as_object().unwrap();
    assert_eq!(requests.get("coalesced").unwrap().as_u64(), Some(1));
    let cache = m.get("cache").unwrap().as_object().unwrap();
    assert_eq!(cache.get("response_hits").unwrap().as_u64(), Some(1));
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.coalesced, 1);
    assert_eq!(summary.response_hits, 1);
    assert_eq!(
        summary.response_misses, 2,
        "A missed; B coalesced before caching"
    );
}

#[test]
fn slow_reader_hits_bounded_queue_overload_not_unbounded_buffering() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 2,
        cache: 64,
        throttle_ms: 150,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let total = 12;
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    // Pipeline 12 *distinct* kernels (no coalescing, no cache hits)
    // without reading a single response: 1 computing + 2 queued fit,
    // the rest must be rejected with an explicit overload error.
    for i in 0..total {
        let asm = format!(".L1:\n addq ${i}, %rax\n jne .L1\n");
        let frame = analyze_frame(i as u64, &format!("k{i}.s"), &asm, "spr", false);
        stream.write_all(frame.as_bytes()).expect("write");
    }
    let mut reader = BufReader::new(stream);
    let (mut ok, mut overloaded) = (0u64, 0u64);
    for _ in 0..total {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0);
        match error_kind(&line) {
            None => ok += 1,
            Some(kind) => {
                assert_eq!(kind, "overloaded", "{line}");
                let v: serde_json::Value = serde_json::from_str(line.trim_end()).unwrap();
                let err = v.as_object().unwrap().get("error").unwrap();
                assert!(
                    err.as_object()
                        .unwrap()
                        .get("retry_after_ms")
                        .unwrap()
                        .as_u64()
                        > Some(0),
                    "overload carries a retry hint: {line}"
                );
                overloaded += 1;
            }
        }
    }
    assert!(ok >= 3, "the queue bound admits at least capacity+1: {ok}");
    assert!(overloaded >= 1, "the rest must be shed, not buffered");
    assert_eq!(ok + overloaded, total as u64);
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.ok, ok);
    assert_eq!(summary.overloaded, overloaded);
}

#[test]
fn malformed_frames_answer_with_stable_kinds_and_keep_the_connection() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        max_request_bytes: 512,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let huge = format!(
        "{{\"type\":\"analyze\",\"asm\":\"{}\"}}\n",
        "x".repeat(2048)
    );
    let frames = vec![
        "this is not json\n".to_string(),
        "{\"type\":\"frobnicate\",\"id\":1}\n".to_string(),
        "{\"type\":\"analyze\",\"id\":2}\n".to_string(),
        "{\"type\":\"analyze\",\"id\":3,\"asm\":\"nop\",\"arch\":\"m1\"}\n".to_string(),
        huge,
        "{\"type\":\"ping\",\"id\":4}\n".to_string(),
    ];
    let responses = roundtrip(server.addr, &frames, frames.len());
    let kinds: Vec<Option<String>> = responses.iter().map(|r| error_kind(r)).collect();
    assert_eq!(
        kinds,
        vec![
            Some("protocol".into()),
            Some("protocol".into()),
            Some("protocol".into()),
            Some("usage".into()), // unknown machine: same kind as the CLI
            Some("protocol".into()),
            None, // the ping still answers: the connection survived it all
        ],
        "{responses:?}"
    );
    let pong: serde_json::Value =
        serde_json::from_str(responses.last().unwrap().trim_end()).unwrap();
    assert_eq!(
        pong.as_object()
            .unwrap()
            .get("pong")
            .and_then(|p| p.as_bool()),
        Some(true)
    );
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(
        summary.requests,
        frames.len() as u64 + 1,
        "plus the shutdown"
    );
    assert_eq!(summary.errors, 5);
}

#[test]
fn server_side_default_machine_comes_from_the_shared_selection() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        sel: MachineSel::model("golden-cove"),
        ..ServeOpts::default()
    })
    .expect("server starts");
    let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    // No machine in the request: the server's --arch default applies.
    let frame = format!(
        "{{\"type\":\"analyze\",\"id\":9,\"label\":\"k.s\",\"asm\":{}}}\n",
        serde_json::to_string(&asm.to_string()).unwrap()
    );
    let response = roundtrip(server.addr, &[frame], 1).remove(0);
    let machine = uarch::Machine::golden_cove();
    let golden = cli::analyze_report_json(&machine, "k.s", asm, AnalyzeFlags::default()).unwrap();
    assert_eq!(proto::extract_report(&response), Some(golden.trim_end()));
    server.shutdown().expect("graceful drain");
}

/// Fetch and decode the `metrics` body as a JSON object.
fn fetch_metrics(addr: std::net::SocketAddr) -> serde_json::Map {
    let frame = roundtrip(addr, &["{\"type\":\"metrics\",\"id\":1}\n".to_string()], 1).remove(0);
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
    v.as_object()
        .unwrap()
        .get("metrics")
        .unwrap()
        .as_object()
        .unwrap()
        .clone()
}

#[test]
fn persistent_cache_survives_a_restart_and_reports_disk_metrics() {
    let dir = std::env::temp_dir().join(format!("incore-serve-diskcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || ServeOpts {
        threads: 1,
        queue: 8,
        cache: 64,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeOpts::default()
    };
    let asm = ".L1:\n vfmadd231pd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let frame = analyze_frame(11, "fma.s", asm, "spr", true);

    // Cold server: the first computation is a disk miss that writes.
    let server = ServerHandle::start(opts()).expect("server starts");
    let cold = roundtrip(server.addr, std::slice::from_ref(&frame), 1).remove(0);
    assert_eq!(error_kind(&cold), None, "{cold}");
    let m = fetch_metrics(server.addr);
    assert_eq!(m.get("schema_version").unwrap().as_u64(), Some(3));
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(disk.get("writes").unwrap().as_u64(), Some(1));
    server.shutdown().expect("graceful drain");

    // Restarted server: the in-memory LRU is empty, the disk replays —
    // byte-identical bytes without recomputation.
    let server = ServerHandle::start(opts()).expect("server restarts");
    let warm = roundtrip(server.addr, std::slice::from_ref(&frame), 1).remove(0);
    assert_eq!(
        proto::extract_report(&warm),
        proto::extract_report(&cold),
        "a disk replay must be byte-identical to the cold computation"
    );
    let m = fetch_metrics(server.addr);
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(disk.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("hit_rate").unwrap().as_f64(), Some(1.0));
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.ok, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_without_a_cache_dir_report_a_disabled_disk_block() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let m = fetch_metrics(server.addr);
    assert_eq!(m.get("schema_version").unwrap().as_u64(), Some(3));
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("writes").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("hit_rate").unwrap().as_f64(), Some(0.0));
    server.shutdown().expect("graceful drain");
}

/// Recursively collect sorted `a.b.c` key paths of a JSON object.
fn key_paths(prefix: &str, v: &serde_json::Value, out: &mut Vec<String>) {
    if let Some(o) = v.as_object() {
        for (k, child) in o.iter() {
            let path = if prefix.is_empty() {
                k.clone()
            } else {
                format!("{prefix}.{k}")
            };
            out.push(path.clone());
            key_paths(&path, child, out);
        }
    }
}

#[test]
fn metrics_schema_v3_matches_the_golden_key_paths() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        ..ServeOpts::default()
    })
    .expect("server starts");
    // One analyzed kernel so every counter family is exercised.
    let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let frame = analyze_frame(1, "k.s", asm, "spr", false);
    roundtrip(server.addr, &[frame], 1);
    let m = fetch_metrics(server.addr);
    server.shutdown().expect("graceful drain");
    let mut paths = Vec::new();
    key_paths("", &serde_json::Value::Object(m.clone()), &mut paths);
    paths.sort();
    let rendered = paths.join("\n") + "\n";
    // The golden snapshot gate: the full recursive key set of a
    // schema_version 3 metrics body (regenerate with UPDATE_FIXTURES=1).
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../fixtures/serve/metrics_schema_v3.txt"
    );
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::write(path, &rendered).expect("write fixture");
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden snapshot exists; regenerate with UPDATE_FIXTURES=1");
    assert_eq!(
        rendered, golden,
        "metrics schema drifted from the v3 golden key set; \
         bump METRICS_SCHEMA_VERSION and regenerate with UPDATE_FIXTURES=1"
    );
    // v3 must stay a strict superset of v2: every v2 key path survives.
    for v2_key in [
        "schema_version",
        "workers",
        "shards",
        "requests.total",
        "requests.analyze",
        "requests.ok",
        "requests.errors",
        "requests.overloaded",
        "requests.coalesced",
        "requests.coalesce_rate",
        "cache.response_hits",
        "cache.response_misses",
        "cache.response_evictions",
        "cache.hit_rate",
        "cache.kernel_hits",
        "cache.kernel_misses",
        "cache.kernel_evictions",
        "cache.machine_hits",
        "cache.machine_misses",
        "cache.machine_evictions",
        "disk.enabled",
        "disk.hits",
        "disk.misses",
        "disk.writes",
        "disk.evictions",
        "disk.stale",
        "disk.corrupt",
        "disk.hit_rate",
        "queue.capacity",
        "queue.depth",
        "queue.peak_depth",
        "service_time_us.count",
        "service_time_us.mean",
        "service_time_us.p50",
        "service_time_us.p99",
        "service_time_us.max",
    ] {
        assert!(
            paths.iter().any(|p| p == v2_key),
            "v2 key `{v2_key}` missing from the v3 body"
        );
    }
    // And the v3 additions exist.
    for v3_key in [
        "uptime_s",
        "windows.10s.requests_per_s",
        "windows.1m",
        "windows.5m",
        "journal.next_seq",
        "journal.dropped",
    ] {
        assert!(
            paths.iter().any(|p| p == v3_key),
            "v3 key `{v3_key}` missing"
        );
    }
}

#[test]
fn metrics_snapshots_are_never_torn_under_concurrent_load() {
    let machine = uarch::Machine::golden_cove();
    let kernels = corpus_kernels(&machine, 4);
    let server = ServerHandle::start(ServeOpts {
        threads: 2,
        queue: 16,
        cache: 8,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two hammering clients keep every counter moving.
        for c in 0..2 {
            let (kernels, stop) = (&kernels, &stop);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let (label, asm) = &kernels[(i + c) % kernels.len()];
                    let frame = analyze_frame(i as u64, label, asm, "spr", false);
                    roundtrip(addr, &[frame], 1);
                    i += 1;
                }
            });
        }
        // The poller asserts the accounting invariants hold in every
        // single snapshot, mid-flight included — this is what the torn
        // field-by-field reads of the old metrics struct violated.
        for _ in 0..25 {
            let m = fetch_metrics(addr);
            let req = m.get("requests").unwrap().as_object().unwrap();
            let cache = m.get("cache").unwrap().as_object().unwrap();
            let total = req.get("total").unwrap().as_u64().unwrap();
            let analyze = req.get("analyze").unwrap().as_u64().unwrap();
            let ok = req.get("ok").unwrap().as_u64().unwrap();
            let errors = req.get("errors").unwrap().as_u64().unwrap();
            let overloaded = req.get("overloaded").unwrap().as_u64().unwrap();
            let coalesced = req.get("coalesced").unwrap().as_u64().unwrap();
            let hits = cache.get("response_hits").unwrap().as_u64().unwrap();
            let misses = cache.get("response_misses").unwrap().as_u64().unwrap();
            assert!(total >= analyze, "requests {total} < analyze {analyze}");
            assert!(
                analyze >= hits + misses,
                "analyze {analyze} < lookups {}",
                hits + misses
            );
            assert!(
                misses >= coalesced,
                "misses {misses} < coalesced {coalesced}"
            );
            assert!(
                total >= ok + errors + overloaded,
                "requests {total} < outcomes {}",
                ok + errors + overloaded
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(
        summary.ok + summary.errors + summary.overloaded,
        summary.analyze
    );
}

#[test]
fn tracing_keeps_report_bytes_and_builds_connected_span_trees() {
    // Tracing rides the process-global obs recorder; the served report
    // bytes must not change, and each request (the coalesced follower
    // included) must render as one connected span tree.
    let machine = uarch::Machine::golden_cove();
    let asm = ".L1:\n vmulpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let golden = cli::analyze_report_json(&machine, "t.s", asm, AnalyzeFlags::default()).unwrap();
    let traced_frame = format!(
        "{{\"type\":\"analyze\",\"id\":21,\"label\":\"t.s\",\"asm\":{},\"arch\":\"spr\",\"trace\":true}}\n",
        serde_json::to_string(&asm.to_string()).unwrap()
    );
    obs::enable();
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 8,
        throttle_ms: 120,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    // Leader + in-flight identical follower (coalesced), like the
    // coalescing test but with tracing on.
    let (a, b) = std::thread::scope(|s| {
        let fa = traced_frame.clone();
        let fb = traced_frame.clone();
        let ha = s.spawn(move || roundtrip(addr, &[fa], 1).remove(0));
        std::thread::sleep(std::time::Duration::from_millis(40));
        let hb = s.spawn(move || roundtrip(addr, &[fb], 1).remove(0));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    let summary = server.shutdown().expect("graceful drain");
    let profile = obs::take();
    obs::disable();
    assert_eq!(summary.coalesced, 1);
    // Report bytes are byte-identical to the untraced analyze --json
    // path for both the leader and the coalesced follower.
    for frame in [&a, &b] {
        assert_eq!(
            proto::extract_report(frame),
            Some(golden.trim_end()),
            "tracing must not change report bytes"
        );
    }
    // Both responses echo their (distinct) trace ids.
    let trace_id = |frame: &str| -> u64 {
        let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
        v.as_object()
            .unwrap()
            .get("trace_id")
            .and_then(|t| t.as_u64())
            .expect("traced request echoes trace_id")
    };
    let (ta, tb) = (trace_id(&a), trace_id(&b));
    assert_ne!(ta, tb, "each request gets its own trace");
    // Each trace renders as one connected tree: exactly one root
    // (parent_id 0) and every other span's parent is in the trace.
    for t in [ta, tb] {
        let spans: Vec<_> = profile.spans.iter().filter(|s| s.trace_id == t).collect();
        assert!(!spans.is_empty(), "trace {t} has no spans");
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 1, "trace {t} must have one root: {spans:?}");
        assert_eq!(roots[0].name, "serve.request");
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
        for s in &spans {
            assert!(
                s.parent_id == 0 || ids.contains(&s.parent_id),
                "span {} of trace {t} is disconnected (parent {})",
                s.name,
                s.parent_id
            );
        }
    }
    // The leader's tree contains the compute span (with the predictor
    // spans engine emitted under it); the follower's tree records the
    // coalesced wait instead.
    let names_of = |t: u64| -> Vec<&str> {
        profile
            .spans
            .iter()
            .filter(|s| s.trace_id == t)
            .map(|s| s.name.as_str())
            .collect()
    };
    let (na, nb) = (names_of(ta), names_of(tb));
    let (leader, follower) = if na.contains(&"serve.compute") {
        (na, nb)
    } else {
        (nb, na)
    };
    assert!(leader.contains(&"serve.compute"), "{leader:?}");
    assert!(follower.contains(&"serve.coalesced"), "{follower:?}");
    // The chrome rendering carries the trace identity in args.
    let chrome = profile.to_chrome_trace();
    assert!(chrome.contains(&format!("\"trace_id\":{ta}")));
    assert!(chrome.contains(&format!("\"trace_id\":{tb}")));
    // An untraced request (no "trace":true) gets no trace_id key even
    // while the recorder is on — verified by the plain frame shape in
    // the other tests running under this recorder-off default.
}

#[test]
fn events_request_drains_the_journal_incrementally() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 1,
        throttle_ms: 150,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    // Overload the single-slot queue with distinct kernels on one
    // unread connection, so `overloaded` warnings hit the journal.
    let total = 8;
    let mut stream = TcpStream::connect(addr).expect("connect");
    for i in 0..total {
        let asm = format!(".L1:\n addq ${i}, %rbx\n jne .L1\n");
        let frame = analyze_frame(i as u64, &format!("q{i}.s"), &asm, "spr", false);
        stream.write_all(frame.as_bytes()).expect("write");
    }
    let mut reader = BufReader::new(stream);
    for _ in 0..total {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0);
    }
    let fetch_events = |since: u64| -> serde_json::Map {
        let frame = roundtrip(
            addr,
            &[format!(
                "{{\"type\":\"events\",\"id\":1,\"since\":{since}}}\n"
            )],
            1,
        )
        .remove(0);
        let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
        v.as_object()
            .unwrap()
            .get("events")
            .unwrap()
            .as_object()
            .unwrap()
            .clone()
    };
    let body = fetch_events(0);
    let events = body.get("events").unwrap().as_array().unwrap();
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| {
            e.as_object()
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap()
        })
        .collect();
    assert!(kinds.contains(&"listening"), "{kinds:?}");
    assert!(kinds.contains(&"overloaded"), "{kinds:?}");
    let overloaded = events
        .iter()
        .find(|e| e.as_object().unwrap().get("kind").unwrap().as_str() == Some("overloaded"))
        .unwrap()
        .as_object()
        .unwrap();
    assert_eq!(overloaded.get("severity").unwrap().as_str(), Some("warn"));
    // Sequence numbers are strictly increasing and the cursor resumes.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.as_object().unwrap().get("seq").unwrap().as_u64().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    let next = body.get("next_seq").unwrap().as_u64().unwrap();
    assert_eq!(next, seqs.last().unwrap() + 1);
    let tail = fetch_events(next - 1);
    assert!(tail.get("events").unwrap().as_array().unwrap().is_empty());
    // The journal shows up in the metrics block too.
    let m = fetch_metrics(addr);
    let journal = m.get("journal").unwrap().as_object().unwrap();
    assert!(journal.get("retained").unwrap().as_u64().unwrap() >= seqs.len() as u64);
    server.shutdown().expect("graceful drain");
}

#[test]
fn prometheus_scrape_serves_linted_text_exposition() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    // One analyzed kernel so the counters are non-zero.
    let asm = ".L1:\n vsubpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    roundtrip(addr, &[analyze_frame(1, "p.s", asm, "spr", false)], 1);
    // A plain HTTP GET on the NDJSON port.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\nAccept: */*\r\n\r\n")
        .expect("write");
    let mut response = String::new();
    use std::io::Read;
    stream.read_to_string(&mut response).expect("read to EOF");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP response has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    // Exposition lint: every sample line's metric appears in a # TYPE
    // line, names are unique per family, and no sample is NaN.
    let mut families = std::collections::HashSet::new();
    for line in body.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = line.split_whitespace().nth(2).unwrap();
        assert!(families.insert(name.to_string()), "duplicate family {name}");
    }
    let mut samples = 0;
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let name = name_and_labels.split('{').next().unwrap();
        let family = name.trim_end_matches("_sum").trim_end_matches("_count");
        assert!(
            families.contains(name) || families.contains(family),
            "sample {name} has no # TYPE family"
        );
        assert!(value.parse::<f64>().unwrap().is_finite(), "{line}");
        samples += 1;
    }
    assert!(samples > 10, "expected a full exposition, got {samples}");
    assert!(
        body.contains("incore_serve_requests_total 1\n"),
        "one analyze request"
    );
    assert!(
        body.contains("incore_serve_scrapes_total 1\n"),
        "the scrape counts itself"
    );
    assert!(body.contains("incore_serve_service_time_us{quantile=\"0.5\"}"));
    // Scrapes are not protocol requests: the summary counts only the
    // analyze and the shutdown.
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.requests, 2, "{summary:?}");
}
