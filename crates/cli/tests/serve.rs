//! End-to-end tests of `incore-cli serve`: concurrent clients get
//! responses byte-identical to the single-shot `analyze --json` path,
//! coalescing and the response cache are observable only through the
//! metrics (never through the bytes), a slow reader trips the bounded
//! queue into explicit overload instead of unbounded buffering, and a
//! drained server accounts for every request it accepted.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use cli::serve::{ServeOpts, ServerHandle};
use cli::{proto, AnalyzeFlags, MachineSel};

/// A handful of real corpus kernels for one machine, as (label, asm).
fn corpus_kernels(machine: &uarch::Machine, n: usize) -> Vec<(String, String)> {
    kernels::variants_for(machine.arch)
        .iter()
        .take(n)
        .map(|v| (v.label(), kernels::generate(v, machine)))
        .collect()
}

fn analyze_frame(id: u64, label: &str, asm: &str, arch: &str, mca: bool) -> String {
    format!(
        "{{\"type\":\"analyze\",\"id\":{id},\"label\":{},\"asm\":{},\"arch\":\"{arch}\",\"mca\":{mca}}}\n",
        serde_json::to_string(&label.to_string()).unwrap(),
        serde_json::to_string(&asm.to_string()).unwrap(),
    )
}

/// Send `frames` on one connection, then read `expect` response lines.
fn roundtrip(addr: std::net::SocketAddr, frames: &[String], expect: usize) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for f in frames {
        stream.write_all(f.as_bytes()).expect("write");
    }
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(expect);
    for _ in 0..expect {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed early after {} responses", out.len());
        out.push(line);
    }
    out
}

fn response_id(frame: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
    v.as_object()
        .and_then(|o| o.get("id"))
        .and_then(|id| id.as_u64())
        .expect("response carries the request id")
}

fn error_kind(frame: &str) -> Option<String> {
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).ok()?;
    let o = v.as_object()?;
    if o.get("ok")?.as_bool()? {
        return None;
    }
    Some(
        o.get("error")?
            .as_object()?
            .get("kind")?
            .as_str()?
            .to_string(),
    )
}

#[test]
fn concurrent_clients_get_reports_byte_identical_to_analyze_json() {
    let machine = uarch::Machine::golden_cove();
    let kernels = corpus_kernels(&machine, 6);
    let flags = AnalyzeFlags {
        mca: true,
        ..AnalyzeFlags::default()
    };
    // The golden bytes: the deterministic single-shot analyze --json
    // report (timings zeroed) for every kernel.
    let golden: Vec<String> = kernels
        .iter()
        .map(|(label, asm)| {
            cli::analyze_report_json(&machine, label, asm, flags)
                .unwrap()
                .trim_end()
                .to_string()
        })
        .collect();
    let server = ServerHandle::start(ServeOpts {
        threads: 4,
        queue: 64,
        cache: 256,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let clients = 4;
    std::thread::scope(|s| {
        for c in 0..clients {
            let kernels = &kernels;
            let golden = &golden;
            s.spawn(move || {
                // Each client shuffles the kernel order differently (a
                // rotation) and tags requests with id = kernel index.
                let order: Vec<usize> = (0..kernels.len())
                    .map(|i| (i + c) % kernels.len())
                    .collect();
                let frames: Vec<String> = order
                    .iter()
                    .map(|&i| analyze_frame(i as u64, &kernels[i].0, &kernels[i].1, "spr", true))
                    .collect();
                for frame in roundtrip(addr, &frames, frames.len()) {
                    let id = response_id(&frame) as usize;
                    assert_eq!(error_kind(&frame), None, "unexpected failure: {frame}");
                    let report = proto::extract_report(&frame).expect("ok response has a report");
                    assert_eq!(report, golden[id], "kernel {id} bytes must match");
                }
            });
        }
    });
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.analyze, (clients * kernels.len()) as u64);
    assert_eq!(summary.ok, summary.analyze);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.overloaded, 0);
    // Every request either replayed from the cache or looked like a
    // miss (coalesced requests are misses that then shared an in-flight
    // computation) — and the 4x duplication guarantees sharing.
    assert_eq!(
        summary.response_hits + summary.response_misses,
        summary.analyze
    );
    assert!(summary.coalesced <= summary.response_misses);
    assert!(
        summary.response_hits + summary.coalesced > 0,
        "duplicate kernels across clients must share work: {summary:?}"
    );
}

#[test]
fn identical_inflight_requests_coalesce_and_cached_responses_replay() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 16,
        cache: 64,
        throttle_ms: 150,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let addr = server.addr;
    let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let frame = analyze_frame(7, "k.s", asm, "spr", false);
    // Client A starts the computation (throttled to 150 ms), client B
    // lands the identical request while it is in flight.
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| roundtrip(addr, &[frame.clone()], 1).remove(0));
        std::thread::sleep(std::time::Duration::from_millis(40));
        let hb = s.spawn(|| roundtrip(addr, &[frame.clone()], 1).remove(0));
        (ha.join().unwrap(), hb.join().unwrap())
    });
    assert_eq!(a, b, "coalesced waiters share one result verbatim");
    // A third request after completion replays from the response cache.
    let c = roundtrip(addr, &[frame.clone()], 1).remove(0);
    assert_eq!(a, c, "cache replay is byte-identical");
    // The sharing is visible in the metrics, not in the responses.
    let metrics = roundtrip(addr, &["{\"type\":\"metrics\",\"id\":1}\n".to_string()], 1).remove(0);
    let v: serde_json::Value = serde_json::from_str(metrics.trim_end()).unwrap();
    let m = v
        .as_object()
        .unwrap()
        .get("metrics")
        .unwrap()
        .as_object()
        .unwrap();
    let requests = m.get("requests").unwrap().as_object().unwrap();
    assert_eq!(requests.get("coalesced").unwrap().as_u64(), Some(1));
    let cache = m.get("cache").unwrap().as_object().unwrap();
    assert_eq!(cache.get("response_hits").unwrap().as_u64(), Some(1));
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.coalesced, 1);
    assert_eq!(summary.response_hits, 1);
    assert_eq!(
        summary.response_misses, 2,
        "A missed; B coalesced before caching"
    );
}

#[test]
fn slow_reader_hits_bounded_queue_overload_not_unbounded_buffering() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 2,
        cache: 64,
        throttle_ms: 150,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let total = 12;
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    // Pipeline 12 *distinct* kernels (no coalescing, no cache hits)
    // without reading a single response: 1 computing + 2 queued fit,
    // the rest must be rejected with an explicit overload error.
    for i in 0..total {
        let asm = format!(".L1:\n addq ${i}, %rax\n jne .L1\n");
        let frame = analyze_frame(i as u64, &format!("k{i}.s"), &asm, "spr", false);
        stream.write_all(frame.as_bytes()).expect("write");
    }
    let mut reader = BufReader::new(stream);
    let (mut ok, mut overloaded) = (0u64, 0u64);
    for _ in 0..total {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0);
        match error_kind(&line) {
            None => ok += 1,
            Some(kind) => {
                assert_eq!(kind, "overloaded", "{line}");
                let v: serde_json::Value = serde_json::from_str(line.trim_end()).unwrap();
                let err = v.as_object().unwrap().get("error").unwrap();
                assert!(
                    err.as_object()
                        .unwrap()
                        .get("retry_after_ms")
                        .unwrap()
                        .as_u64()
                        > Some(0),
                    "overload carries a retry hint: {line}"
                );
                overloaded += 1;
            }
        }
    }
    assert!(ok >= 3, "the queue bound admits at least capacity+1: {ok}");
    assert!(overloaded >= 1, "the rest must be shed, not buffered");
    assert_eq!(ok + overloaded, total as u64);
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.ok, ok);
    assert_eq!(summary.overloaded, overloaded);
}

#[test]
fn malformed_frames_answer_with_stable_kinds_and_keep_the_connection() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        max_request_bytes: 512,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let huge = format!(
        "{{\"type\":\"analyze\",\"asm\":\"{}\"}}\n",
        "x".repeat(2048)
    );
    let frames = vec![
        "this is not json\n".to_string(),
        "{\"type\":\"frobnicate\",\"id\":1}\n".to_string(),
        "{\"type\":\"analyze\",\"id\":2}\n".to_string(),
        "{\"type\":\"analyze\",\"id\":3,\"asm\":\"nop\",\"arch\":\"m1\"}\n".to_string(),
        huge,
        "{\"type\":\"ping\",\"id\":4}\n".to_string(),
    ];
    let responses = roundtrip(server.addr, &frames, frames.len());
    let kinds: Vec<Option<String>> = responses.iter().map(|r| error_kind(r)).collect();
    assert_eq!(
        kinds,
        vec![
            Some("protocol".into()),
            Some("protocol".into()),
            Some("protocol".into()),
            Some("usage".into()), // unknown machine: same kind as the CLI
            Some("protocol".into()),
            None, // the ping still answers: the connection survived it all
        ],
        "{responses:?}"
    );
    let pong: serde_json::Value =
        serde_json::from_str(responses.last().unwrap().trim_end()).unwrap();
    assert_eq!(
        pong.as_object()
            .unwrap()
            .get("pong")
            .and_then(|p| p.as_bool()),
        Some(true)
    );
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(
        summary.requests,
        frames.len() as u64 + 1,
        "plus the shutdown"
    );
    assert_eq!(summary.errors, 5);
}

#[test]
fn server_side_default_machine_comes_from_the_shared_selection() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        sel: MachineSel::model("golden-cove"),
        ..ServeOpts::default()
    })
    .expect("server starts");
    let asm = ".L1:\n vaddpd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    // No machine in the request: the server's --arch default applies.
    let frame = format!(
        "{{\"type\":\"analyze\",\"id\":9,\"label\":\"k.s\",\"asm\":{}}}\n",
        serde_json::to_string(&asm.to_string()).unwrap()
    );
    let response = roundtrip(server.addr, &[frame], 1).remove(0);
    let machine = uarch::Machine::golden_cove();
    let golden = cli::analyze_report_json(&machine, "k.s", asm, AnalyzeFlags::default()).unwrap();
    assert_eq!(proto::extract_report(&response), Some(golden.trim_end()));
    server.shutdown().expect("graceful drain");
}

/// Fetch and decode the `metrics` body as a JSON object.
fn fetch_metrics(addr: std::net::SocketAddr) -> serde_json::Map {
    let frame = roundtrip(addr, &["{\"type\":\"metrics\",\"id\":1}\n".to_string()], 1).remove(0);
    let v: serde_json::Value = serde_json::from_str(frame.trim_end()).unwrap();
    v.as_object()
        .unwrap()
        .get("metrics")
        .unwrap()
        .as_object()
        .unwrap()
        .clone()
}

#[test]
fn persistent_cache_survives_a_restart_and_reports_disk_metrics() {
    let dir = std::env::temp_dir().join(format!("incore-serve-diskcache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = || ServeOpts {
        threads: 1,
        queue: 8,
        cache: 64,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeOpts::default()
    };
    let asm = ".L1:\n vfmadd231pd %ymm1, %ymm2, %ymm3\n subq $1, %rax\n jne .L1\n";
    let frame = analyze_frame(11, "fma.s", asm, "spr", true);

    // Cold server: the first computation is a disk miss that writes.
    let server = ServerHandle::start(opts()).expect("server starts");
    let cold = roundtrip(server.addr, &[frame.clone()], 1).remove(0);
    assert_eq!(error_kind(&cold), None, "{cold}");
    let m = fetch_metrics(server.addr);
    assert_eq!(m.get("schema_version").unwrap().as_u64(), Some(2));
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("enabled").unwrap().as_bool(), Some(true));
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("misses").unwrap().as_u64(), Some(1));
    assert_eq!(disk.get("writes").unwrap().as_u64(), Some(1));
    server.shutdown().expect("graceful drain");

    // Restarted server: the in-memory LRU is empty, the disk replays —
    // byte-identical bytes without recomputation.
    let server = ServerHandle::start(opts()).expect("server restarts");
    let warm = roundtrip(server.addr, &[frame.clone()], 1).remove(0);
    assert_eq!(
        proto::extract_report(&warm),
        proto::extract_report(&cold),
        "a disk replay must be byte-identical to the cold computation"
    );
    let m = fetch_metrics(server.addr);
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(disk.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("hit_rate").unwrap().as_f64(), Some(1.0));
    let summary = server.shutdown().expect("graceful drain");
    assert_eq!(summary.ok, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_without_a_cache_dir_report_a_disabled_disk_block() {
    let server = ServerHandle::start(ServeOpts {
        threads: 1,
        queue: 4,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let m = fetch_metrics(server.addr);
    assert_eq!(m.get("schema_version").unwrap().as_u64(), Some(2));
    let disk = m.get("disk").unwrap().as_object().unwrap();
    assert_eq!(disk.get("enabled").unwrap().as_bool(), Some(false));
    assert_eq!(disk.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("writes").unwrap().as_u64(), Some(0));
    assert_eq!(disk.get("hit_rate").unwrap().as_f64(), Some(0.0));
    server.shutdown().expect("graceful drain");
}
