//! Property tests over the serve wire codec: framing round-trips any
//! newline-free line under the size cap, arbitrary byte soup never
//! panics the reader or the request parser (every failure is a typed
//! [`cli::Error`]), and rendered error frames are always valid JSON
//! with the stable machine-readable kind.

use std::io::BufReader;

use cli::proto::{self, FrameReader};
use cli::{Error, ErrorKind};
use proptest::prelude::*;

fn read_all(bytes: &[u8], max: usize) -> Vec<Result<String, ErrorKind>> {
    let mut frames = FrameReader::new(BufReader::new(bytes), max);
    let mut out = Vec::new();
    loop {
        match frames.next_frame() {
            Ok(None) => break,
            Ok(Some(line)) => out.push(Ok(line)),
            Err(e) => out.push(Err(e.kind())),
        }
        assert!(out.len() <= bytes.len() + 1, "reader must make progress");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frames_round_trip_lines_under_the_cap(
        lines in prop::collection::vec("[ -~]{0,40}", 0..8),
    ) {
        let mut wire = String::new();
        for l in &lines {
            wire.push_str(l);
            wire.push('\n');
        }
        let got = read_all(wire.as_bytes(), 64);
        prop_assert_eq!(got.len(), lines.len());
        for (g, want) in got.iter().zip(&lines) {
            prop_assert_eq!(g.as_ref().ok(), Some(want));
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_reader(
        bytes in prop::collection::vec(0u16..256, 0..200),
        max in 1usize..64,
    ) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        for r in read_all(&bytes, max) {
            if let Err(kind) = r {
                // The only failure a byte soup can produce is a typed
                // protocol error (oversize or invalid UTF-8).
                prop_assert_eq!(kind, ErrorKind::Protocol);
            }
        }
    }

    #[test]
    fn arbitrary_text_never_panics_the_request_parser(
        line in "[ -~]{0,80}",
    ) {
        match proto::parse_request(&line) {
            Ok(req) => {
                // Anything accepted must expose a well-defined id.
                let _ = req.id();
            }
            Err(e) => prop_assert!(
                matches!(e.kind(), ErrorKind::Protocol | ErrorKind::Usage),
                "unexpected kind {:?} for {:?}",
                e.kind(),
                line
            ),
        }
    }

    #[test]
    fn error_frames_are_always_valid_json_with_a_stable_kind(
        message in "[ -~]{0,60}",
        id in 0u64..1000,
        retry in 1u64..500,
    ) {
        for e in [Error::protocol(message.clone()), Error::overloaded(retry)] {
            let frame = proto::render_error(id, &e);
            prop_assert!(frame.ends_with('\n'));
            let v: serde_json::Value = serde_json::from_str(frame.trim_end())
                .expect("error frames must parse");
            let o = v.as_object().unwrap();
            prop_assert_eq!(o.get("id").unwrap().as_u64(), Some(id));
            prop_assert_eq!(o.get("ok").unwrap().as_bool(), Some(false));
            let err = o.get("error").unwrap().as_object().unwrap();
            prop_assert_eq!(
                err.get("kind").unwrap().as_str(),
                Some(e.kind().label())
            );
        }
    }

    #[test]
    fn analyze_ok_frames_recover_the_exact_report(
        body in "[ -~]{0,60}",
        id in 0u64..1000,
    ) {
        // The report is opaque bytes as far as the envelope is
        // concerned; splice-out must recover it exactly.
        let report = format!(
            "{{\"x\":{}}}",
            serde_json::to_string(&body.clone()).unwrap()
        );
        let frame = proto::render_analyze_ok(id, &report);
        prop_assert_eq!(proto::extract_report(&frame), Some(report.as_str()));
    }
}
