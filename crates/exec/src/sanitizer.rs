//! Simulator invariant sanitizer (`S001`–`S004`).
//!
//! Debug builds re-verify, at every relevant site inside the event-driven
//! engine, four invariants the engine's correctness argument rests on:
//!
//! * **S001 — clock monotonicity.** Every event-clock jump strictly
//!   increases `now` (the `now + 1` floor in `next_event` plus the
//!   watchdog guard make this provable; the check keeps it true under
//!   refactoring).
//! * **S002 — port-capacity conservation.** A µ-op is only ever granted a
//!   port that is neither already taken this cycle nor busy beyond `now` —
//!   one grant per port per cycle, blocking occupancies respected.
//! * **S003 — no early wake-up.** When the issue phase deems a window
//!   entry ready, every incoming dependence edge is independently
//!   re-evaluated: each producer must have issued and its result matured
//!   (`issue_time + weight ≤ now`).
//! * **S004 — teleport state equivalence.** After a steady-state teleport
//!   shifts the machine state by a whole number of periods, the state
//!   fingerprint (which is relative to `now` and the retired-iteration
//!   count) must be bit-identical to the pre-jump fingerprint.
//!
//! The checks compile only under `cfg(debug_assertions)` and by default
//! **panic** on violation, so every debug test run is a sanitizer run.
//! [`capture`] switches the current thread to record mode — violations are
//! collected instead — which is what `semck` uses to report findings as
//! S-rule diagnostics, and what the seeded-violation tests use together
//! with [`inject`] to prove each check actually fires. Injected faults
//! perturb only the *observed* values fed to a checker, never the
//! simulator's real state, so a seeded run still produces correct results.

use std::cell::RefCell;

/// One detected invariant violation. `code()` gives the stable S-rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// S001: the event clock failed to advance strictly.
    ClockNotMonotone { before: u64, after: u64 },
    /// S002: a µ-op was granted a port already taken this cycle or busy
    /// beyond it.
    PortOvercommit {
        port: usize,
        cycle: u64,
        taken: bool,
        busy_until: u64,
    },
    /// S003: a window entry issued before all operands were ready.
    EarlyWakeup {
        iter: usize,
        idx: usize,
        cycle: u64,
        /// Earliest cycle at which every operand is actually mature.
        ready_at: u64,
    },
    /// S004: the post-teleport state fingerprint differs from the
    /// pre-jump one (first differing word index, or the shorter length
    /// on a length mismatch).
    TeleportSkew { word: usize },
}

impl Violation {
    /// Stable sanitizer rule code.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::ClockNotMonotone { .. } => "S001",
            Violation::PortOvercommit { .. } => "S002",
            Violation::EarlyWakeup { .. } => "S003",
            Violation::TeleportSkew { .. } => "S004",
        }
    }

    /// Human-readable description of the violated invariant.
    pub fn describe(&self) -> String {
        match self {
            Violation::ClockNotMonotone { before, after } => {
                format!("event clock failed to advance: jumped from cycle {before} to {after}")
            }
            Violation::PortOvercommit {
                port,
                cycle,
                taken,
                busy_until,
            } => format!(
                "port {port} over-committed at cycle {cycle} ({})",
                if *taken {
                    "already granted this cycle".to_string()
                } else {
                    format!("busy until cycle {busy_until}")
                }
            ),
            Violation::EarlyWakeup {
                iter,
                idx,
                cycle,
                ready_at,
            } => format!(
                "instruction {idx} of iteration {iter} issued at cycle {cycle} \
                 but its operands mature only at cycle {ready_at}"
            ),
            Violation::TeleportSkew { word } => format!(
                "post-teleport state fingerprint diverges from the pre-jump \
                 fingerprint at word {word}"
            ),
        }
    }
}

/// A fault to inject into the *observed* values of one sanitizer check —
/// the simulator's real state is untouched. One-shot: the first reaching
/// check consumes it. Used by the seeded-violation tests to prove each
/// check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Make the next clock-advance check observe a stalled clock (S001).
    ClockStall,
    /// Make the next port-grant check observe an already-taken port (S002).
    PortDoubleGrant,
    /// Make the next readiness re-check observe an immature operand (S003).
    EarlyWakeup,
    /// Corrupt the observed post-teleport fingerprint (S004).
    TeleportSkew,
}

#[derive(Default)]
struct State {
    recording: bool,
    violations: Vec<Violation>,
    fault: Option<Fault>,
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::default());
}

/// Run `f` with this thread's sanitizer in **record** mode: violations are
/// collected and returned instead of panicking. Any still-pending injected
/// fault is cleared on exit.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Violation>) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.recording = true;
        st.violations.clear();
    });
    let r = f();
    let v = STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.recording = false;
        st.fault = None;
        std::mem::take(&mut st.violations)
    });
    (r, v)
}

/// Arm a one-shot fault for this thread's next matching sanitizer check.
/// No-op in release builds (the checks do not exist there).
pub fn inject(fault: Fault) {
    STATE.with(|s| s.borrow_mut().fault = Some(fault));
}

/// Consume the armed fault if it matches `f`.
fn take_fault(f: Fault) -> bool {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if st.fault == Some(f) {
            st.fault = None;
            true
        } else {
            false
        }
    })
}

fn report(v: Violation) {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if st.recording {
            st.violations.push(v);
        } else {
            panic!("simulator sanitizer [{}]: {}", v.code(), v.describe());
        }
    });
}

// --- Check entry points, called from `event.rs` under
// --- `cfg(debug_assertions)` only.

/// S001: the event clock must strictly advance on every jump.
pub fn check_clock_advance(before: u64, after: u64) {
    let observed = if take_fault(Fault::ClockStall) {
        before
    } else {
        after
    };
    if observed <= before {
        report(Violation::ClockNotMonotone {
            before,
            after: observed,
        });
    }
}

/// S002: a grant must land on a port that is free this cycle.
pub fn check_port_grant(port: usize, taken: bool, busy_until: u64, now: u64) {
    let taken = taken || take_fault(Fault::PortDoubleGrant);
    if taken || busy_until > now {
        report(Violation::PortOvercommit {
            port,
            cycle: now,
            taken,
            busy_until,
        });
    }
}

/// S003: an entry deemed ready must have every operand mature. `ready_at`
/// is the independently recomputed maturity cycle over all incoming edges
/// (`f64::INFINITY` if some producer has not even issued).
pub fn check_wakeup(iter: usize, idx: usize, now: u64, ready_at: f64) {
    let observed = if take_fault(Fault::EarlyWakeup) {
        now as f64 + 1.0
    } else {
        ready_at
    };
    if observed > now as f64 {
        report(Violation::EarlyWakeup {
            iter,
            idx,
            cycle: now,
            ready_at: if observed.is_finite() {
                observed.ceil() as u64
            } else {
                u64::MAX
            },
        });
    }
}

/// S004: the recomputed post-teleport fingerprint must equal the pre-jump
/// one word for word (both are relative to `now` and the retired count).
pub fn check_teleport(fp_pre: &[i64], fp_post: &mut [i64]) {
    if take_fault(Fault::TeleportSkew) {
        if let Some(w) = fp_post.first_mut() {
            *w ^= 1; // perturb the observed copy only
        }
    }
    let mismatch = if fp_pre.len() != fp_post.len() {
        Some(fp_pre.len().min(fp_post.len()))
    } else {
        fp_pre.iter().zip(fp_post.iter()).position(|(a, b)| a != b)
    };
    if let Some(word) = mismatch {
        report(Violation::TeleportSkew { word });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_instead_of_panicking() {
        let ((), v) = capture(|| {
            report(Violation::ClockNotMonotone {
                before: 5,
                after: 5,
            });
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code(), "S001");
    }

    #[test]
    fn faults_are_one_shot() {
        let ((), v) = capture(|| {
            inject(Fault::PortDoubleGrant);
            check_port_grant(3, false, 0, 10); // consumes the fault
            check_port_grant(3, false, 0, 10); // clean
        });
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].code(), "S002");
    }

    #[test]
    fn mismatched_fault_kind_does_not_fire() {
        let ((), v) = capture(|| {
            inject(Fault::ClockStall);
            check_port_grant(0, false, 0, 1);
        });
        assert!(v.is_empty());
        // The pending fault is cleared when capture ends.
        let ((), v) = capture(|| check_clock_advance(4, 5));
        assert!(v.is_empty());
    }

    #[test]
    fn describe_names_every_code() {
        let all = [
            Violation::ClockNotMonotone {
                before: 1,
                after: 1,
            },
            Violation::PortOvercommit {
                port: 2,
                cycle: 9,
                taken: true,
                busy_until: 0,
            },
            Violation::EarlyWakeup {
                iter: 0,
                idx: 1,
                cycle: 4,
                ready_at: 6,
            },
            Violation::TeleportSkew { word: 17 },
        ];
        let codes: Vec<_> = all.iter().map(|v| v.code()).collect();
        assert_eq!(codes, ["S001", "S002", "S003", "S004"]);
        for v in &all {
            assert!(!v.describe().is_empty());
        }
    }
}
