//! The original tick-by-tick simulator loop, retained verbatim as the
//! equivalence oracle for the event-driven engine in [`crate::event`].
//!
//! This engine advances `now` one cycle at a time and rescans the whole
//! in-flight window every cycle. It allocates its bookkeeping per call
//! (including a `Vec<Option<u64>>` per in-flight instruction) — exactly
//! the costs the event engine exists to remove — so it is only reachable
//! through [`crate::SimConfig::reference`], the workspace equivalence
//! tests, and the benchmark harness.

use crate::{RawOutcome, SimConfig, SimResult, TraceEvent};
use incore::depgraph::DepGraph;
use uarch::{InstrClass, InstrDesc, Machine};

/// Per-instruction-instance bookkeeping.
#[derive(Debug, Clone)]
struct InFlight {
    iter: usize,
    idx: usize,
    /// Cycle at which the instruction was dispatched.
    dispatched: u64,
    /// Issue time of each µ-op (`None` = not yet issued).
    uop_issue: Vec<Option<u64>>,
    /// Cycle at which the last µ-op issued (valid once all issued).
    issue_done: Option<u64>,
    /// Cycle at which the instruction may retire.
    completion: u64,
}

pub(crate) fn simulate(
    machine: &Machine,
    cfg: SimConfig,
    descs: &[InstrDesc],
    graph: &DepGraph,
    mut trace: Option<(&mut Vec<TraceEvent>, usize)>,
) -> SimResult {
    let n = descs.len();
    // Incoming edges per instruction index.
    let mut incoming: Vec<Vec<(usize, f64, bool)>> = vec![Vec::new(); n];
    for e in &graph.edges {
        incoming[e.to].push((e.from, e.weight, e.wrap));
    }

    let total_iters = cfg.warmup + cfg.iterations;
    let np = machine.port_model.num_ports();
    let mut port_busy_until = vec![0u64; np];

    // issue_done time of every completed-issue instance, indexed [iter][idx].
    let mut issue_done: Vec<Vec<Option<u64>>> = vec![vec![None; n]; total_iters];

    let mut window: Vec<InFlight> = Vec::new();
    let mut next_dispatch = (0usize, 0usize); // (iter, idx)
    let mut rob_uops: u64 = 0;
    let mut sched_uops: u64 = 0;
    let mut retired_iters = 0usize;
    let mut retire_head = 0usize; // index into `window`
    let mut now: u64 = 0;
    let mut issued_uops_total: u64 = 0;
    let mut warmup_end_cycle: Option<u64> = None;
    let mut warmup_issued: u64 = 0;

    let max_cycles: u64 = 1_000_000 + (total_iters as u64) * 2_000;

    while retired_iters < total_iters && now < max_cycles {
        // --- Retire (in order). ---
        let mut retired = 0u32;
        while retire_head < window.len() && retired < machine.retire_width {
            let inst = &window[retire_head];
            if inst.issue_done.is_some() && inst.completion <= now {
                if let Some((ev, max_iters)) = trace.as_mut() {
                    if inst.iter < *max_iters {
                        ev.push(TraceEvent {
                            iter: inst.iter,
                            idx: inst.idx,
                            dispatched: inst.dispatched,
                            issued: inst.issue_done.unwrap_or(inst.dispatched),
                            completed: inst.completion,
                            retired: now,
                        });
                    }
                }
                rob_uops -= descs[inst.idx].uop_count() as u64;
                if inst.idx == n - 1 {
                    retired_iters = inst.iter + 1;
                    if retired_iters == cfg.warmup && warmup_end_cycle.is_none() {
                        warmup_end_cycle = Some(now);
                        warmup_issued = issued_uops_total;
                    }
                }
                retire_head += 1;
                retired += 1;
            } else {
                break;
            }
        }
        // Compact the window occasionally.
        if retire_head > 4096 {
            window.drain(..retire_head);
            retire_head = 0;
        }

        // --- Dispatch (in order, limited by width / ROB / scheduler). ---
        let mut budget = machine.dispatch_width;
        while budget > 0 && next_dispatch.0 < total_iters {
            let (it, idx) = next_dispatch;
            let d = &descs[idx];
            let nu = d.uop_count() as u64;
            if nu.max(1) > budget as u64 {
                break; // instruction does not fit in this cycle's group
            }
            if rob_uops + nu.max(1) > machine.rob_size as u64
                || sched_uops + nu > machine.sched_size as u64
            {
                break;
            }
            // Eliminated instructions complete at dispatch.
            if nu == 0 {
                issue_done[it][idx] = Some(now);
                window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    uop_issue: Vec::new(),
                    issue_done: Some(now),
                    completion: now,
                });
                rob_uops += 1; // occupies a ROB slot until retired
            } else {
                window.push(InFlight {
                    iter: it,
                    idx,
                    dispatched: now,
                    uop_issue: vec![None; nu as usize],
                    issue_done: None,
                    completion: u64::MAX,
                });
                rob_uops += nu;
                sched_uops += nu;
            }
            budget = budget.saturating_sub(nu.max(1) as u32);
            next_dispatch = if idx + 1 == n {
                (it + 1, 0)
            } else {
                (it, idx + 1)
            };
        }

        // --- Issue (oldest first). ---
        let mut port_taken_this_cycle = vec![false; np];
        for w in window.iter_mut().skip(retire_head) {
            if w.issue_done.is_some() && w.uop_issue.is_empty() {
                continue; // eliminated
            }
            if w.issue_done.is_some() {
                continue; // fully issued
            }
            // Readiness: all producers issued and their results available.
            let mut ready = true;
            for &(from, weight, wrap) in &incoming[w.idx] {
                let prod_iter = if wrap {
                    match w.iter.checked_sub(1) {
                        Some(pi) => pi,
                        None => continue, // first iteration: no producer
                    }
                } else {
                    w.iter
                };
                match issue_done[prod_iter][from] {
                    Some(t) => {
                        if (t as f64 + weight) > now as f64 {
                            ready = false;
                            break;
                        }
                    }
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                continue;
            }
            // Try to issue each pending µ-op on a free eligible port.
            let d = &descs[w.idx];
            let mut all_issued = true;
            for (ui, u) in d.uops.iter().enumerate() {
                if w.uop_issue[ui].is_some() {
                    continue;
                }
                // Pick the eligible free port with the earliest availability.
                let mut best: Option<usize> = None;
                for p in u.ports.iter() {
                    if port_busy_until[p] <= now && !port_taken_this_cycle[p] {
                        best = match best {
                            Some(b) if port_busy_until[b] <= port_busy_until[p] => Some(b),
                            _ => Some(p),
                        };
                    }
                }
                if let Some(p) = best {
                    port_taken_this_cycle[p] = true;
                    // A blocking µ-op holds its port beyond this cycle.
                    let occ = u.occupancy.ceil() as u64;
                    if occ > 1 {
                        port_busy_until[p] = now + occ;
                    }
                    w.uop_issue[ui] = Some(now);
                    sched_uops -= 1;
                    issued_uops_total += 1;
                } else {
                    all_issued = false;
                }
            }
            if all_issued {
                let last = w.uop_issue.iter().map(|t| t.unwrap()).max().unwrap_or(now);
                w.issue_done = Some(last);
                issue_done[w.iter][w.idx] = Some(last);
                let lat = (descs[w.idx].latency as u64).max(1);
                let completes = if descs[w.idx].class == InstrClass::Store {
                    last + 1
                } else {
                    last + lat
                };
                w.completion = completes;
            }
        }

        now += 1;
    }

    crate::finish(
        cfg,
        total_iters,
        RawOutcome {
            now,
            retired_iters,
            issued_uops_total,
            warmup_end_cycle,
            warmup_issued,
            early_exit_iter: None,
        },
    )
}
