//! Pipeline-trace rendering for the core simulator: one row per
//! instruction instance showing dispatch (`D`), waiting (`=`), issue
//! (`E`), execution (`e`), completion (`-`), and retirement (`R`).

use crate::SimConfig;
use isa::Kernel;
use uarch::Machine;

/// Render a pipeline trace of the first `iters` iterations, at the
/// default width of 100 cycle columns.
pub fn render(machine: &Machine, kernel: &Kernel, iters: usize) -> String {
    render_width(machine, kernel, iters, 100)
}

/// Render a pipeline trace of the first `iters` iterations, showing at
/// most `width` cycle columns. Lifecycles extending past the window are
/// cut with an explicit `… (+N cycles elided)` marker instead of being
/// silently truncated.
pub fn render_width(machine: &Machine, kernel: &Kernel, iters: usize, width: u64) -> String {
    use std::fmt::Write;
    let cfg = SimConfig {
        iterations: iters.max(1) + 2,
        warmup: 0,
        ..Default::default()
    };
    let (result, events) = crate::simulate_traced(machine, kernel, cfg, iters);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeline trace — {} ({:.2} cy/iter steady state)",
        machine.arch.label(),
        result.cycles_per_iter
    );
    if events.is_empty() {
        return out;
    }
    let t0 = events.iter().map(|e| e.dispatched).min().unwrap_or(0);
    let t_full = events.iter().map(|e| e.retired + 1).max().unwrap_or(1);
    let t_end = t_full.min(t0 + width.max(1));
    let elided = t_full - t_end;

    let _ = write!(out, "{:<10}", "");
    for t in t0..t_end {
        let _ = write!(out, "{}", (t / 10) % 10);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<10}", "");
    for t in t0..t_end {
        let _ = write!(out, "{}", t % 10);
    }
    let _ = writeln!(out);

    for e in &events {
        let label = format!("[{},{}]", e.iter, e.idx);
        let _ = write!(out, "{label:<10}");
        for t in t0..t_end {
            let c = if t < e.dispatched || t > e.retired {
                ' '
            } else if t == e.retired {
                'R'
            } else if t == e.dispatched && e.dispatched != e.issued {
                'D'
            } else if t == e.issued {
                'E'
            } else if t < e.issued {
                '='
            } else if t < e.completed {
                'e'
            } else {
                '-'
            };
            let _ = write!(out, "{c}");
        }
        let text = kernel
            .instructions
            .get(e.idx)
            .map(|i| i.raw.as_str())
            .unwrap_or("");
        let _ = writeln!(out, " {text}");
    }
    if elided > 0 {
        let _ = writeln!(out, "… (+{elided} cycles elided; rerun with a wider trace)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::{parse_kernel, Isa};

    #[test]
    fn trace_contains_full_lifecycle() {
        let m = Machine::golden_cove();
        let k = parse_kernel(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let t = render(&m, &k, 2);
        assert!(t.contains('E'));
        assert!(t.contains('R'));
        assert!(t.contains("vmulpd"));
        // 2 iterations × 4 instructions.
        assert_eq!(t.matches("[0,").count() + t.matches("[1,").count(), 8);
    }

    #[test]
    fn dependent_instruction_issues_after_producer_latency() {
        let m = Machine::golden_cove();
        let k = parse_kernel(
            ".L1:\n vmulpd %zmm0, %zmm1, %zmm2\n vaddpd %zmm2, %zmm3, %zmm4\n subq $1, %rax\n jne .L1\n",
            Isa::X86,
        )
        .unwrap();
        let (_, events) = crate::simulate_traced(
            &m,
            &k,
            SimConfig {
                iterations: 4,
                warmup: 0,
                quirks: true,
                ..Default::default()
            },
            1,
        );
        let mul = events.iter().find(|e| e.iter == 0 && e.idx == 0).unwrap();
        let add = events.iter().find(|e| e.iter == 0 && e.idx == 1).unwrap();
        assert!(
            add.issued >= mul.issued + 4,
            "mul@{} add@{}",
            mul.issued,
            add.issued
        );
        // Retirement is in order.
        assert!(add.retired >= mul.retired);
    }

    #[test]
    fn narrow_width_marks_elided_cycles() {
        let m = Machine::neoverse_v2();
        // Serial fdiv chain: the trace easily outruns a 10-column window.
        let k = parse_kernel(
            ".L1:\n fdiv d0, d0, d1\n fdiv d0, d0, d2\n subs x5, x5, #1\n b.ne .L1\n",
            Isa::AArch64,
        )
        .unwrap();
        let narrow = render_width(&m, &k, 3, 10);
        assert!(
            narrow.contains("cycles elided"),
            "narrow trace must announce the cut:\n{narrow}"
        );
        // A window wide enough for the whole lifecycle shows no marker.
        let wide = render_width(&m, &k, 3, 10_000);
        assert!(!wide.contains("cycles elided"));
        // The default width delegates to render_width(…, 100).
        assert_eq!(render(&m, &k, 3), render_width(&m, &k, 3, 100));
    }

    #[test]
    fn retire_order_is_program_order() {
        let m = Machine::neoverse_v2();
        let k = parse_kernel(
            ".L1:\n fdiv d0, d1, d2\n fadd d3, d4, d5\n subs x5, x5, #1\n b.ne .L1\n",
            Isa::AArch64,
        )
        .unwrap();
        let (_, events) = crate::simulate_traced(
            &m,
            &k,
            SimConfig {
                iterations: 3,
                warmup: 0,
                quirks: true,
                ..Default::default()
            },
            2,
        );
        let mut last = 0;
        for e in &events {
            assert!(e.retired >= last, "out-of-order retirement");
            last = e.retired;
        }
        // The cheap fadd completes early but must wait for the divide to
        // retire first.
        let div = events.iter().find(|e| e.iter == 0 && e.idx == 0).unwrap();
        let add = events.iter().find(|e| e.iter == 0 && e.idx == 1).unwrap();
        assert!(add.completed < div.completed);
        assert!(add.retired >= div.retired);
    }
}
